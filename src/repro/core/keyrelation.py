"""Key-relations (Definition 3.1) and the Refkey* criterion (Prop. 3.1).

Merging a family ``R-bar`` of relation-schemes with pairwise compatible
primary keys outer-equi-joins their relations with a *key-relation*: a
relation whose key projection equals the union of all the family key
projections in every consistent state.

Proposition 3.1 characterises when a family member ``R0`` is itself a
key-relation: exactly when the inclusion dependencies of the schema chain
every other family member's primary key (transitively) into ``R0``'s --
``R-bar = {R0} u Refkey*(R0, R-bar)``.  When no member qualifies, a fresh
single-purpose key-relation ``Rk(Kk)`` is synthesised and populated with
the union of the renamed key projections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constraints.inclusion import InclusionDependency
from repro.relational.algebra import project, rename, union
from repro.relational.attributes import (
    Attribute,
    Correspondence,
    attribute_sets_compatible,
)
from repro.relational.relation import Relation
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.state import DatabaseState


@dataclass(frozen=True)
class MergeFamily:
    """A set of relation-schemes targeted for merging.

    ``members`` keeps user order (the merge joins in this order);
    construction validates pairwise compatible primary keys, the
    precondition of Definition 4.1.
    """

    schema: RelationalSchema
    members: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError("a merge family needs at least two schemes")
        if len(set(self.members)) != len(self.members):
            raise ValueError("duplicate scheme names in merge family")
        schemes = [self.schema.scheme(name) for name in self.members]
        first = schemes[0]
        for other in schemes[1:]:
            if not attribute_sets_compatible(
                first.primary_key, other.primary_key
            ):
                raise ValueError(
                    f"primary keys of {first.name} and {other.name} are not "
                    "compatible; merging requires pairwise compatible "
                    "primary keys (Section 3)"
                )

    def schemes(self) -> tuple[RelationScheme, ...]:
        """The member relation-schemes, in family order."""
        return tuple(self.schema.scheme(name) for name in self.members)

    def __contains__(self, name: str) -> bool:
        return name in self.members


def refkey(
    schema: RelationalSchema, base: str, family: Iterable[str]
) -> frozenset[str]:
    """``Refkey(R0, R-bar)``: family members whose *primary key* is
    declared included in ``R0``'s *primary key* by an IND of the schema."""
    base_scheme = schema.scheme(base)
    base_key = base_scheme.key_names
    members = set(family)
    found = set()
    for ind in schema.inds:
        if ind.lhs_scheme not in members or ind.lhs_scheme == base:
            continue
        if ind.rhs_scheme != base or tuple(ind.rhs_attrs) != base_key:
            continue
        lhs_scheme = schema.scheme(ind.lhs_scheme)
        if tuple(ind.lhs_attrs) == lhs_scheme.key_names:
            found.add(ind.lhs_scheme)
    return frozenset(found)


def refkey_star(
    schema: RelationalSchema, base: str, family: Iterable[str]
) -> frozenset[str]:
    """``Refkey*(R0, R-bar)``: the transitive closure of :func:`refkey`."""
    members = set(family)
    closed: set[str] = set()
    frontier = [base]
    while frontier:
        current = frontier.pop()
        for name in refkey(schema, current, members):
            if name not in closed:
                closed.add(name)
                frontier.append(name)
    return frozenset(closed - {base})


def find_key_relation(family: MergeFamily) -> str | None:
    """The family member that is a key-relation per Proposition 3.1, if any.

    Returns the first member (in family order) with
    ``R-bar = {R0} u Refkey*(R0, R-bar)``; ``None`` when no member
    qualifies and a key-relation must be synthesised.
    """
    others = set(family.members)
    for candidate in family.members:
        rest = others - {candidate}
        if refkey_star(family.schema, candidate, family.members) == rest:
            return candidate
    return None


def _fresh_scheme_name(schema: RelationalSchema, base: str) -> str:
    name = base
    while schema.has_scheme(name):
        name += "_K"
    return name


def _fresh_attribute_names(
    schema: RelationalSchema, bases: Sequence[str]
) -> list[str]:
    taken = {
        a.name for scheme in schema.schemes for a in scheme.attributes
    }
    out = []
    for base in bases:
        name = base
        while name in taken:
            name += "'"
        taken.add(name)
        out.append(name)
    return out


def synthesize_key_relation(
    family: MergeFamily, name: str | None = None
) -> RelationScheme:
    """A fresh key-relation scheme ``Rk(Kk)`` for a family with no member
    key-relation.

    ``Kk`` gets fresh attribute names (derived from the first member's key
    names, primed until unique) compatible domain-wise with every family
    key; the relation it denotes is computed by
    :func:`key_relation_contents`.
    """
    first = family.schemes()[0]
    scheme_name = _fresh_scheme_name(
        family.schema, name or ("KEY_" + "_".join(family.members))
    )

    def base_name(attr: Attribute) -> str:
        # Strip the owning scheme's dotted prefix so the fresh key reads
        # like the paper's CN of Figure 2 (from O.CN / T.CN).
        head, _, tail = attr.name.partition(".")
        return tail or attr.name

    attr_names = _fresh_attribute_names(
        family.schema,
        [f"{scheme_name}.{base_name(a)}" for a in first.primary_key],
    )
    attrs = tuple(
        Attribute(new_name, a.domain)
        for new_name, a in zip(attr_names, first.primary_key)
    )
    return RelationScheme(scheme_name, attrs, attrs)


def key_relation_contents(
    family: MergeFamily,
    key_scheme: RelationScheme,
    state: DatabaseState,
) -> Relation:
    """``rk = U_i rename(pi_Ki(ri), Ki <- Kk)`` (Definition 3.1 /
    Definition 4.1 for a synthesised key-relation)."""
    result = Relation.empty(key_scheme.primary_key)
    for scheme in family.schemes():
        projected = project(state[scheme.name], scheme.primary_key)
        renamed = rename(
            projected,
            Correspondence(scheme.primary_key, key_scheme.primary_key),
        )
        result = union(result, renamed)
    return result


def key_relation_condition_holds(
    family: MergeFamily, candidate: str, state: DatabaseState
) -> bool:
    """Check Definition 3.1 condition (ii) directly on one state:
    ``pi_Kk(rk) = U_i rename(pi_Ki(ri), Ki <- Kk)``.

    Proposition 3.1 says the ``Refkey*`` criterion makes this hold on
    *every* consistent state; this direct check is what the Prop 3.1 bench
    validates the criterion against.
    """
    key_scheme = family.schema.scheme(candidate)
    expected = key_relation_contents(family, key_scheme, state)
    actual = project(state[candidate], key_scheme.primary_key)
    return set(actual.tuples) == set(expected.tuples)


def ind_for_synthesized(
    family: MergeFamily, key_scheme: RelationScheme
) -> tuple[InclusionDependency, ...]:
    """Referential-integrity constraints tying each family key into a
    synthesised key-relation (these document the key-relation's content
    condition at the dependency level)."""
    out = []
    for scheme in family.schemes():
        out.append(
            InclusionDependency(
                scheme.name,
                scheme.key_names,
                key_scheme.name,
                key_scheme.key_names,
            )
        )
    return tuple(out)
