"""The paper's primary contribution: BCNF-preserving relation merging.

* :mod:`repro.core.keyrelation` -- key-relations (Definition 3.1) and the
  ``Refkey*`` criterion of Proposition 3.1;
* :mod:`repro.core.merge` -- the ``Merge`` procedure (Definition 4.1) with
  its state mappings eta / eta';
* :mod:`repro.core.remove` -- redundant-attribute removal
  (Definitions 4.2/4.3) with state mappings mu / mu';
* :mod:`repro.core.capacity` -- the information-capacity equivalence test
  of Definition 2.1, applied empirically;
* :mod:`repro.core.conditions` -- the DBMS-compatibility conditions of
  Propositions 5.1 and 5.2;
* :mod:`repro.core.planner` -- schema-level planning: find mergeable
  families, apply ``Merge`` + ``Remove`` end to end.
"""

from repro.core.keyrelation import (
    MergeFamily,
    find_key_relation,
    refkey,
    refkey_star,
    synthesize_key_relation,
)
from repro.core.merge import Merge, MergeError, MergeResult, MergedSchemeInfo
from repro.core.remove import (
    Remove,
    RemoveResult,
    removable_sets,
    remove_all,
)
from repro.core.capacity import (
    ComposedMapping,
    EquivalenceReport,
    IdentityMapping,
    StateMapping,
    verify_information_capacity,
)
from repro.core.conditions import (
    prop51_key_based_inds_only,
    prop51_keys_not_null,
    prop52_nulls_not_allowed_only,
)
from repro.core.planner import MergePlanner, MergeStrategy, PlanResult
from repro.core.script import (
    MigrationScript,
    ReplayResult,
    ScriptReplayError,
    record_plan,
)
from repro.core.verify import (
    MergeInvariantError,
    assert_merge_invariants,
    check_bcnf_preserved,
    check_capacity_preserved,
)

__all__ = [
    "MergeFamily",
    "find_key_relation",
    "refkey",
    "refkey_star",
    "synthesize_key_relation",
    "Merge",
    "MergeError",
    "MergeResult",
    "MergedSchemeInfo",
    "Remove",
    "RemoveResult",
    "removable_sets",
    "remove_all",
    "ComposedMapping",
    "EquivalenceReport",
    "IdentityMapping",
    "StateMapping",
    "verify_information_capacity",
    "prop51_key_based_inds_only",
    "prop51_keys_not_null",
    "prop52_nulls_not_allowed_only",
    "MergePlanner",
    "MergeStrategy",
    "PlanResult",
    "MigrationScript",
    "ReplayResult",
    "ScriptReplayError",
    "record_plan",
    "MergeInvariantError",
    "assert_merge_invariants",
    "check_bcnf_preserved",
    "check_capacity_preserved",
]
