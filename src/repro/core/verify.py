"""Post-condition verification for Merge/Remove results.

The propositions guarantee BCNF and information-capacity preservation;
these helpers let callers *assert* them on concrete results -- useful in
pipelines that transform schemas they did not construct themselves, and
the backbone of the proposition benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints.functional import is_bcnf
from repro.constraints.inference import fds_with_equality
from repro.constraints.nulls import TotalEqualityConstraint
from repro.core.capacity import verify_information_capacity
from repro.core.merge import MergeResult
from repro.core.remove import SimplifyResult
from repro.relational.state import DatabaseState


class MergeInvariantError(AssertionError):
    """A Merge/Remove result violated a proposition's guarantee (which
    indicates a bug or an out-of-class input, never expected use)."""


def check_bcnf_preserved(result: "MergeResult | SimplifyResult") -> None:
    """Proposition 4.1(ii): the merged scheme is in BCNF under the
    declared dependencies extended with the total-equality-derived FDs."""
    merged_name = result.info.merged_name
    equalities = [
        c
        for c in result.schema.null_constraints
        if isinstance(c, TotalEqualityConstraint)
        and c.scheme_name == merged_name
    ]
    extended = fds_with_equality(
        list(result.schema.fds), equalities, merged_name
    )
    scheme = result.schema.scheme(merged_name)
    if not is_bcnf(scheme, extended):
        raise MergeInvariantError(
            f"{merged_name} is not in BCNF -- Proposition 4.1(ii) violated"
        )


def check_capacity_preserved(
    result: "MergeResult | SimplifyResult",
    states: Sequence[DatabaseState],
) -> None:
    """Definition 2.1 on sampled consistent source states."""
    if isinstance(result, MergeResult):
        forward, backward = result.eta, result.eta_prime
    else:
        forward, backward = result.forward, result.backward
    report = verify_information_capacity(
        result.source_schema,
        result.schema,
        forward,
        backward,
        states_a=states,
        states_b=[forward.apply(s) for s in states],
    )
    if not report.equivalent:
        details = "; ".join(str(f) for f in report.failures[:3])
        raise MergeInvariantError(
            f"information capacity not preserved: {details}"
        )


def assert_merge_invariants(
    result: "MergeResult | SimplifyResult",
    states: Sequence[DatabaseState] = (),
) -> None:
    """Both checks; ``states`` (consistent source states) are optional
    but make the capacity check non-vacuous."""
    check_bcnf_preserved(result)
    if states:
        check_capacity_preserved(result, states)
