"""DBMS-compatibility conditions (Propositions 5.1 and 5.2).

1992-era relational DBMSs maintain declaratively only key-based inclusion
dependencies, non-null (unique) keys, and nulls-not-allowed constraints;
everything else needs triggers (SYBASE 4.0), rules (INGRES 6.3) or
validprocs (DB2).  The two propositions characterise, *on the input
schema*, when ``Merge`` (and ``Remove``) stay within the declarative
fragment:

* Proposition 5.1(i): the output contains only key-based inclusion
  dependencies iff no non-key-relation family member is referenced from
  outside the family.
* Proposition 5.1(ii): the merged scheme's key attributes stay non-null
  iff every non-key-relation family member has a unique (primary) key.
* Proposition 5.2: the fully simplified output carries only
  nulls-not-allowed constraints iff the family has a hub ``Rk`` that every
  other member references directly, every other member has exactly one
  non-key attribute, is never referenced, and only references outward
  targets that ``Rk`` also references.

These checkers are pure schema predicates; the benchmarks validate them
against the actual ``Merge``/``Remove`` outputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.constraints.inclusion import InclusionDependency
from repro.core.keyrelation import MergeFamily, find_key_relation
from repro.relational.schema import RelationalSchema


def prop51_key_based_inds_only(
    schema: RelationalSchema, members: Sequence[str]
) -> bool:
    """Proposition 5.1(i): will ``Merge(members)`` produce only key-based
    inclusion dependencies?

    True iff every family member that is not the key-relation is not
    referenced by an inclusion dependency from outside the family (such a
    reference would survive as ``Rj[Z] <= Rm[Ki]`` with ``Ki`` no longer
    the primary key of ``Rm``).
    """
    family = MergeFamily(schema, tuple(members))
    key_relation = find_key_relation(family)
    member_set = set(members)
    for ind in schema.inds:
        if ind.rhs_scheme not in member_set:
            continue
        if ind.rhs_scheme == key_relation:
            continue
        if ind.lhs_scheme in member_set:
            continue
        rhs_scheme = schema.scheme(ind.rhs_scheme)
        if tuple(ind.rhs_attrs) == rhs_scheme.key_names:
            return False
    return True


def prop51_keys_not_null(
    schema: RelationalSchema, members: Sequence[str]
) -> bool:
    """Proposition 5.1(ii): will every candidate key of the merged scheme
    consist of non-null attributes (after removing the redundant key
    copies)?

    True iff every family member that is not the key-relation is
    associated with a unique (primary) key -- extra candidate keys would
    survive as nullable candidate keys of ``Rm``, which SYBASE- and
    INGRES-class systems cannot maintain (Section 5.1).
    """
    family = MergeFamily(schema, tuple(members))
    key_relation = find_key_relation(family)
    for member in members:
        if member == key_relation:
            continue
        if len(schema.scheme(member).candidate_keys) > 1:
            return False
    return True


def _outward_ind_targets(
    schema: RelationalSchema, member: str, member_set: set[str]
) -> Iterable[InclusionDependency]:
    for ind in schema.inds:
        if ind.lhs_scheme == member and ind.rhs_scheme not in member_set:
            yield ind


def prop52_nulls_not_allowed_only(
    schema: RelationalSchema, members: Sequence[str]
) -> tuple[bool, str | None]:
    """Proposition 5.2: will ``Merge`` followed by exhaustive ``Remove``
    leave only nulls-not-allowed constraints?

    Returns ``(holds, key_relation_name)``.  The conditions, checked for a
    hub candidate ``Rk`` against every other member ``Ri``:

    1. ``Ri[Ki] <= Rk[Kk]`` belongs to ``I`` (every member references the
       hub directly -- this makes ``Rk`` a key-relation);
    2. ``Ri`` has exactly one non-primary-key attribute;
    3. ``Ri`` is not referenced by any inclusion dependency;
    4. besides the hub reference, ``Ri`` participates only in left-hand
       sides ``Ri[Z] <= Rj[Kj]``; and when ``Z`` is ``Ri``'s own key, the
       hub must carry the same reference (``Rk[Kk] <= Rj[Kj]``).
    """
    member_list = tuple(members)
    member_set = set(member_list)
    MergeFamily(schema, member_list)  # validates key compatibility

    for hub in member_list:
        hub_scheme = schema.scheme(hub)
        if _prop52_holds_for_hub(schema, hub_scheme, member_list, member_set):
            return True, hub
    return False, None


def _prop52_holds_for_hub(
    schema: RelationalSchema,
    hub_scheme,
    member_list: tuple[str, ...],
    member_set: set[str],
) -> bool:
    hub = hub_scheme.name
    hub_outward_keyrefs = {
        (ind.rhs_scheme, tuple(ind.rhs_attrs))
        for ind in schema.inds
        if ind.lhs_scheme == hub and tuple(ind.lhs_attrs) == hub_scheme.key_names
    }
    for member in member_list:
        if member == hub:
            continue
        scheme = schema.scheme(member)
        # Condition (1): direct reference into the hub's primary key.
        direct = InclusionDependency(
            member, scheme.key_names, hub, hub_scheme.key_names
        )
        if direct not in schema.inds:
            return False
        # Condition (2): exactly one non-primary-key attribute.
        if len(scheme.attributes) - len(scheme.primary_key) != 1:
            return False
        # Condition (3): never referenced.
        if any(ind.rhs_scheme == member for ind in schema.inds):
            return False
        # Condition (4): only outward key-based references; key-sourced
        # references must be mirrored by the hub.
        for ind in schema.inds:
            if ind.lhs_scheme != member or ind == direct:
                continue
            rhs_scheme = schema.scheme(ind.rhs_scheme)
            if tuple(ind.rhs_attrs) != rhs_scheme.key_names:
                return False
            if ind.rhs_scheme in member_set:
                return False
            if tuple(ind.lhs_attrs) == scheme.key_names:
                mirrored = (ind.rhs_scheme, tuple(ind.rhs_attrs))
                if mirrored not in hub_outward_keyrefs:
                    return False
    return True
