"""Schema-level merge planning.

The paper's SDT tool (Section 6) offers two modes: a one-to-one
object-set/relation correspondence, or "using merging for reducing the
number of relation-schemes".  The planner implements the second mode for
arbitrary schemas of the paper's class:

1. discover *mergeable families* -- maximal scheme sets with pairwise
   compatible primary keys containing a key-relation (Proposition 3.1);
2. filter them by strategy (merge everything, only families that keep all
   inclusion dependencies key-based per Proposition 5.1, or only families
   that end up with nulls-not-allowed constraints only per
   Proposition 5.2);
3. apply ``Merge`` + exhaustive ``Remove`` per family, composing the state
   mappings into a single schema-level information-capacity equivalence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.constraints.nulls import NullExistenceConstraint
from repro.core.capacity import IdentityMapping, StateMapping
from repro.core.keyrelation import MergeFamily, refkey_star
from repro.core.merge import Merge
from repro.core.remove import remove_all
from repro.core.conditions import (
    prop51_key_based_inds_only,
    prop51_keys_not_null,
    prop52_nulls_not_allowed_only,
)
from repro.relational.attributes import attribute_sets_compatible
from repro.relational.schema import RelationalSchema


class MergeStrategy(enum.Enum):
    """Which families the planner is allowed to merge."""

    #: Merge every discovered family (may produce general null constraints
    #: and non-key-based inclusion dependencies; needs a trigger/rule
    #: mechanism, Section 5.1).
    AGGRESSIVE = "aggressive"
    #: Merge only families for which Proposition 5.1 guarantees key-based
    #: inclusion dependencies and non-null keys.
    KEY_BASED = "key-based"
    #: Merge only families for which Proposition 5.2 guarantees a
    #: nulls-not-allowed-only result (safe on any relational DBMS).
    NNA_ONLY = "nna-only"


@dataclass(frozen=True)
class CandidateFamily:
    """A discovered mergeable family with its Proposition 5.x verdicts."""

    key_relation: str
    members: tuple[str, ...]
    key_based_only: bool
    keys_not_null: bool
    nna_only: bool

    def __str__(self) -> str:
        flags = []
        if self.nna_only:
            flags.append("NNA-only")
        if self.key_based_only:
            flags.append("key-based RI")
        if self.keys_not_null:
            flags.append("non-null keys")
        tail = f" [{', '.join(flags)}]" if flags else ""
        return f"{self.key_relation} <- {{{', '.join(self.members)}}}{tail}"


@dataclass
class MergeStep:
    """Report entry for one applied merge."""

    family: CandidateFamily
    merged_name: str
    removed_attributes: tuple[str, ...]
    #: The removed attribute *sets* in application order (grouping
    #: preserved for composite keys; migration scripts replay these).
    removed_sets: tuple[tuple[str, ...], ...]
    null_constraint_count: int
    nna_only_result: bool


@dataclass
class PlanResult:
    """Outcome of :meth:`MergePlanner.apply`."""

    source_schema: RelationalSchema
    schema: RelationalSchema
    steps: list[MergeStep] = field(default_factory=list)
    forward: StateMapping = field(default_factory=IdentityMapping)
    backward: StateMapping = field(default_factory=IdentityMapping)

    @property
    def schemes_before(self) -> int:
        """Relation-scheme count of the source schema."""
        return len(self.source_schema.schemes)

    @property
    def schemes_after(self) -> int:
        """Relation-scheme count after every merge."""
        return len(self.schema.schemes)

    def summary(self) -> str:
        """Multi-line report of the applied merges."""
        lines = [
            f"{self.schemes_before} schemes -> {self.schemes_after} schemes "
            f"({len(self.steps)} merge(s))"
        ]
        for step in self.steps:
            lines.append(
                f"  {step.family} => {step.merged_name} "
                f"(removed {len(step.removed_attributes)} attrs, "
                f"{step.null_constraint_count} null constraints"
                f"{', NNA-only' if step.nna_only_result else ''})"
            )
        return "\n".join(lines)


class MergePlanner:
    """Find and apply merges across a whole relational schema."""

    def __init__(
        self,
        schema: RelationalSchema,
        strategy: MergeStrategy = MergeStrategy.AGGRESSIVE,
    ):
        self.schema = schema
        self.strategy = strategy

    # -- discovery -----------------------------------------------------------

    def candidate_families(self) -> tuple[CandidateFamily, ...]:
        """Maximal families, one per potential key-relation.

        For every scheme ``R0``, the family is ``{R0} u Refkey*(R0, C)``
        where ``C`` is the set of schemes with primary keys compatible
        with ``R0``'s; families of size one and families strictly
        contained in another are dropped.
        """
        schema = self.schema
        raw: dict[str, tuple[str, ...]] = {}
        for base in schema.schemes:
            compatible = [
                s.name
                for s in schema.schemes
                if attribute_sets_compatible(base.primary_key, s.primary_key)
            ]
            closure = refkey_star(schema, base.name, compatible)
            if closure:
                raw[base.name] = (base.name,) + tuple(sorted(closure))
        # Drop families strictly contained in another family.
        out = []
        for key_rel, members in raw.items():
            member_set = set(members)
            if any(
                member_set < set(other)
                for other_key, other in raw.items()
                if other_key != key_rel
            ):
                continue
            family = MergeFamily(schema, members)
            out.append(
                CandidateFamily(
                    key_relation=key_rel,
                    members=members,
                    key_based_only=prop51_key_based_inds_only(schema, members),
                    keys_not_null=prop51_keys_not_null(schema, members),
                    nna_only=prop52_nulls_not_allowed_only(schema, members)[0],
                )
            )
        return tuple(sorted(out, key=lambda f: f.key_relation))

    def selected_families(self) -> tuple[CandidateFamily, ...]:
        """Candidate families admitted by the strategy, made disjoint
        (larger families win; ties broken by key-relation name)."""
        admitted = []
        for family in self.candidate_families():
            if self.strategy is MergeStrategy.NNA_ONLY and not family.nna_only:
                continue
            if self.strategy is MergeStrategy.KEY_BASED and not (
                family.key_based_only and family.keys_not_null
            ):
                continue
            admitted.append(family)
        admitted.sort(key=lambda f: (-len(f.members), f.key_relation))
        used: set[str] = set()
        disjoint = []
        for family in admitted:
            if used & set(family.members):
                continue
            used |= set(family.members)
            disjoint.append(family)
        return tuple(disjoint)

    # -- application -----------------------------------------------------------

    def apply(self) -> PlanResult:
        """Merge every selected family and compose the state mappings."""
        result = PlanResult(source_schema=self.schema, schema=self.schema)
        current = self.schema
        forward: StateMapping | None = None
        backward: StateMapping | None = None
        for family in self.selected_families():
            merged = Merge(
                current, family.members, key_relation=family.key_relation
            ).apply()
            simplified = remove_all(merged)
            current = simplified.schema
            step_forward = simplified.forward
            step_backward = simplified.backward
            forward = (
                step_forward if forward is None else forward.then(step_forward)
            )
            backward = (
                step_backward
                if backward is None
                else step_backward.then(backward)
            )
            merged_constraints = [
                c
                for c in current.null_constraints
                if c.scheme_name == simplified.info.merged_name
            ]
            nna_only = all(
                isinstance(c, NullExistenceConstraint)
                and c.is_nulls_not_allowed()
                for c in merged_constraints
            )
            result.steps.append(
                MergeStep(
                    family=family,
                    merged_name=simplified.info.merged_name,
                    removed_attributes=tuple(
                        a for r in simplified.removed for a in r.attrs
                    ),
                    removed_sets=tuple(
                        tuple(r.attrs) for r in simplified.removed
                    ),
                    null_constraint_count=len(merged_constraints),
                    nna_only_result=nna_only,
                )
            )
        result.schema = current
        result.forward = forward or IdentityMapping()
        result.backward = backward or IdentityMapping()
        return result
