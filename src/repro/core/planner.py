"""Schema-level merge planning.

The paper's SDT tool (Section 6) offers two modes: a one-to-one
object-set/relation correspondence, or "using merging for reducing the
number of relation-schemes".  The planner implements the second mode for
arbitrary schemas of the paper's class:

1. discover *mergeable families* -- maximal scheme sets with pairwise
   compatible primary keys containing a key-relation (Proposition 3.1);
2. filter them by strategy (merge everything, only families that keep all
   inclusion dependencies key-based per Proposition 5.1, or only families
   that end up with nulls-not-allowed constraints only per
   Proposition 5.2);
3. apply ``Merge`` + exhaustive ``Remove`` per family, composing the state
   mappings into a single schema-level information-capacity equivalence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.constraints.nulls import NullExistenceConstraint
from repro.core.capacity import IdentityMapping, StateMapping
from repro.core.keyrelation import MergeFamily, refkey_star
from repro.core.merge import Merge
from repro.core.remove import remove_all
from repro.core.conditions import (
    prop51_key_based_inds_only,
    prop51_keys_not_null,
    prop52_nulls_not_allowed_only,
)
from repro.obs.trace import TraceEvent, Tracer
from repro.relational.attributes import attribute_sets_compatible
from repro.relational.schema import RelationalSchema


class MergeStrategy(enum.Enum):
    """Which families the planner is allowed to merge."""

    #: Merge every discovered family (may produce general null constraints
    #: and non-key-based inclusion dependencies; needs a trigger/rule
    #: mechanism, Section 5.1).
    AGGRESSIVE = "aggressive"
    #: Merge only families for which Proposition 5.1 guarantees key-based
    #: inclusion dependencies and non-null keys.
    KEY_BASED = "key-based"
    #: Merge only families for which Proposition 5.2 guarantees a
    #: nulls-not-allowed-only result (safe on any relational DBMS).
    NNA_ONLY = "nna-only"


@dataclass(frozen=True)
class CandidateFamily:
    """A discovered mergeable family with its Proposition 5.x verdicts."""

    key_relation: str
    members: tuple[str, ...]
    key_based_only: bool
    keys_not_null: bool
    nna_only: bool

    def __str__(self) -> str:
        flags = []
        if self.nna_only:
            flags.append("NNA-only")
        if self.key_based_only:
            flags.append("key-based RI")
        if self.keys_not_null:
            flags.append("non-null keys")
        tail = f" [{', '.join(flags)}]" if flags else ""
        return f"{self.key_relation} <- {{{', '.join(self.members)}}}{tail}"


@dataclass(frozen=True)
class FamilyDecision:
    """The planner's verdict on one candidate family: admitted (and then
    actually merged) or skipped, with the reason and the paper rule the
    decision leaned on."""

    family: CandidateFamily
    admitted: bool
    reason: str
    rule: str

    def __str__(self) -> str:
        verdict = "merge" if self.admitted else "skip"
        return f"{verdict} {self.family.key_relation}: {self.reason}"


@dataclass
class MergeStep:
    """Report entry for one applied merge."""

    family: CandidateFamily
    merged_name: str
    removed_attributes: tuple[str, ...]
    #: The removed attribute *sets* in application order (grouping
    #: preserved for composite keys; migration scripts replay these).
    removed_sets: tuple[tuple[str, ...], ...]
    null_constraint_count: int
    nna_only_result: bool


@dataclass
class PlanResult:
    """Outcome of :meth:`MergePlanner.apply`."""

    source_schema: RelationalSchema
    schema: RelationalSchema
    steps: list[MergeStep] = field(default_factory=list)
    forward: StateMapping = field(default_factory=IdentityMapping)
    backward: StateMapping = field(default_factory=IdentityMapping)

    @property
    def schemes_before(self) -> int:
        """Relation-scheme count of the source schema."""
        return len(self.source_schema.schemes)

    @property
    def schemes_after(self) -> int:
        """Relation-scheme count after every merge."""
        return len(self.schema.schemes)

    def summary(self) -> str:
        """Multi-line report of the applied merges."""
        lines = [
            f"{self.schemes_before} schemes -> {self.schemes_after} schemes "
            f"({len(self.steps)} merge(s))"
        ]
        for step in self.steps:
            lines.append(
                f"  {step.family} => {step.merged_name} "
                f"(removed {len(step.removed_attributes)} attrs, "
                f"{step.null_constraint_count} null constraints"
                f"{', NNA-only' if step.nna_only_result else ''})"
            )
        return "\n".join(lines)


class MergePlanner:
    """Find and apply merges across a whole relational schema."""

    def __init__(
        self,
        schema: RelationalSchema,
        strategy: MergeStrategy = MergeStrategy.AGGRESSIVE,
        tracer: Tracer | None = None,
        workload=None,
    ):
        self.schema = schema
        self.strategy = strategy
        self.tracer = tracer
        #: Optional workload profile (duck-typed:
        #: :class:`repro.advisor.profile.WorkloadProfile`) switching the
        #: planner into workload-aware mode: admitted families are
        #: additionally scored by observed join traffic saved minus
        #: mutation overhead added, non-positive scores are skipped, and
        #: the best-scoring family is applied first.  The Proposition
        #: 5.1/5.2 verdicts stay the admissibility filter either way.
        self.workload = workload

    # -- discovery -----------------------------------------------------------

    def candidate_families(self) -> tuple[CandidateFamily, ...]:
        """Maximal families, one per potential key-relation.

        For every scheme ``R0``, the family is ``{R0} u Refkey*(R0, C)``
        where ``C`` is the set of schemes with primary keys compatible
        with ``R0``'s; families of size one and families strictly
        contained in another are dropped.
        """
        schema = self.schema
        raw: dict[str, tuple[str, ...]] = {}
        for base in schema.schemes:
            compatible = [
                s.name
                for s in schema.schemes
                if attribute_sets_compatible(base.primary_key, s.primary_key)
            ]
            closure = refkey_star(schema, base.name, compatible)
            if closure:
                raw[base.name] = (base.name,) + tuple(sorted(closure))
        # Drop families strictly contained in another family.
        out = []
        for key_rel, members in raw.items():
            member_set = set(members)
            if any(
                member_set < set(other)
                for other_key, other in raw.items()
                if other_key != key_rel
            ):
                continue
            family = MergeFamily(schema, members)
            out.append(
                CandidateFamily(
                    key_relation=key_rel,
                    members=members,
                    key_based_only=prop51_key_based_inds_only(schema, members),
                    keys_not_null=prop51_keys_not_null(schema, members),
                    nna_only=prop52_nulls_not_allowed_only(schema, members)[0],
                )
            )
        return tuple(sorted(out, key=lambda f: f.key_relation))

    def _strategy_verdict(
        self, family: CandidateFamily
    ) -> tuple[bool, str, str]:
        """``(admitted, reason, rule)`` for one family under the strategy."""
        if self.strategy is MergeStrategy.NNA_ONLY:
            if family.nna_only:
                return (
                    True,
                    "Proposition 5.2 holds: the merged result needs "
                    "nulls-not-allowed constraints only",
                    "Proposition 5.2 (nulls-not-allowed-only result)",
                )
            return (
                False,
                "Proposition 5.2 fails: the merged result would need "
                "general null constraints (triggers/rules, Section 5.1)",
                "Proposition 5.2 (nulls-not-allowed-only result)",
            )
        if self.strategy is MergeStrategy.KEY_BASED:
            if family.key_based_only and family.keys_not_null:
                return (
                    True,
                    "Proposition 5.1 holds: every inclusion dependency "
                    "stays key-based and the merged key stays non-null",
                    "Proposition 5.1 (key-based RI, non-null keys)",
                )
            problems = []
            if not family.key_based_only:
                problems.append(
                    "some inclusion dependency would not be key-based "
                    "(Proposition 5.1(i))"
                )
            if not family.keys_not_null:
                problems.append(
                    "the merged key could take nulls (Proposition 5.1(ii))"
                )
            return (
                False,
                "Proposition 5.1 fails: " + "; ".join(problems),
                "Proposition 5.1 (key-based RI, non-null keys)",
            )
        return (
            True,
            "aggressive strategy admits every discovered family",
            "Proposition 3.1 (mergeable family discovery)",
        )

    def _decide(
        self,
    ) -> tuple[
        list[FamilyDecision], tuple[CandidateFamily, ...], dict[str, dict]
    ]:
        """Every family's decision (in discovery order), the selected
        disjoint families (in application order), and -- in workload mode --
        the per-family observed scores keyed by key-relation."""
        decisions: dict[str, FamilyDecision] = {}
        order: list[str] = []
        admitted: list[CandidateFamily] = []
        for family in self.candidate_families():
            order.append(family.key_relation)
            ok, reason, rule = self._strategy_verdict(family)
            decisions[family.key_relation] = FamilyDecision(
                family, ok, reason, rule
            )
            if ok:
                admitted.append(family)
        scores: dict[str, dict] = {}
        if self.workload is not None:
            # Workload-aware mode: the strategy verdict above is the
            # admissibility filter; the observed profile decides which
            # admissible family pays for itself and which goes first.
            surviving: list[CandidateFamily] = []
            for family in admitted:
                score = self.workload.score_family(self.schema, family.members)
                scores[family.key_relation] = score
                if score["score"] <= 0:
                    decisions[family.key_relation] = FamilyDecision(
                        family,
                        False,
                        "workload: observed join traffic saved "
                        f"({score['joins_saved']}) does not outweigh "
                        "observed mutation overhead "
                        f"({score['mutation_overhead']})",
                        "workload scoring "
                        "(joins saved vs. mutation overhead)",
                    )
                    continue
                surviving.append(family)
            admitted = surviving
            admitted.sort(
                key=lambda f: (
                    -scores[f.key_relation]["score"],
                    -len(f.members),
                    f.key_relation,
                )
            )
        else:
            admitted.sort(key=lambda f: (-len(f.members), f.key_relation))
        used: set[str] = set()
        claimed: dict[str, str] = {}
        selected: list[CandidateFamily] = []
        for family in admitted:
            overlap = used & set(family.members)
            if overlap:
                winner = claimed[min(overlap)]
                decisions[family.key_relation] = FamilyDecision(
                    family,
                    False,
                    f"members {sorted(overlap)} already belong to the "
                    f"family of {winner} (larger families win)",
                    "disjointness (families must not share members)",
                )
                continue
            used |= set(family.members)
            for member in family.members:
                claimed[member] = family.key_relation
            selected.append(family)
        return [decisions[k] for k in order], tuple(selected), scores

    def decisions(self) -> tuple[FamilyDecision, ...]:
        """The admit/skip verdict for every candidate family, with the
        reason and the Proposition 5.1/5.2 rule behind it."""
        return tuple(self._decide()[0])

    def selected_families(self) -> tuple[CandidateFamily, ...]:
        """Candidate families admitted by the strategy, made disjoint
        (best workload score first when a profile is set, else larger
        families win; ties broken by key-relation name)."""
        return self._decide()[1]

    def explain(self) -> dict:
        """The planner's reasoning as a structured dict: every candidate
        family with its Proposition 5.1/5.2 verdicts and the admission
        decision the strategy took.  In workload mode every scored
        family additionally carries its observed per-IND join counts,
        mutation overhead, and net score."""
        decisions, selected, scores = self._decide()
        families = []
        for d in decisions:
            entry = {
                "key_relation": d.family.key_relation,
                "members": list(d.family.members),
                "verdicts": {
                    "prop51_key_based_inds_only": d.family.key_based_only,
                    "prop51_keys_not_null": d.family.keys_not_null,
                    "prop52_nna_only": d.family.nna_only,
                },
                "admitted": d.admitted,
                "reason": d.reason,
                "rule": d.rule,
            }
            if d.family.key_relation in scores:
                entry["workload"] = scores[d.family.key_relation]
            families.append(entry)
        return {
            "strategy": self.strategy.value,
            "workload_mode": self.workload is not None,
            "schemes": len(self.schema.schemes),
            "families": families,
            "selected": [f.key_relation for f in selected],
        }

    def explain_text(self) -> str:
        """Human-readable form of :meth:`explain`."""
        explanation = self.explain()
        mode = ", workload-aware" if explanation["workload_mode"] else ""
        lines = [
            f"EXPLAIN merge plan (strategy: {explanation['strategy']}"
            f"{mode}, {explanation['schemes']} schemes)"
        ]
        if not explanation["families"]:
            lines.append(
                "  no mergeable families "
                "(Proposition 3.1 finds no key-relations)"
            )
        for entry in explanation["families"]:
            verdict = "MERGE" if entry["admitted"] else "skip"
            lines.append(
                f"  {verdict} {entry['key_relation']} <- "
                f"{{{', '.join(entry['members'])}}}"
            )
            lines.append(f"       {entry['reason']}")
            lines.append(f"       rule: {entry['rule']}")
            workload = entry.get("workload")
            if workload is not None:
                lines.append(
                    "       observed: "
                    f"{workload['joins_saved']} join(s) saved, "
                    f"{workload['mutation_overhead']} mutation(s) added, "
                    f"score {workload['score']:+d}"
                )
                for ind, count in sorted(
                    workload["observed_ind_joins"].items()
                ):
                    lines.append(f"         {count:>6}  {ind}")
        return "\n".join(lines)

    def _trace_decisions(self, decisions: list[FamilyDecision]) -> None:
        if self.tracer is None:
            return
        for d in decisions:
            self.tracer.emit(
                TraceEvent(
                    event="merge-decision",
                    op="plan",
                    scheme=d.family.key_relation,
                    constraint=str(d.family),
                    kind="merge-admission",
                    rule=d.rule,
                    outcome="admitted" if d.admitted else "skipped",
                    detail=d.reason,
                )
            )

    # -- application -----------------------------------------------------------

    def apply(self) -> PlanResult:
        """Merge every selected family and compose the state mappings."""
        decisions, selected, _scores = self._decide()
        self._trace_decisions(decisions)
        result = PlanResult(source_schema=self.schema, schema=self.schema)
        current = self.schema
        forward: StateMapping | None = None
        backward: StateMapping | None = None
        for family in selected:
            merged = Merge(
                current, family.members, key_relation=family.key_relation
            ).apply()
            simplified = remove_all(merged)
            current = simplified.schema
            step_forward = simplified.forward
            step_backward = simplified.backward
            forward = (
                step_forward if forward is None else forward.then(step_forward)
            )
            backward = (
                step_backward
                if backward is None
                else step_backward.then(backward)
            )
            merged_constraints = [
                c
                for c in current.null_constraints
                if c.scheme_name == simplified.info.merged_name
            ]
            nna_only = all(
                isinstance(c, NullExistenceConstraint)
                and c.is_nulls_not_allowed()
                for c in merged_constraints
            )
            result.steps.append(
                MergeStep(
                    family=family,
                    merged_name=simplified.info.merged_name,
                    removed_attributes=tuple(
                        a for r in simplified.removed for a in r.attrs
                    ),
                    removed_sets=tuple(
                        tuple(r.attrs) for r in simplified.removed
                    ),
                    null_constraint_count=len(merged_constraints),
                    nna_only_result=nna_only,
                )
            )
            if self.tracer is not None:
                self.tracer.emit(
                    TraceEvent(
                        event="merge-applied",
                        op="merge",
                        scheme=simplified.info.merged_name,
                        constraint=str(family),
                        kind="merge-admission",
                        rule="Definition 4.1 (Merge) + Definition 4.3 (Remove)",
                        outcome="ok",
                        rows=len(result.steps[-1].removed_attributes),
                        detail=(
                            f"{len(merged_constraints)} null constraint(s)"
                            f"{', NNA-only' if nna_only else ''}"
                        ),
                    )
                )
        result.schema = current
        result.forward = forward or IdentityMapping()
        result.backward = backward or IdentityMapping()
        return result
