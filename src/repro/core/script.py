"""Replayable migration scripts.

A merge plan is worth keeping: the same redesign must be re-derived in
every environment (dev, staging, production) and audited later.  A
:class:`MigrationScript` records the schema operations -- which families
were merged, under which key-relations, what was removed -- as plain
data that serialises to JSON, and ``apply`` replays them against a
schema to re-derive the *same* output schema and state mappings
deterministically.

The script stores intent, not results: replaying re-runs ``Merge`` and
``Remove`` (so all invariants are re-checked) and fails loudly if the
input schema has drifted since the script was recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.capacity import IdentityMapping, StateMapping
from repro.core.merge import Merge, MergeError
from repro.core.planner import PlanResult
from repro.core.remove import Remove, removable_sets
from repro.relational.schema import RelationalSchema


class ScriptReplayError(ValueError):
    """Replay failed: the target schema does not fit the recorded steps."""


@dataclass(frozen=True)
class MergeStep:
    """One recorded merge: the family, its key-relation, the merged
    scheme's name, and the attribute sets removed afterwards (in
    order)."""

    members: tuple[str, ...]
    key_relation: str | None
    merged_name: str
    removals: tuple[tuple[str, ...], ...]

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "members": list(self.members),
            "key_relation": self.key_relation,
            "merged_name": self.merged_name,
            "removals": [list(r) for r in self.removals],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MergeStep":
        """Decode one step."""
        return cls(
            members=tuple(data["members"]),
            key_relation=data.get("key_relation"),
            merged_name=data["merged_name"],
            removals=tuple(tuple(r) for r in data.get("removals", [])),
        )


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a script against a schema."""

    source_schema: RelationalSchema
    schema: RelationalSchema
    forward: StateMapping
    backward: StateMapping
    steps: tuple[MergeStep, ...]


@dataclass(frozen=True)
class MigrationScript:
    """An ordered list of merge steps, recordable and replayable."""

    steps: tuple[MergeStep, ...]
    description: str = ""

    @classmethod
    def from_plan(cls, plan: PlanResult, description: str = "") -> "MigrationScript":
        """Record the steps a :class:`MergePlanner` run performed."""
        steps = [
            MergeStep(
                members=step.family.members,
                key_relation=step.family.key_relation,
                merged_name=step.merged_name,
                removals=step.removed_sets,
            )
            for step in plan.steps
        ]
        return cls(tuple(steps), description)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (see the CLI's ``plan --script``)."""
        return {
            "kind": "repro-migration-script",
            "description": self.description,
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MigrationScript":
        """Decode a script; raises on unknown payloads."""
        if data.get("kind") != "repro-migration-script":
            raise ScriptReplayError(
                "not a migration script (missing kind marker)"
            )
        return cls(
            steps=tuple(MergeStep.from_dict(s) for s in data.get("steps", [])),
            description=data.get("description", ""),
        )

    # -- replay -----------------------------------------------------------

    def apply(self, schema: RelationalSchema) -> ReplayResult:
        """Replay every step against ``schema``.

        Each merge re-runs ``Merge`` (validating the family and the
        recorded key-relation) and each recorded removal re-runs
        ``Remove`` (validating Definition 4.2); drift between the schema
        and the recording surfaces as :class:`ScriptReplayError`.
        """
        source = schema
        current = schema
        forward: StateMapping = IdentityMapping()
        backward: StateMapping = IdentityMapping()
        for step in self.steps:
            missing = [m for m in step.members if not current.has_scheme(m)]
            if missing:
                raise ScriptReplayError(
                    f"schema has no scheme(s) {missing}; the script was "
                    "recorded against a different schema"
                )
            try:
                result = Merge(
                    current,
                    step.members,
                    merged_name=step.merged_name,
                    key_relation=step.key_relation,
                ).apply()
            except (MergeError, ValueError) as exc:
                raise ScriptReplayError(
                    f"merge of {step.members} failed on replay: {exc}"
                ) from exc
            current = result.schema
            info = result.info
            forward = forward.then(result.eta)
            backward = result.eta_prime.then(backward)
            for attrs in step.removals:
                candidates = {
                    r.attrs: r for r in removable_sets(current, info)
                }
                target = candidates.get(tuple(attrs))
                if target is None:
                    raise ScriptReplayError(
                        f"recorded removal {attrs} is not removable on "
                        "replay (Definition 4.2 conditions changed)"
                    )
                removed = Remove(current, info, target).apply()
                current = removed.schema
                info = removed.info
                forward = forward.then(removed.mu)
                backward = removed.mu_prime.then(backward)
        return ReplayResult(source, current, forward, backward, self.steps)


def record_plan(plan: PlanResult, description: str = "") -> MigrationScript:
    """Convenience: :meth:`MigrationScript.from_plan`."""
    return MigrationScript.from_plan(plan, description)
