"""Information-capacity equivalence (Definition 2.1), checked empirically.

Two relational schemas ``RS`` and ``RS'`` have *equivalent information
capacity* iff there are total mappings ``phi`` / ``phi'`` between their
consistent database states such that both compositions are the identity
and both mappings preserve data values.

``Merge`` and ``Remove`` come with constructive mappings (eta/eta' and
mu/mu'); this module represents such mappings as first-class objects and
verifies the four conditions of Definition 2.1 over a supplied sample of
consistent states.  The propositions guarantee the conditions hold for
*every* state; the verifier is how the reproduction demonstrates them at
scale (benchmarks ``prop41``/``prop42``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.constraints.checker import ConsistencyChecker
from repro.relational.schema import RelationalSchema
from repro.relational.state import DatabaseState


class StateMapping:
    """A total function from database states to database states."""

    #: Human-readable description, e.g. ``"eta: outer-equi-join COURSE'"``.
    description: str = "state mapping"

    def apply(self, state: DatabaseState) -> DatabaseState:  # pragma: no cover
        """Apply the mapping to one database state."""
        raise NotImplementedError

    def __call__(self, state: DatabaseState) -> DatabaseState:
        return self.apply(state)

    def then(self, other: "StateMapping") -> "StateMapping":
        """Composition ``other . self`` (apply ``self`` first)."""
        return ComposedMapping((self, other))


@dataclass(frozen=True)
class IdentityMapping(StateMapping):
    """The identity state mapping."""

    description: str = "identity"

    def apply(self, state: DatabaseState) -> DatabaseState:
        """Apply the mapping to one database state."""
        return state


@dataclass(frozen=True)
class ComposedMapping(StateMapping):
    """Left-to-right composition of state mappings."""

    stages: tuple[StateMapping, ...]

    @property
    def description(self) -> str:  # type: ignore[override]
        """Human-readable description of the composed stages."""
        return " ; ".join(s.description for s in self.stages)

    def apply(self, state: DatabaseState) -> DatabaseState:
        """Apply the mapping to one database state."""
        for stage in self.stages:
            state = stage.apply(state)
        return state

    def then(self, other: StateMapping) -> StateMapping:
        """Composition ``other . self`` (apply ``self`` first)."""
        if isinstance(other, ComposedMapping):
            return ComposedMapping(self.stages + other.stages)
        return ComposedMapping(self.stages + (other,))


@dataclass(frozen=True)
class FunctionMapping(StateMapping):
    """Wrap a plain function as a :class:`StateMapping`."""

    fn: Callable[[DatabaseState], DatabaseState]
    description: str = "function mapping"

    def apply(self, state: DatabaseState) -> DatabaseState:
        """Apply the mapping to one database state."""
        return self.fn(state)


@dataclass
class EquivalenceFailure:
    """One failed Definition 2.1 condition on one sampled state."""

    direction: str
    condition: str
    detail: str

    def __str__(self) -> str:
        return f"{self.direction}/{self.condition}: {self.detail}"


@dataclass
class EquivalenceReport:
    """Outcome of an empirical information-capacity check."""

    states_checked_forward: int = 0
    states_checked_backward: int = 0
    failures: list[EquivalenceFailure] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        """True iff every sampled state passed every condition."""
        return not self.failures

    def summary(self) -> str:
        """One-line verdict with check counts."""
        status = "EQUIVALENT" if self.equivalent else "NOT EQUIVALENT"
        return (
            f"{status}: {self.states_checked_forward} forward + "
            f"{self.states_checked_backward} backward states checked, "
            f"{len(self.failures)} failure(s)"
        )


def _check_direction(
    report: EquivalenceReport,
    direction: str,
    source_schema: RelationalSchema,
    target_schema: RelationalSchema,
    forward: StateMapping,
    backward: StateMapping,
    states: Iterable[DatabaseState],
) -> int:
    source_checker = ConsistencyChecker(source_schema)
    target_checker = ConsistencyChecker(target_schema)
    count = 0
    for state in states:
        count += 1
        source_violations = source_checker.violations(state)
        if source_violations:
            report.failures.append(
                EquivalenceFailure(
                    direction,
                    "precondition",
                    "sampled state is not consistent with its own schema: "
                    + "; ".join(map(str, source_violations[:3])),
                )
            )
            continue
        try:
            mapped = forward.apply(state)
        except Exception as exc:  # a mapping is total on consistent states
            report.failures.append(
                EquivalenceFailure(
                    direction,
                    "totality",
                    f"{forward.description} raised on a consistent state: "
                    f"{exc!r}",
                )
            )
            continue
        # Condition 1/2: phi maps consistent states to consistent states.
        target_violations = target_checker.violations(mapped)
        if target_violations:
            report.failures.append(
                EquivalenceFailure(
                    direction,
                    "consistency",
                    f"{forward.description} produced an inconsistent state: "
                    + "; ".join(map(str, target_violations[:3])),
                )
            )
        # Condition 3: the round trip is the identity.
        try:
            round_trip = backward.apply(mapped)
        except Exception as exc:
            report.failures.append(
                EquivalenceFailure(
                    direction,
                    "totality",
                    f"{backward.description} raised on a mapped state: "
                    f"{exc!r}",
                )
            )
            continue
        if round_trip != state:
            report.failures.append(
                EquivalenceFailure(
                    direction,
                    "identity",
                    f"{backward.description} . {forward.description} is not "
                    "the identity on a sampled state",
                )
            )
        # Condition 4: phi preserves data values (values of phi(r) are
        # included in r).
        if not mapped.data_values() <= state.data_values():
            extra = mapped.data_values() - state.data_values()
            report.failures.append(
                EquivalenceFailure(
                    direction,
                    "value-preservation",
                    f"{forward.description} introduced values not present "
                    f"in the source state: {sorted(map(repr, extra))[:5]}",
                )
            )
    return count


def verify_information_capacity(
    schema_a: RelationalSchema,
    schema_b: RelationalSchema,
    phi: StateMapping,
    phi_prime: StateMapping,
    states_a: Sequence[DatabaseState] = (),
    states_b: Sequence[DatabaseState] = (),
) -> EquivalenceReport:
    """Check Definition 2.1 empirically on sampled consistent states.

    ``states_a`` are consistent states of ``schema_a`` (checked through
    ``phi`` then back through ``phi_prime``); ``states_b`` symmetrically.
    Returns a report; ``report.equivalent`` is the verdict.
    """
    report = EquivalenceReport()
    report.states_checked_forward = _check_direction(
        report, "forward", schema_a, schema_b, phi, phi_prime, states_a
    )
    report.states_checked_backward = _check_direction(
        report, "backward", schema_b, schema_a, phi_prime, phi, states_b
    )
    return report
