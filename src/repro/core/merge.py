"""The ``Merge`` procedure (Definition 4.1).

``Merge(R-bar)`` replaces a family of relation-schemes with pairwise
compatible primary keys by a single relation-scheme ``Rm``, rewrites the
key dependencies, inclusion dependencies and null constraints (steps 2-4
of Definition 4.1), and produces the two state mappings:

* ``eta``  -- outer-equi-join the key-relation with every family relation
  (forward mapping into the merged schema);
* ``eta'`` -- total-project the merged relation back onto each original
  attribute set (backward mapping).

Proposition 4.1 states -- and :mod:`repro.core.capacity` verifies -- that
the pair is an information-capacity equivalence and that the output schema
stays in BCNF.

Extension beyond the paper's simplifying assumption
---------------------------------------------------
Definition 4.1 assumes every attribute of the merged schemes is covered by
a nulls-not-allowed constraint.  This implementation generalises the
constraint generation to schemes with *optional* (nullable) non-key
attributes: null-synchronization is emitted over the scheme's required
attributes, and every optional attribute ``A`` gets the null-existence
constraint ``A |-> required(Xi)``.  With all attributes required this
degenerates to the paper's exact rules; with optional attributes it yields
precisely the constraints the paper argues for informally (e.g. the
``DATE |-> NR`` constraint of Figure 1(iii)).  Pass ``strict=True`` to
enforce the paper's assumption instead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.constraints.functional import KeyDependency
from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import (
    NullConstraint,
    NullExistenceConstraint,
    PartNullConstraint,
    TotalEqualityConstraint,
    null_synchronization_set,
    nulls_not_allowed,
)
from repro.core.capacity import StateMapping
from repro.core.keyrelation import (
    MergeFamily,
    find_key_relation,
    key_relation_contents,
    synthesize_key_relation,
)
from repro.relational.algebra import outer_equi_join
from repro.relational.attributes import Attribute, Correspondence
from repro.relational.relation import Relation
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.state import DatabaseState


class MergeError(ValueError):
    """Raised when a schema/family violates the preconditions of Merge."""


@dataclass(frozen=True)
class MergedSchemeInfo:
    """Provenance metadata for a merged relation-scheme.

    ``Remove`` (Definition 4.2/4.3) and the reconstruction mapping need to
    know which merged attributes came from which original scheme; this
    object carries that bookkeeping and is updated as attributes are
    removed.

    Attributes
    ----------
    merged_name:
        Name of the merged relation-scheme ``Rm``.
    family:
        Names of the original relation-schemes, in merge order.
    key_relation:
        Name of the key-relation used (a family member, or the synthesised
        scheme's name when ``synthesized``).
    synthesized:
        True when no family member was a key-relation and a fresh ``Rk``
        was created (Definition 4.1's ``Xk = Kk`` case).
    km:
        Attribute names of the merged primary key ``Km``, in order.
    family_attrs:
        Current attribute names of each family scheme inside ``Rm``
        (``Remove`` shrinks these).
    family_keys:
        Original primary-key attribute names ``Ki`` of each family scheme.
    required:
        Per family scheme, the attributes covered by nulls-not-allowed
        constraints in the source schema (always includes the key).
    """

    merged_name: str
    family: tuple[str, ...]
    key_relation: str
    synthesized: bool
    km: tuple[str, ...]
    family_attrs: dict[str, tuple[str, ...]]
    family_keys: dict[str, tuple[str, ...]]
    required: dict[str, tuple[str, ...]]

    def required_remaining(self, member: str) -> tuple[str, ...]:
        """Required attributes of ``member`` still present in ``Rm``."""
        present = set(self.family_attrs[member])
        return tuple(a for a in self.required[member] if a in present)

    def without_attributes(self, member: str, removed: Iterable[str]) -> "MergedSchemeInfo":
        """Provenance after ``Remove`` dropped some of ``member``'s
        attributes."""
        gone = set(removed)
        attrs = dict(self.family_attrs)
        attrs[member] = tuple(a for a in attrs[member] if a not in gone)
        return replace(self, family_attrs=attrs)


@dataclass(frozen=True)
class MergeStateMapping(StateMapping):
    """``eta``: the forward state mapping of Definition 4.1.

    Identity on relations outside the family; the merged relation is the
    outer-equi-join of the key-relation with every other family relation
    on ``Km = Ki``.
    """

    source_schema: RelationalSchema
    merged_scheme: RelationScheme
    info: MergedSchemeInfo

    @property
    def description(self) -> str:  # type: ignore[override]
        """Mapping label used in reports."""
        return f"eta[{self.info.merged_name}]"

    def apply(self, state: DatabaseState) -> DatabaseState:
        """Apply the mapping to one database state."""
        family = MergeFamily(self.source_schema, self.info.family)
        if self.info.synthesized:
            key_attrs = tuple(
                self.merged_scheme.attribute(name) for name in self.info.km
            )
            key_scheme = RelationScheme(
                self.info.key_relation, key_attrs, key_attrs
            )
            merged = key_relation_contents(family, key_scheme, state)
            join_members = self.info.family
        else:
            key_scheme = self.source_schema.scheme(self.info.key_relation)
            merged = state[self.info.key_relation]
            join_members = tuple(
                m for m in self.info.family if m != self.info.key_relation
            )
        km_attrs = [merged.attribute(name) for name in self.info.km]
        for member in join_members:
            member_scheme = self.source_schema.scheme(member)
            on = Correspondence(
                tuple(km_attrs), tuple(member_scheme.primary_key)
            )
            merged = outer_equi_join(merged, state[member], on)
        merged = Relation(self.merged_scheme.attributes, merged.tuples)
        relations = {
            name: rel
            for name, rel in state.items()
            if name not in self.info.family
        }
        relations[self.info.merged_name] = merged
        return DatabaseState(relations)


@dataclass(frozen=True)
class DecomposeStateMapping(StateMapping):
    """``eta'``: reconstruct every original relation by (total) projection.

    A family tuple is *present* in a merged tuple exactly when the
    scheme's required attributes are total (with the paper's all-required
    assumption this is the total projection ``pi!_{Xi}(rm)``); present
    rows are projected on the scheme's attribute set, optional nulls
    preserved.
    """

    source_schema: RelationalSchema
    info: MergedSchemeInfo

    @property
    def description(self) -> str:  # type: ignore[override]
        """Mapping label used in reports."""
        return f"eta'[{self.info.merged_name}]"

    def apply(self, state: DatabaseState) -> DatabaseState:
        """Apply the mapping to one database state."""
        merged = state[self.info.merged_name]
        relations = {
            name: rel
            for name, rel in state.items()
            if name != self.info.merged_name
        }
        for member in self.info.family:
            scheme = self.source_schema.scheme(member)
            required = self.info.required[member]
            names = scheme.attribute_names
            rows = (
                t.subtuple(names)
                for t in merged
                if t.is_total_on(required)
            )
            relations[member] = Relation(scheme.attributes, rows)
        return DatabaseState(relations)


@dataclass(frozen=True)
class MergeResult:
    """Everything ``Merge`` produces: the new schema, the merged scheme's
    provenance, and the two state mappings of the equivalence."""

    source_schema: RelationalSchema
    schema: RelationalSchema
    info: MergedSchemeInfo
    eta: StateMapping
    eta_prime: StateMapping

    @property
    def merged_scheme(self) -> RelationScheme:
        """The merged relation-scheme ``Rm`` in the output schema."""
        return self.schema.scheme(self.info.merged_name)


def _required_attributes(
    schema: RelationalSchema, scheme: RelationScheme
) -> tuple[str, ...]:
    """Attributes of ``scheme`` covered by nulls-not-allowed constraints,
    always including the primary key (entity identifiers are non-null by
    the EER translation invariant, Section 5.2)."""
    covered = set(scheme.key_names)
    for constraint in schema.null_constraints_of(scheme.name):
        if (
            isinstance(constraint, NullExistenceConstraint)
            and constraint.is_nulls_not_allowed()
        ):
            covered |= constraint.rhs
    return tuple(a for a in scheme.attribute_names if a in covered)


def _validate_family_constraints(
    schema: RelationalSchema, family: MergeFamily, strict: bool
) -> None:
    for scheme in family.schemes():
        for fd in schema.fds_of(scheme.name):
            candidate_names = {
                frozenset(a.name for a in key) for key in scheme.candidate_keys
            }
            if frozenset(fd.lhs) not in candidate_names:
                raise MergeError(
                    f"{scheme.name} carries a non-key functional dependency "
                    f"({fd}); Merge is defined for schemas whose F consists "
                    "of key dependencies"
                )
        for constraint in schema.null_constraints_of(scheme.name):
            is_nna = (
                isinstance(constraint, NullExistenceConstraint)
                and constraint.is_nulls_not_allowed()
            )
            if not is_nna:
                raise MergeError(
                    f"{scheme.name} carries a general null constraint "
                    f"({constraint}); Merge assumes family schemes carry "
                    "only nulls-not-allowed constraints"
                )
        if strict:
            required = set(_required_attributes(schema, scheme))
            optional = set(scheme.attribute_names) - required
            if optional:
                raise MergeError(
                    f"strict mode: attributes {sorted(optional)} of "
                    f"{scheme.name} allow nulls, violating the simplifying "
                    "assumption of Definition 4.1"
                )


def _unique_scheme_name(
    schema: RelationalSchema, family: MergeFamily, base: str
) -> str:
    taken = set(schema.scheme_names) - set(family.members)
    name = base
    while name in taken:
        name += "'"
    return name


class Merge:
    """``Merge(R-bar)`` applied to one relational schema (Definition 4.1).

    Parameters
    ----------
    schema:
        The source schema ``RS = (R, F u I u N)``.
    members:
        Names of the relation-schemes to merge (the family ``R-bar``).
    merged_name:
        Name for ``Rm``; defaults to the key-relation's name primed
        (``COURSE`` -> ``COURSE'``), matching the paper's figures.
    key_relation:
        Force a specific family member as key-relation; by default the
        Proposition 3.1 criterion selects one, and a fresh key-relation is
        synthesised when none qualifies.
    strict:
        Enforce the paper's all-attributes-non-null assumption instead of
        the generalised optional-attribute handling.
    """

    def __init__(
        self,
        schema: RelationalSchema,
        members: Sequence[str],
        merged_name: str | None = None,
        key_relation: str | None = None,
        strict: bool = False,
    ):
        self.schema = schema
        self.family = MergeFamily(schema, tuple(members))
        self.merged_name = merged_name
        self.key_relation = key_relation
        self.strict = strict

    def apply(self) -> MergeResult:
        """Run the procedure; returns the new schema and state mappings."""
        schema, family = self.schema, self.family
        _validate_family_constraints(schema, family, self.strict)

        detected = find_key_relation(family)
        if self.key_relation is not None:
            if self.key_relation not in family.members:
                raise MergeError(
                    f"forced key-relation {self.key_relation!r} is not a "
                    "family member"
                )
            if detected != self.key_relation and not _qualifies(
                family, self.key_relation
            ):
                raise MergeError(
                    f"{self.key_relation!r} does not satisfy the "
                    "Proposition 3.1 key-relation criterion for this family"
                )
            detected = self.key_relation

        synthesized = detected is None
        if synthesized:
            key_scheme = synthesize_key_relation(family)
        else:
            key_scheme = schema.scheme(detected)

        merged_name = _unique_scheme_name(
            schema, family, self.merged_name or key_scheme.name + "'"
        )

        # Step 1: Rm(Xm) with Km := Kk and Xm := Xk u U_i Xi.
        attrs: list[Attribute] = list(key_scheme.attributes)
        for member in family.members:
            if member == key_scheme.name:
                continue
            attrs.extend(schema.scheme(member).attributes)
        candidate_keys = set()
        for member_scheme in family.schemes():
            candidate_keys.update(member_scheme.candidate_keys)
        if synthesized:
            candidate_keys.add(tuple(key_scheme.primary_key))
        merged_scheme = RelationScheme(
            merged_name,
            tuple(attrs),
            tuple(key_scheme.primary_key),
            frozenset(candidate_keys),
        )

        info = self._build_info(key_scheme, merged_name, synthesized)
        fds = self._rewrite_fds(merged_scheme)
        inds = self._rewrite_inds(merged_name, info)
        null_constraints = self._generate_null_constraints(
            key_scheme, merged_name, synthesized, info
        )

        new_schema = schema.replacing_schemes(
            removed=family.members,
            added=[merged_scheme],
            fds=fds,
            inds=inds,
            null_constraints=null_constraints,
        )
        eta = MergeStateMapping(schema, merged_scheme, info)
        eta_prime = DecomposeStateMapping(schema, info)
        return MergeResult(schema, new_schema, info, eta, eta_prime)

    # -- pieces of Definition 4.1 ------------------------------------------

    def _build_info(
        self,
        key_scheme: RelationScheme,
        merged_name: str,
        synthesized: bool,
    ) -> MergedSchemeInfo:
        schema, family = self.schema, self.family
        family_attrs = {
            m: schema.scheme(m).attribute_names for m in family.members
        }
        family_keys = {m: schema.scheme(m).key_names for m in family.members}
        required = {
            m: _required_attributes(schema, schema.scheme(m))
            for m in family.members
        }
        return MergedSchemeInfo(
            merged_name=merged_name,
            family=family.members,
            key_relation=key_scheme.name,
            synthesized=synthesized,
            km=key_scheme.key_names,
            family_attrs=family_attrs,
            family_keys=family_keys,
            required=required,
        )

    def _rewrite_fds(
        self, merged_scheme: RelationScheme
    ) -> tuple[KeyDependency, ...]:
        """Step 2: family key dependencies are replaced by
        ``Rm: Km -> Xm``."""
        family = set(self.family.members)
        kept = [fd for fd in self.schema.fds if fd.scheme_name not in family]
        kept.append(KeyDependency.of_scheme(merged_scheme))
        return tuple(kept)

    def _rewrite_inds(
        self, merged_name: str, info: MergedSchemeInfo
    ) -> tuple[InclusionDependency, ...]:
        """Step 4: (a) rename family schemes to ``Rm``; (b) rewrite the
        right side of internal dependencies from ``Ki`` to ``Km``;
        (c) drop internal dependencies whose left side is a family primary
        key (they are implied by the total-equality constraints)."""
        family = set(info.family)
        family_pk_tuples = {info.family_keys[m] for m in info.family}
        km = info.km
        out: list[InclusionDependency] = []
        for ind in self.schema.inds:
            rewritten = ind
            if rewritten.lhs_scheme in family:
                rewritten = InclusionDependency(
                    merged_name,
                    rewritten.lhs_attrs,
                    rewritten.rhs_scheme,
                    rewritten.rhs_attrs,
                )
            if rewritten.rhs_scheme in family:
                rewritten = InclusionDependency(
                    rewritten.lhs_scheme,
                    rewritten.lhs_attrs,
                    merged_name,
                    rewritten.rhs_attrs,
                )
            if rewritten.is_internal() and rewritten.lhs_scheme == merged_name:
                # Step 4(b): internal right sides were family primary keys
                # (the schema class has key-based dependencies only).
                if rewritten.rhs_attrs in family_pk_tuples:
                    rewritten = rewritten.with_rhs_attrs(km)
                # Step 4(c): a family primary key included in Km is implied
                # by the total-equality constraint Km =! Ki.
                if (
                    rewritten.lhs_attrs in family_pk_tuples
                    and rewritten.rhs_attrs == km
                ):
                    continue
            if rewritten not in out:
                out.append(rewritten)
        return tuple(out)

    def _generate_null_constraints(
        self,
        key_scheme: RelationScheme,
        merged_name: str,
        synthesized: bool,
        info: MergedSchemeInfo,
    ) -> tuple[NullConstraint, ...]:
        """Step 3: the null constraints of the merged scheme."""
        schema, family = self.schema, self.family
        family_names = set(family.members)
        out: list[NullConstraint] = [
            c
            for c in schema.null_constraints
            if c.scheme_name not in family_names
        ]

        # 3(a): nulls-not-allowed on the key-relation's attributes.
        if synthesized:
            key_required: tuple[str, ...] = key_scheme.key_names
        else:
            key_required = info.required[key_scheme.name]
        out.append(nulls_not_allowed(merged_name, key_required))
        # Optional key-relation attributes keep plain nullability: the
        # key-relation's rows appear in every merged tuple, so no
        # synchronization is needed for them.

        # 3(b): total-equality Km =! Ki for every member whose key is not Km.
        for member in family.members:
            ki = info.family_keys[member]
            if ki != info.km:
                out.append(
                    TotalEqualityConstraint(merged_name, info.km, ki)
                )

        # 3(c): null-synchronization over each non-key-relation member.
        for member in family.members:
            if member == key_scheme.name:
                continue
            xi = info.family_attrs[member]
            if len(xi) <= 1:
                continue
            required = info.required[member]
            if len(required) > 1:
                out.extend(null_synchronization_set(merged_name, required))
            required_set = frozenset(required)
            for attr in xi:
                if attr not in required_set:
                    out.append(
                        NullExistenceConstraint(
                            merged_name, frozenset({attr}), required_set
                        )
                    )

        # 3(d): part-null across the family when the key-relation is fresh.
        if synthesized:
            groups = tuple(
                frozenset(info.required[m]) for m in family.members
            )
            out.append(PartNullConstraint(merged_name, groups))

        # 3(e): inter-member existence constraints from internal INDs.
        for ind in schema.inds:
            if (
                ind.lhs_scheme in family_names
                and ind.rhs_scheme in family_names
                and ind.lhs_attrs == info.family_keys[ind.lhs_scheme]
                and ind.rhs_attrs == info.family_keys[ind.rhs_scheme]
                and info.family_keys[ind.rhs_scheme] != info.km
            ):
                out.append(
                    NullExistenceConstraint(
                        merged_name,
                        frozenset(info.required[ind.lhs_scheme]),
                        frozenset(info.required[ind.rhs_scheme]),
                    )
                )
        return tuple(out)


def _qualifies(family: MergeFamily, candidate: str) -> bool:
    from repro.core.keyrelation import refkey_star

    rest = set(family.members) - {candidate}
    return refkey_star(family.schema, candidate, family.members) == rest


def merge(
    schema: RelationalSchema,
    members: Sequence[str],
    merged_name: str | None = None,
    key_relation: str | None = None,
    strict: bool = False,
) -> MergeResult:
    """Function-style entry point: ``Merge(R-bar)`` on ``schema``."""
    return Merge(schema, members, merged_name, key_relation, strict).apply()
