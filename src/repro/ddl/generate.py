"""CREATE TABLE and declarative-constraint generation.

Emits 1992-flavoured SQL for one relational schema against a
:class:`~repro.ddl.dialects.DialectProfile`: column definitions with
``NOT NULL`` wherever a nulls-not-allowed constraint applies, primary
keys, unique candidate keys (when maintainable), declarative referential
integrity where the dialect has it, and hands everything else to
:mod:`repro.ddl.triggers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import NullExistenceConstraint
from repro.ddl.dialects import DialectProfile, Mechanism
from repro.relational.schema import RelationScheme, RelationalSchema


class IdentifierCollisionError(ValueError):
    """Two distinct schema names map to the same SQL identifier.

    :func:`sql_identifier` folds dots, dashes and primes into
    underscore-ish characters, so ``A.B`` and ``A_B`` both become
    ``A_B`` -- silently emitting DDL where two names alias one table or
    column.  Generation refuses instead, naming both originals.
    """

    def __init__(self, context: str, first: str, second: str, ident: str):
        self.context = context
        self.first = first
        self.second = second
        self.identifier = ident
        super().__init__(
            f"{context}: names {first!r} and {second!r} both map to the "
            f"SQL identifier {ident!r}; rename one of them"
        )


def sql_identifier(name: str) -> str:
    """A portable SQL identifier: dots and dashes become underscores."""
    out = name.replace(".", "_").replace("-", "_").replace("'", "_P")
    if out and out[0].isdigit():
        out = "_" + out
    return out


def check_identifiers(schema: RelationalSchema) -> None:
    """Refuse identifier aliasing before any DDL is emitted.

    Scheme names share one namespace (table names); each scheme's
    attribute names share that table's column namespace.  Raises
    :class:`IdentifierCollisionError` on the first collision found.
    """
    seen: dict[str, str] = {}
    for scheme in schema.schemes:
        ident = sql_identifier(scheme.name)
        other = seen.setdefault(ident, scheme.name)
        if other != scheme.name:
            raise IdentifierCollisionError(
                "table names", other, scheme.name, ident
            )
        columns: dict[str, str] = {}
        for attr in scheme.attributes:
            col = sql_identifier(attr.name)
            owner = columns.setdefault(col, attr.name)
            if owner != attr.name:
                raise IdentifierCollisionError(
                    f"columns of {scheme.name}", owner, attr.name, col
                )


def sql_type(domain_name: str) -> str:
    """Domain -> 1992-flavoured SQL type (all domains are modelled as
    bounded character strings; the paper never relies on typed domains
    beyond compatibility)."""
    return "VARCHAR(64)"


@dataclass(frozen=True)
class Statement:
    """One emitted DDL statement."""

    kind: str
    mechanism: Mechanism
    sql: str
    subject: str

    def __str__(self) -> str:
        return self.sql


@dataclass
class DDLScript:
    """A generated schema definition: statements plus a capability report."""

    dialect: DialectProfile
    statements: list[Statement] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def sql(self) -> str:
        """The full script text."""
        return "\n\n".join(s.sql for s in self.statements)

    def count(self, mechanism: Mechanism) -> int:
        """Number of statements emitted under one mechanism."""
        return sum(1 for s in self.statements if s.mechanism is mechanism)

    def declarative_count(self) -> int:
        """Number of declarative statements."""
        return self.count(Mechanism.DECLARATIVE)

    def procedural_count(self) -> int:
        """Number of trigger/rule/validproc statements."""
        return sum(
            1
            for s in self.statements
            if s.mechanism
            in (Mechanism.TRIGGER, Mechanism.RULE, Mechanism.VALIDPROC)
        )

    def summary(self) -> str:
        """One-line statement/warning tally for reports."""
        return (
            f"{self.dialect.name}: {len(self.statements)} statements "
            f"({self.declarative_count()} declarative, "
            f"{self.procedural_count()} procedural), "
            f"{len(self.warnings)} warning(s)"
        )


def _not_null_columns(
    schema: RelationalSchema, scheme: RelationScheme
) -> set[str]:
    covered = set(scheme.key_names)
    for c in schema.null_constraints_of(scheme.name):
        if isinstance(c, NullExistenceConstraint) and c.is_nulls_not_allowed():
            covered |= c.rhs
    return covered


def _create_table(
    schema: RelationalSchema,
    scheme: RelationScheme,
    dialect: DialectProfile,
    script: DDLScript,
    inline_fks: tuple[InclusionDependency, ...] = (),
) -> None:
    not_null = _not_null_columns(schema, scheme)
    lines = [f"CREATE TABLE {sql_identifier(scheme.name)} ("]
    col_lines = []
    for attr in scheme.attributes:
        null_clause = " NOT NULL" if attr.name in not_null else " NULL"
        col_lines.append(
            f"    {sql_identifier(attr.name)} "
            f"{sql_type(attr.domain.name)}{null_clause}"
        )
    pk_cols = ", ".join(sql_identifier(a) for a in scheme.key_names)
    col_lines.append(f"    PRIMARY KEY ({pk_cols})")

    for key in sorted(scheme.candidate_keys, key=lambda k: [a.name for a in k]):
        names = tuple(a.name for a in key)
        if names == scheme.key_names:
            continue
        if set(names) <= not_null or dialect.nullable_candidate_keys:
            # A nullable candidate key is only emitted on dialects whose
            # UNIQUE treats null values as distinct (SQLite); the
            # formal "distinct" semantics then falls out of the index.
            cols = ", ".join(sql_identifier(n) for n in names)
            col_lines.append(f"    UNIQUE ({cols})")
        else:
            script.warnings.append(
                f"{scheme.name}: candidate key ({', '.join(names)}) allows "
                f"nulls; {dialect.name} considers all null values identical "
                "and cannot maintain it (Section 5.1)"
            )
    for ind in inline_fks:
        cols = ", ".join(sql_identifier(a) for a in ind.lhs_attrs)
        ref_cols = ", ".join(sql_identifier(a) for a in ind.rhs_attrs)
        col_lines.append(
            f"    FOREIGN KEY ({cols}) "
            f"REFERENCES {sql_identifier(ind.rhs_scheme)} ({ref_cols})"
        )
    lines.append(",\n".join(col_lines))
    lines.append(");")
    script.statements.append(
        Statement(
            kind="create-table",
            mechanism=Mechanism.DECLARATIVE,
            sql="\n".join(lines),
            subject=scheme.name,
        )
    )


def _declarative_foreign_key(
    ind: InclusionDependency, script: DDLScript
) -> None:
    table = sql_identifier(ind.lhs_scheme)
    cols = ", ".join(sql_identifier(a) for a in ind.lhs_attrs)
    ref_table = sql_identifier(ind.rhs_scheme)
    ref_cols = ", ".join(sql_identifier(a) for a in ind.rhs_attrs)
    name = sql_identifier(f"fk_{ind.lhs_scheme}_{'_'.join(ind.lhs_attrs)}")
    sql = (
        f"ALTER TABLE {table}\n"
        f"    ADD CONSTRAINT {name}\n"
        f"    FOREIGN KEY ({cols}) REFERENCES {ref_table} ({ref_cols});"
    )
    script.statements.append(
        Statement(
            kind="foreign-key",
            mechanism=Mechanism.DECLARATIVE,
            sql=sql,
            subject=str(ind),
        )
    )


def generate_ddl(
    schema: RelationalSchema, dialect: DialectProfile
) -> DDLScript:
    """Generate the full schema definition for one dialect.

    Declarative statements are emitted here; triggers/rules/validprocs
    are delegated to :mod:`repro.ddl.triggers`; what no mechanism covers
    lands in ``script.warnings``.
    """
    from repro.ddl import triggers as trig

    check_identifiers(schema)
    script = DDLScript(dialect=dialect)
    declarative_ri = dialect.referential_integrity is Mechanism.DECLARATIVE
    inlined: dict[str, list[InclusionDependency]] = {}
    if dialect.inline_foreign_keys and declarative_ri:
        for ind in schema.inds:
            if ind.is_key_based(schema):
                inlined.setdefault(ind.lhs_scheme, []).append(ind)
    for scheme in schema.schemes:
        _create_table(
            schema,
            scheme,
            dialect,
            script,
            inline_fks=tuple(inlined.get(scheme.name, ())),
        )

    for ind in schema.inds:
        key_based = ind.is_key_based(schema)
        if key_based and declarative_ri:
            if not dialect.inline_foreign_keys:
                _declarative_foreign_key(ind, script)
        elif key_based:
            trig.emit_inclusion_dependency(
                ind, dialect, dialect.referential_integrity, script
            )
        elif dialect.can_enforce_nonkey_inclusion():
            trig.emit_inclusion_dependency(
                ind, dialect, dialect.nonkey_inclusion, script
            )
        else:
            script.warnings.append(
                f"non-key-based inclusion dependency {ind} is not "
                f"maintainable on {dialect.name} (Section 5.1)"
            )

    for constraint in schema.null_constraints:
        if (
            isinstance(constraint, NullExistenceConstraint)
            and constraint.is_nulls_not_allowed()
        ):
            continue  # already NOT NULL column clauses
        if dialect.can_enforce_general_nulls():
            trig.emit_null_constraint(
                constraint, dialect, dialect.general_null_constraints, script
            )
        else:
            script.warnings.append(
                f"general null constraint {constraint} is not maintainable "
                f"on {dialect.name}"
            )
    return script
