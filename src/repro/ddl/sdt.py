"""The Schema Definition and Translation tool (SDT) facade [12].

"Given an EER schema, SDT generates the corresponding schema definition
for various relational DBMSs, such as DB2, SYBASE 4.0, and INGRES 6.3.
SDT provides the options of (i) establishing a one-to-one correspondence
between the relation-schemes ... and the object-sets ... or (ii) using
merging for reducing the number of relation-schemes" (Section 6).

:class:`SchemaDefinitionTool` reproduces both options: option (i) is the
plain Markowitz-Shoshani translation; option (ii) runs the merge planner
(with a strategy matching the target DBMS's capabilities) before DDL
generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.planner import MergePlanner, MergeStrategy, PlanResult
from repro.ddl.dialects import DialectProfile
from repro.ddl.generate import DDLScript, generate_ddl
from repro.eer.model import EERSchema
from repro.eer.translate import Translation, translate_eer
from repro.relational.schema import RelationalSchema


@dataclass(frozen=True)
class SDTOptions:
    """Tool options.

    ``merge`` selects option (ii); ``strategy`` defaults to matching the
    dialect (NNA_ONLY for systems without procedural mechanisms would be
    the safe default, but all three profiled systems have one, so
    AGGRESSIVE is allowed and the report will count the procedural
    statements it costs).
    """

    merge: bool = False
    strategy: MergeStrategy = MergeStrategy.AGGRESSIVE


@dataclass
class SDTReport:
    """Everything one SDT run produced."""

    dialect: DialectProfile
    options: SDTOptions
    translation: Translation
    schema: RelationalSchema
    script: DDLScript
    plan: PlanResult | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def scheme_count(self) -> int:
        """Relation-scheme count of the generated schema."""
        return len(self.schema.schemes)

    def summary(self) -> str:
        """Multi-line report: mode, statement counts, plan, notes."""
        mode = (
            f"merged ({self.options.strategy.value})"
            if self.options.merge
            else "one-to-one"
        )
        lines = [
            f"SDT -> {self.dialect.name}, {mode}: "
            f"{self.scheme_count} relation-scheme(s)",
            f"  {self.script.summary()}",
        ]
        if self.plan is not None:
            lines.append("  " + self.plan.summary().replace("\n", "\n  "))
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


class SchemaDefinitionTool:
    """EER schema in, per-DBMS schema definition out."""

    def __init__(self, eer: EERSchema):
        self.eer = eer
        self._translation = translate_eer(eer)

    @property
    def translation(self) -> Translation:
        """The underlying Markowitz-Shoshani translation."""
        return self._translation

    def generate(
        self, dialect: DialectProfile, options: SDTOptions = SDTOptions()
    ) -> SDTReport:
        """Run the tool for one target DBMS."""
        schema = self._translation.schema
        plan: PlanResult | None = None
        notes: list[str] = []

        if options.merge:
            planner = MergePlanner(schema, options.strategy)
            plan = planner.apply()
            schema = plan.schema
            if not plan.steps:
                notes.append("no mergeable families under this strategy")

        script = generate_ddl(schema, dialect)
        if script.warnings:
            notes.append(
                f"{len(script.warnings)} constraint(s) not maintainable on "
                f"{dialect.name}; consider strategy="
                f"{MergeStrategy.NNA_ONLY.value}"
            )
        return SDTReport(
            dialect=dialect,
            options=options,
            translation=self._translation,
            schema=schema,
            script=script,
            plan=plan,
            notes=notes,
        )
