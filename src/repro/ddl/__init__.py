"""Schema definition generation -- a reimplementation of the paper's SDT
tool [12] (Section 5.1/6).

* :mod:`repro.ddl.dialects` -- capability profiles of the three DBMSs the
  paper discusses (DB2, SYBASE 4.0, INGRES 6.3);
* :mod:`repro.ddl.generate` -- CREATE TABLE / declarative-constraint
  emission;
* :mod:`repro.ddl.triggers` -- procedural enforcement (SYBASE triggers,
  INGRES rules, DB2 validprocs) for general null constraints and
  non-key-based inclusion dependencies;
* :mod:`repro.ddl.sdt` -- the tool facade: EER schema in, per-DBMS schema
  definition out, with option (i) one relation per object-set or option
  (ii) merged.
"""

from repro.ddl.dialects import DB2, INGRES_63, SYBASE_40, DialectProfile
from repro.ddl.generate import DDLScript, generate_ddl
from repro.ddl.sdt import SDTOptions, SDTReport, SchemaDefinitionTool

__all__ = [
    "DB2",
    "INGRES_63",
    "SYBASE_40",
    "DialectProfile",
    "DDLScript",
    "generate_ddl",
    "SDTOptions",
    "SDTReport",
    "SchemaDefinitionTool",
]
