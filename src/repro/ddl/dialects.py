"""DBMS capability profiles (Section 5.1).

The paper's compatibility analysis turns on four capabilities:

* declarative referential integrity (key-based inclusion dependencies):
  supported by DB2, absent as a declarative feature in SYBASE 4.0 and
  INGRES 6.3 (both enforce it procedurally);
* non-key-based inclusion dependencies: "not supported by DBMSs such as
  IBM's DB2, but can be maintained in SYBASE 4.0 (triggers) and INGRES
  6.3 (rules)";
* general null constraints: maintainable via DB2 validprocs, SYBASE
  triggers, INGRES rules -- all procedural; only nulls-not-allowed is
  declarative everywhere;
* candidate keys that allow nulls: "cannot be maintained in DBMSs (e.g.
  SYBASE, INGRES) that consider all null values as identical".

Profiles are plain data; :mod:`repro.ddl.generate` and
:mod:`repro.ddl.triggers` consult them to decide what is emitted
declaratively, what becomes a trigger/rule/validproc, and what must be
reported as unsupported.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Mechanism(enum.Enum):
    """How a constraint class can be enforced on a given system."""

    DECLARATIVE = "declarative"
    TRIGGER = "trigger"
    RULE = "rule"
    VALIDPROC = "validproc"
    UNSUPPORTED = "unsupported"


@dataclass(frozen=True)
class DialectProfile:
    """Capability profile of one target DBMS."""

    name: str
    #: Mechanism for key-based inclusion dependencies (referential
    #: integrity constraints).
    referential_integrity: Mechanism
    #: Mechanism for non-key-based inclusion dependencies.
    nonkey_inclusion: Mechanism
    #: Mechanism for general null constraints (null-existence beyond NNA,
    #: null-synchronization, part-null, total-equality).
    general_null_constraints: Mechanism
    #: Whether candidate keys with nullable attributes can be maintained
    #: (requires nulls to be distinguishable; Section 5.1).
    nullable_candidate_keys: bool
    #: Keyword used for single-statement procedural constraints.
    procedural_keyword: str
    #: Whether the emitted procedural statements are real, executable SQL
    #: (the modern execution-backend flavour) rather than the paper-era
    #: pseudo-DDL of the 1992 systems.
    executable: bool = False
    #: Whether declarative foreign keys must be inlined into CREATE TABLE
    #: (SQLite has no ``ALTER TABLE ... ADD CONSTRAINT FOREIGN KEY``).
    inline_foreign_keys: bool = False

    def can_enforce_nonkey_inclusion(self) -> bool:
        """Whether any mechanism covers non-key-based inclusion dependencies."""
        return self.nonkey_inclusion is not Mechanism.UNSUPPORTED

    def can_enforce_general_nulls(self) -> bool:
        """Whether any mechanism covers general null constraints."""
        return self.general_null_constraints is not Mechanism.UNSUPPORTED


#: IBM DB2 (per the Referential Integrity Usage Guide [5]): declarative
#: RI, validprocs for null constraints, no mechanism for non-key-based
#: inclusion dependencies.
DB2 = DialectProfile(
    name="DB2",
    referential_integrity=Mechanism.DECLARATIVE,
    nonkey_inclusion=Mechanism.UNSUPPORTED,
    general_null_constraints=Mechanism.VALIDPROC,
    nullable_candidate_keys=False,
    procedural_keyword="VALIDPROC",
)

#: SYBASE 4.0 (Transact-SQL [13]): triggers for RI, non-key inclusion
#: dependencies and null constraints; all nulls identical.
SYBASE_40 = DialectProfile(
    name="SYBASE 4.0",
    referential_integrity=Mechanism.TRIGGER,
    nonkey_inclusion=Mechanism.TRIGGER,
    general_null_constraints=Mechanism.TRIGGER,
    nullable_candidate_keys=False,
    procedural_keyword="TRIGGER",
)

#: INGRES 6.3 (INGRES/SQL [6]): rules for everything procedural; all
#: nulls identical.
INGRES_63 = DialectProfile(
    name="INGRES 6.3",
    referential_integrity=Mechanism.RULE,
    nonkey_inclusion=Mechanism.RULE,
    general_null_constraints=Mechanism.RULE,
    nullable_candidate_keys=False,
    procedural_keyword="RULE",
)

#: SQLite (the execution backend of :mod:`repro.backend`): declarative
#: RI inlined into CREATE TABLE, triggers for everything procedural, and
#: -- because UNIQUE indexes treat null values as distinct -- candidate
#: keys that allow nulls are maintainable under the paper's ``distinct``
#: semantics (Section 5.1's "identical" reading needs extra triggers,
#: which :class:`repro.backend.SQLiteBackend` adds at deploy time).
SQLITE = DialectProfile(
    name="SQLite",
    referential_integrity=Mechanism.DECLARATIVE,
    nonkey_inclusion=Mechanism.TRIGGER,
    general_null_constraints=Mechanism.TRIGGER,
    nullable_candidate_keys=True,
    procedural_keyword="TRIGGER",
    executable=True,
    inline_foreign_keys=True,
)

#: The paper's Section 5.1 compatibility-analysis trio.  ``SQLITE`` is
#: deliberately not in here: ablation sweeps over the 1992 systems stay
#: byte-stable, and the executable profile is reached explicitly.
ALL_DIALECTS: tuple[DialectProfile, ...] = (DB2, SYBASE_40, INGRES_63)
