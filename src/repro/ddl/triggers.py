"""Procedural constraint enforcement: SYBASE triggers, INGRES rules, DB2
validprocs.

The paper (Section 5.1) notes these mechanisms "require tedious and
error-prone specifications of procedures"; this module writes the
procedures so nobody has to.  Each constraint class gets a dialect-shaped
statement whose body evaluates the constraint's single-tuple (null
constraints) or containment (inclusion dependencies) condition and
rejects the mutation otherwise.
"""

from __future__ import annotations

from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import (
    NullConstraint,
    NullExistenceConstraint,
    PartNullConstraint,
    TotalEqualityConstraint,
)
from repro.ddl.dialects import DialectProfile, Mechanism
from repro.ddl.generate import DDLScript, Statement, sql_identifier
from repro.obs.rules import classify_null_constraint


def _null_condition_violated(constraint: NullConstraint, row: str) -> str:
    """A SQL boolean expression that is true when ``row`` violates the
    constraint."""
    if isinstance(constraint, NullExistenceConstraint):
        lhs_total = " AND ".join(
            f"{row}.{sql_identifier(a)} IS NOT NULL"
            for a in sorted(constraint.lhs)
        )
        rhs_has_null = " OR ".join(
            f"{row}.{sql_identifier(a)} IS NULL"
            for a in sorted(constraint.rhs)
        )
        if lhs_total:
            return f"({lhs_total}) AND ({rhs_has_null})"
        return f"({rhs_has_null})"
    if isinstance(constraint, PartNullConstraint):
        group_exprs = []
        for group in constraint.groups:
            group_exprs.append(
                "("
                + " OR ".join(
                    f"{row}.{sql_identifier(a)} IS NULL" for a in sorted(group)
                )
                + ")"
            )
        return " AND ".join(group_exprs)
    if isinstance(constraint, TotalEqualityConstraint):
        pair_diff = " OR ".join(
            f"{row}.{sql_identifier(a)} <> {row}.{sql_identifier(b)}"
            for a, b in zip(constraint.lhs, constraint.rhs)
        )
        both_total = " AND ".join(
            f"{row}.{sql_identifier(a)} IS NOT NULL"
            for a in (*constraint.lhs, *constraint.rhs)
        )
        return f"({both_total}) AND ({pair_diff})"
    raise TypeError(f"unknown null constraint: {constraint!r}")


def _constraint_tag(constraint: NullConstraint) -> str:
    body = (
        str(constraint)
        .replace(" ", "")
        .replace(":", "_")
        .replace("|->", "_ne_")
        .replace("=!", "_te_")
        .replace(",", "_")
        .replace("{", "")
        .replace("}", "")
        .replace(";", "_")
        .replace("(", "_")
        .replace(")", "")
        .replace(".", "_")
        .replace("'", "_P")
    )
    return body[:48]


def abort_message(kind: str, label: str) -> str:
    """The tagged ``RAISE(ABORT)`` payload of one executable trigger.

    The backend's error classifier parses this back into the
    :class:`~repro.engine.database.ConstraintViolationError` kind and
    constraint label, so a SQLite rejection carries the same paper-rule
    provenance an engine rejection does.
    """
    return f"repro:{kind}:{label}"


def _sql_str(text: str) -> str:
    """``text`` as a SQL string literal (quotes doubled)."""
    return "'" + text.replace("'", "''") + "'"


def _sqlite_row_trigger(
    name: str, event: str, table: str, condition: str, message: str
) -> str:
    """One executable SQLite ``BEFORE`` row trigger rejecting via
    ``RAISE(ABORT, message)`` when ``condition`` holds."""
    return (
        f"CREATE TRIGGER {name}\n"
        f"BEFORE {event} ON {table}\n"
        f"FOR EACH ROW WHEN {condition}\n"
        f"BEGIN\n"
        f"    SELECT RAISE(ABORT, {_sql_str(message)});\n"
        f"END;"
    )


def _emit_sqlite_null_constraint(
    constraint: NullConstraint, script: DDLScript
) -> None:
    """Executable SQLite enforcement of one single-tuple null constraint:
    the same violation condition the 1992 flavours embed, evaluated on
    ``NEW`` before every insert and update."""
    table = sql_identifier(constraint.scheme_name)
    tag = _constraint_tag(constraint)
    condition = f"({_null_condition_violated(constraint, 'NEW')})"
    message = abort_message(
        classify_null_constraint(constraint), str(constraint)
    )
    sql = "\n".join(
        (
            f"-- enforces: {constraint}",
            _sqlite_row_trigger(
                f"trg_{tag}_ins", "INSERT", table, condition, message
            ),
            _sqlite_row_trigger(
                f"trg_{tag}_upd", "UPDATE", table, condition, message
            ),
        )
    )
    script.statements.append(
        Statement(
            kind="null-constraint",
            mechanism=Mechanism.TRIGGER,
            sql=sql,
            subject=str(constraint),
        )
    )


def _emit_sqlite_inclusion_dependency(
    ind: InclusionDependency, script: DDLScript
) -> None:
    """Executable SQLite enforcement of one (non-key) inclusion
    dependency, mirroring the engine's restrict semantics: the child
    side checks containment of total left-hand projections on insert and
    update; the parent side restricts deletes and watched-column updates
    while a referencing child row exists (the row being updated does not
    block itself when the dependency is self-referencing)."""
    child = sql_identifier(ind.lhs_scheme)
    parent = sql_identifier(ind.rhs_scheme)
    pairs = list(zip(ind.lhs_attrs, ind.rhs_attrs))
    tag = sql_identifier(f"{ind.lhs_scheme}_{'_'.join(ind.lhs_attrs)}")[:48]
    lhs_total = " AND ".join(
        f"NEW.{sql_identifier(l)} IS NOT NULL" for l, _ in pairs
    )
    match_new = " AND ".join(
        f"p.{sql_identifier(r)} = NEW.{sql_identifier(l)}" for l, r in pairs
    )
    child_condition = (
        f"({lhs_total})\n"
        f"    AND NOT EXISTS (SELECT 1 FROM {parent} p WHERE {match_new})"
    )
    exists_message = abort_message("inclusion-dependency", str(ind))
    sql = "\n".join(
        (
            f"-- enforces: {ind}",
            _sqlite_row_trigger(
                f"trg_ri_{tag}_ins",
                "INSERT",
                child,
                child_condition,
                exists_message,
            ),
            _sqlite_row_trigger(
                f"trg_ri_{tag}_upd",
                "UPDATE",
                child,
                child_condition,
                exists_message,
            ),
        )
    )
    script.statements.append(
        Statement(
            kind="inclusion-dependency",
            mechanism=Mechanism.TRIGGER,
            sql=sql,
            subject=str(ind),
        )
    )

    rhs_total = " AND ".join(
        f"OLD.{sql_identifier(r)} IS NOT NULL" for _, r in pairs
    )
    match_old = " AND ".join(
        f"i.{sql_identifier(l)} = OLD.{sql_identifier(r)}" for l, r in pairs
    )
    self_exclusion = (
        " AND i.rowid <> OLD.rowid" if ind.lhs_scheme == ind.rhs_scheme else ""
    )
    watched_changed = " OR ".join(
        f"OLD.{sql_identifier(r)} IS NOT NEW.{sql_identifier(r)}"
        for _, r in pairs
    )
    delete_condition = (
        f"({rhs_total})\n"
        f"    AND EXISTS (SELECT 1 FROM {child} i WHERE {match_old})"
    )
    update_condition = (
        f"({watched_changed})\n"
        f"    AND ({rhs_total})\n"
        f"    AND EXISTS (SELECT 1 FROM {child} i "
        f"WHERE {match_old}{self_exclusion})"
    )
    sql = "\n".join(
        (
            f"-- companion: restrict deletes/updates of {parent} that "
            f"would orphan {child} rows",
            _sqlite_row_trigger(
                f"trg_rd_{tag}",
                "DELETE",
                parent,
                delete_condition,
                abort_message("restrict-delete", str(ind)),
            ),
            _sqlite_row_trigger(
                f"trg_ru_{tag}",
                "UPDATE",
                parent,
                update_condition,
                abort_message("restrict-update", str(ind)),
            ),
        )
    )
    script.statements.append(
        Statement(
            kind="inclusion-dependency-delete",
            mechanism=Mechanism.TRIGGER,
            sql=sql,
            subject=str(ind),
        )
    )


def emit_null_constraint(
    constraint: NullConstraint,
    dialect: DialectProfile,
    mechanism: Mechanism,
    script: DDLScript,
) -> None:
    """Emit the procedural statement enforcing one null constraint."""
    if dialect.executable and mechanism is Mechanism.TRIGGER:
        _emit_sqlite_null_constraint(constraint, script)
        return
    table = sql_identifier(constraint.scheme_name)
    tag = _constraint_tag(constraint)
    comment = f"-- enforces: {constraint}"

    if mechanism is Mechanism.TRIGGER:
        condition = _null_condition_violated(constraint, "inserted")
        sql = (
            f"{comment}\n"
            f"CREATE TRIGGER trg_{tag}\n"
            f"ON {table} FOR INSERT, UPDATE AS\n"
            f"IF EXISTS (SELECT 1 FROM inserted WHERE {condition})\n"
            f"BEGIN\n"
            f"    RAISERROR 20001 'null constraint violated: {tag}'\n"
            f"    ROLLBACK TRANSACTION\n"
            f"END"
        )
    elif mechanism is Mechanism.RULE:
        condition = _null_condition_violated(constraint, "new")
        sql = (
            f"{comment}\n"
            f"CREATE RULE rule_{tag}\n"
            f"AFTER INSERT, UPDATE OF {table}\n"
            f"WHERE {condition}\n"
            f"EXECUTE PROCEDURE reject_violation"
            f"(msg = 'null constraint violated: {tag}');"
        )
    elif mechanism is Mechanism.VALIDPROC:
        condition = _null_condition_violated(constraint, "row")
        sql = (
            f"{comment}\n"
            f"-- DB2 VALIDPROC body (pseudo-PL/I): return nonzero when\n"
            f"-- {condition}\n"
            f"ALTER TABLE {table} VALIDPROC vp_{tag};"
        )
    else:  # pragma: no cover - callers check capability first
        raise ValueError(f"mechanism {mechanism} cannot enforce {constraint}")

    script.statements.append(
        Statement(
            kind="null-constraint",
            mechanism=mechanism,
            sql=sql,
            subject=str(constraint),
        )
    )


def emit_inclusion_dependency(
    ind: InclusionDependency,
    dialect: DialectProfile,
    mechanism: Mechanism,
    script: DDLScript,
) -> None:
    """Emit the procedural statement(s) enforcing one inclusion
    dependency (insert/update side on the child, delete side on the
    parent)."""
    if dialect.executable and mechanism is Mechanism.TRIGGER:
        _emit_sqlite_inclusion_dependency(ind, script)
        return
    child = sql_identifier(ind.lhs_scheme)
    parent = sql_identifier(ind.rhs_scheme)
    pairs = list(zip(ind.lhs_attrs, ind.rhs_attrs))
    tag = sql_identifier(f"{ind.lhs_scheme}_{'_'.join(ind.lhs_attrs)}")[:48]
    match = " AND ".join(
        f"p.{sql_identifier(r)} = i.{sql_identifier(l)}" for l, r in pairs
    )
    lhs_total = " AND ".join(
        f"i.{sql_identifier(l)} IS NOT NULL" for l, _ in pairs
    )
    comment = f"-- enforces: {ind}"

    if mechanism is Mechanism.TRIGGER:
        sql = (
            f"{comment}\n"
            f"CREATE TRIGGER trg_ri_{tag}\n"
            f"ON {child} FOR INSERT, UPDATE AS\n"
            f"IF EXISTS (SELECT 1 FROM inserted i\n"
            f"           WHERE {lhs_total}\n"
            f"             AND NOT EXISTS (SELECT 1 FROM {parent} p\n"
            f"                             WHERE {match}))\n"
            f"BEGIN\n"
            f"    RAISERROR 20002 'reference violated: {tag}'\n"
            f"    ROLLBACK TRANSACTION\n"
            f"END"
        )
    elif mechanism is Mechanism.RULE:
        sql = (
            f"{comment}\n"
            f"CREATE RULE rule_ri_{tag}\n"
            f"AFTER INSERT, UPDATE OF {child}\n"
            f"WHERE ({lhs_total.replace('i.', 'new.')})\n"
            f"EXECUTE PROCEDURE check_reference"
            f"(parent = '{parent}', tag = '{tag}');"
        )
    else:  # pragma: no cover - DB2 key-based RI is declarative
        raise ValueError(f"mechanism {mechanism} cannot enforce {ind}")

    script.statements.append(
        Statement(
            kind="inclusion-dependency",
            mechanism=mechanism,
            sql=sql,
            subject=str(ind),
        )
    )

    delete_guard = (
        f"-- companion: restrict deletes from {parent} that would orphan "
        f"{child} rows"
    )
    if mechanism is Mechanism.TRIGGER:
        sql = (
            f"{delete_guard}\n"
            f"CREATE TRIGGER trg_rd_{tag}\n"
            f"ON {parent} FOR DELETE AS\n"
            f"IF EXISTS (SELECT 1 FROM {child} i, deleted p WHERE {match})\n"
            f"BEGIN\n"
            f"    RAISERROR 20003 'restricted delete: {tag}'\n"
            f"    ROLLBACK TRANSACTION\n"
            f"END"
        )
    else:
        sql = (
            f"{delete_guard}\n"
            f"CREATE RULE rule_rd_{tag}\n"
            f"AFTER DELETE OF {parent}\n"
            f"EXECUTE PROCEDURE restrict_delete"
            f"(child = '{child}', tag = '{tag}');"
        )
    script.statements.append(
        Statement(
            kind="inclusion-dependency-delete",
            mechanism=mechanism,
            sql=sql,
            subject=str(ind),
        )
    )
