"""Distributed request spans: follow one request across the fleet.

The flat :class:`~repro.obs.trace.TraceEvent` layer answers *what* an
engine decided; this module answers *where a request's time went* once
the reproduction became a distributed system -- across the client, the
router's two-phase fan-out, each participant shard's prepare/commit,
the group-commit queue wait and fsync barrier, and the replication
apply on a replica.  It is deliberately dependency-free and speaks a
W3C-traceparent-style context so any hop can join a trace knowing only
the string it was handed.

A :class:`Span` is one timed operation: ``trace_id`` (shared by every
span of one request), ``span_id``, ``parent_id`` (how the waterfall
nests), a ``kind`` (``client``/``router``/``server``/``engine``/
``wal``/``repl``), wall-clock start/end stamped from a monotonic
delta, free-form ``attributes``, and point-in-time ``events`` (the
bridge from :class:`TraceEvent`\\ s).  Context travels on the wire as ::

    00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01

(version - 32-hex trace id - 16-hex parent span id - flags; bit 0 of
the flags is the head-sampling decision, so one client-side coin toss
governs every process the request touches).

Each process exports finished spans to a :class:`SpanSink` -- a ring
buffer (served live by the ``spans`` protocol verb) plus an optional
JSONL file (one ``Span.to_dict()`` per line; a fleet writes one file
per worker, ``<path>.w<i>``).  The ``repro trace`` CLI collects those
files, reassembles traces with :func:`assemble_traces`, and renders
:func:`render_waterfall` with :func:`critical_path` and
:func:`kind_breakdown` -- see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import random
import threading
import uuid
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter, time
from typing import IO, Any, Iterable, Mapping

__all__ = [
    "Span",
    "SpanSink",
    "assemble_traces",
    "critical_path",
    "decode_context",
    "encode_context",
    "kind_breakdown",
    "new_span_id",
    "new_trace_id",
    "read_span_lines",
    "render_trace",
    "render_waterfall",
    "unresolved_parents",
]


def new_trace_id() -> str:
    """A fresh 32-hex trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex span id."""
    return uuid.uuid4().hex[:16]


def encode_context(
    trace_id: str, span_id: str, sampled: bool = True
) -> str:
    """The traceparent-style wire form of a span context."""
    return f"00-{trace_id}-{span_id}-{'01' if sampled else '00'}"


def decode_context(value: Any) -> tuple[str, str, bool] | None:
    """Parse a wire context back to ``(trace_id, span_id, sampled)``.

    Anything malformed -- wrong arity, wrong field widths, non-hex ids
    -- returns ``None``: an unreadable context must degrade to "start a
    new trace", never reject the request carrying it.
    """
    if not isinstance(value, str):
        return None
    parts = value.split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
        flag_bits = int(flags, 16)
    except ValueError:
        return None
    return trace_id, span_id, bool(flag_bits & 0x01)


@dataclass
class Span:
    """One timed operation inside a distributed request.

    Start it with :meth:`Span.start` (which stamps both a wall-clock
    anchor and a monotonic origin, so durations never go backwards
    under clock steps) and finish it with :meth:`end`; an ended span is
    what a :class:`SpanSink` exports.
    """

    name: str
    trace_id: str
    span_id: str = field(default_factory=new_span_id)
    parent_id: str | None = None
    kind: str = "internal"
    #: Wall-clock start, epoch seconds (comparable across processes on
    #: one host; the waterfall's x axis).
    start_s: float = 0.0
    end_s: float | None = None
    #: Which process recorded the span (``client``, ``w0``, ``replica``).
    process: str | None = None
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)
    #: Point-in-time marks: ``{"name": ..., "at_s": ..., ...}`` -- the
    #: bridged :class:`~repro.obs.trace.TraceEvent` dicts land here.
    events: list[dict[str, Any]] = field(default_factory=list)
    _t0: float = field(default=0.0, repr=False, compare=False)

    @classmethod
    def start(
        cls,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        kind: str = "internal",
        process: str | None = None,
        **attributes: Any,
    ) -> "Span":
        """Open a span now; omit ``trace_id`` to root a new trace."""
        return cls(
            name=name,
            trace_id=trace_id or new_trace_id(),
            parent_id=parent_id,
            kind=kind,
            start_s=time(),
            process=process,
            attributes=dict(attributes),
            _t0=perf_counter(),
        )

    def context(self, sampled: bool = True) -> str:
        """This span's wire context (children parent onto it)."""
        return encode_context(self.trace_id, self.span_id, sampled)

    def child(
        self, name: str, kind: str = "internal", **attributes: Any
    ) -> "Span":
        """Open a child span in the same trace and process."""
        return Span.start(
            name,
            trace_id=self.trace_id,
            parent_id=self.span_id,
            kind=kind,
            process=self.process,
            **attributes,
        )

    def add_event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time mark at "now"."""
        event = {"name": name, "at_s": round(self._now(), 6)}
        event.update({k: v for k, v in attrs.items() if v is not None})
        self.events.append(event)

    def _now(self) -> float:
        """Wall-clock "now" derived from the monotonic origin."""
        return self.start_s + (perf_counter() - self._t0)

    def end(self, status: str | None = None) -> "Span":
        """Close the span (idempotent); returns it for chaining."""
        if self.end_s is None:
            self.end_s = self._now()
        if status is not None:
            self.status = status
        return self

    @property
    def duration_s(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return max(0.0, self.end_s - self.start_s)

    def to_dict(self) -> dict[str, Any]:
        """The JSONL export form (empty/``None`` fields dropped)."""
        out: dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "kind": self.kind,
            "start_s": round(self.start_s, 6),
            "end_s": round(self.end_s, 6) if self.end_s is not None else None,
            "status": self.status,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.process is not None:
            out["process"] = self.process
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.events:
            out["events"] = list(self.events)
        return {k: v for k, v in out.items() if v is not None}

    def to_json(self) -> str:
        """One JSONL line (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)


class SpanSink:
    """Where a process's finished spans go: a bounded ring buffer (the
    live ``spans`` verb's source) plus an optional JSONL file.

    ``sample`` is the head-sampling rate for *new* traces rooted in
    this process (requests arriving with a context follow the caller's
    decision instead).  The ring never blocks: at capacity the oldest
    span is evicted and counted in :attr:`dropped`, so the sink is safe
    on the server's hot path.  Thread-safe -- client threads and the
    server loop may share one.
    """

    def __init__(
        self,
        path: str | None = None,
        capacity: int = 2048,
        sample: float = 1.0,
        process: str | None = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.path = path
        self.sample = min(1.0, max(0.0, float(sample)))
        self.process = process
        self.exported = 0
        self.dropped = 0
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._stream: IO[str] | None = (
            open(path, "w") if path is not None else None
        )

    def sample_root(self) -> bool:
        """The head-sampling coin toss for one new trace."""
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        return random.random() < self.sample

    def start_span(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        kind: str = "internal",
        **attributes: Any,
    ) -> Span:
        """Open a span stamped with this sink's process name."""
        return Span.start(
            name,
            trace_id=trace_id,
            parent_id=parent_id,
            kind=kind,
            process=self.process,
            **attributes,
        )

    def export(self, span: Span) -> None:
        """Record one finished span (ending it if still open)."""
        span.end()
        record = span.to_dict()
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self.dropped += 1
            self._ring.append(record)
            self.exported += 1
            if self._stream is not None:
                self._stream.write(json.dumps(record, sort_keys=True))
                self._stream.write("\n")
                self._stream.flush()

    @property
    def depth(self) -> int:
        """Spans currently held in the ring."""
        return len(self._ring)

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The ring's spans, oldest first (the ``spans`` verb's body)."""
        with self._lock:
            spans = list(self._ring)
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return spans

    def close(self) -> None:
        """Close the JSONL stream (idempotent)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None


# -- trace reassembly and rendering -------------------------------------------


def read_span_lines(lines: Iterable[str]) -> list[dict]:
    """Parse JSONL span lines back into dicts (blank-safe)."""
    return [json.loads(line) for line in lines if line.strip()]


def assemble_traces(
    spans: Iterable[Mapping[str, Any]],
) -> dict[str, list[dict]]:
    """Group span dicts by ``trace_id``, each trace sorted by start
    time (ties broken parent-before-child so rendering is stable)."""
    traces: dict[str, list[dict]] = {}
    for span in spans:
        trace_id = span.get("trace_id")
        if trace_id:
            traces.setdefault(str(trace_id), []).append(dict(span))
    for members in traces.values():
        members.sort(
            key=lambda s: (s.get("start_s", 0.0), s.get("parent_id") or "")
        )
    return traces


def unresolved_parents(spans: Iterable[Mapping[str, Any]]) -> list[str]:
    """Parent ids referenced by a trace's spans but present in none of
    them -- empty iff every ``parent_id`` resolves."""
    spans = list(spans)
    known = {s.get("span_id") for s in spans}
    missing: list[str] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent and parent not in known and parent not in missing:
            missing.append(parent)
    return missing


def _children(spans: list[dict]) -> dict[str | None, list[dict]]:
    by_parent: dict[str | None, list[dict]] = {}
    known = {s.get("span_id") for s in spans}
    for span in spans:
        parent = span.get("parent_id")
        if parent not in known:
            parent = None  # orphan (e.g. parent lost to sampling): root it
        by_parent.setdefault(parent, []).append(span)
    for members in by_parent.values():
        members.sort(key=lambda s: s.get("start_s", 0.0))
    return by_parent


def _end_s(span: Mapping[str, Any]) -> float:
    end = span.get("end_s")
    if end is None:
        end = span.get("start_s", 0.0)
    return float(end)


def critical_path(spans: Iterable[Mapping[str, Any]]) -> list[dict]:
    """The chain of spans that bounded the trace's wall time: from the
    earliest root, repeatedly descend into the child that finished
    last.  A span off this path could have been faster without the
    request finishing sooner."""
    members = [dict(s) for s in spans]
    if not members:
        return []
    by_parent = _children(members)
    roots = by_parent.get(None, [])
    node = min(roots or members, key=lambda s: s.get("start_s", 0.0))
    path = [node]
    while True:
        kids = by_parent.get(node.get("span_id"), [])
        if not kids:
            return path
        node = max(kids, key=_end_s)
        path.append(node)


def kind_breakdown(
    spans: Iterable[Mapping[str, Any]],
) -> dict[str, float]:
    """Total span seconds per ``kind`` (spans of one kind may overlap
    across processes, so these sum to more than the trace's wall time;
    they answer "where was the work", not "where was the wall")."""
    totals: dict[str, float] = {}
    for span in spans:
        kind = str(span.get("kind", "internal"))
        seconds = max(0.0, _end_s(span) - float(span.get("start_s", 0.0)))
        totals[kind] = totals.get(kind, 0.0) + seconds
    return dict(sorted(totals.items(), key=lambda kv: -kv[1]))


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_waterfall(
    spans: Iterable[Mapping[str, Any]], width: int = 48
) -> str:
    """An ASCII waterfall of one trace: a row per span, indented by
    parent depth, with a ``=`` bar positioned on the trace's timeline."""
    members = [dict(s) for s in spans]
    if not members:
        return "(no spans)\n"
    t0 = min(float(s.get("start_s", 0.0)) for s in members)
    t1 = max(_end_s(s) for s in members)
    window = max(t1 - t0, 1e-9)
    by_parent = _children(members)
    lines: list[str] = []

    def row(span: dict, depth: int) -> None:
        start = float(span.get("start_s", 0.0))
        duration = max(0.0, _end_s(span) - start)
        lo = int((start - t0) / window * width)
        hi = max(lo + 1, int((_end_s(span) - t0) / window * width))
        bar = " " * lo + "=" * (hi - lo) + " " * (width - hi)
        label = "  " * depth + str(span.get("name", "?"))
        process = str(span.get("process") or "-")
        mark = " !" if span.get("status") not in (None, "ok") else ""
        lines.append(
            f"{process:<8}{label:<34}|{bar}| {_fmt_s(duration):>7}{mark}"
        )
        for kid in by_parent.get(span.get("span_id"), []):
            row(kid, depth + 1)

    for root in by_parent.get(None, []):
        row(root, 0)
    return "\n".join(lines) + "\n"


def render_trace(
    trace_id: str, spans: Iterable[Mapping[str, Any]], width: int = 48
) -> str:
    """The full ``repro trace`` report for one trace: header,
    waterfall, critical path, and the per-kind time breakdown."""
    members = [dict(s) for s in spans]
    if not members:
        return f"trace {trace_id}: no spans\n"
    t0 = min(float(s.get("start_s", 0.0)) for s in members)
    t1 = max(_end_s(s) for s in members)
    processes = sorted({str(s.get("process") or "-") for s in members})
    lines = [
        f"trace {trace_id} — {len(members)} span(s) across "
        f"{len(processes)} process(es) ({', '.join(processes)}) — "
        f"{_fmt_s(max(0.0, t1 - t0))}"
    ]
    missing = unresolved_parents(members)
    if missing:
        lines.append(
            "warning: unresolved parent span id(s): " + ", ".join(missing)
        )
    lines.append(render_waterfall(members, width=width).rstrip("\n"))
    path = critical_path(members)
    if path:
        path_s = max(0.0, _end_s(path[-1]) - float(path[0].get("start_s", 0)))
        lines.append(
            "critical path: "
            + " -> ".join(str(s.get("name", "?")) for s in path)
            + f" ({_fmt_s(path_s)})"
        )
    breakdown = kind_breakdown(members)
    if breakdown:
        lines.append(
            "time by kind: "
            + " · ".join(
                f"{kind} {_fmt_s(seconds)}"
                for kind, seconds in breakdown.items()
            )
        )
    return "\n".join(lines) + "\n"
