"""Decision-provenance observability for the enforcement engine.

The paper's constraint vocabulary is generated mechanically -- every
null constraint a merge produces has a provenance in one step of
Definition 4.1, every referential-integrity rejection traces back to a
Section 2 inclusion dependency, and the two Section 5 propositions
decide which merges a declarative DBMS can maintain.  This package
makes that provenance visible at run time:

* :mod:`repro.obs.trace` -- structured :class:`TraceEvent` records with
  ring-buffer and JSONL sinks; the engine, the consistency checker and
  the merge planner emit one event per enforcement decision;
* :mod:`repro.obs.rules` -- the constraint-kind classifier and the
  paper-rule labels (Definition 4.1 steps 3(a)-3(e)/4(b)-4(c),
  Section 3 constraint forms, Section 5.1 maintenance rules,
  Propositions 5.1/5.2) attached to every event and violation;
* :mod:`repro.obs.histogram` -- a fixed log-bucket latency histogram
  (no dependencies) behind ``EngineStats.latencies`` and the bench
  report's p50/p99 columns;
* :mod:`repro.obs.explain` -- EXPLAIN renderers: the compiled access
  plan behind each mutation kind, the provenance of merged null
  constraints, and the planner's admission decisions, as structured
  dicts plus human-readable text;
* :mod:`repro.obs.metrics` -- a dependency-free Counter/Gauge/Histogram
  registry with labels and Prometheus text exposition, backing the
  server's ``/metrics`` endpoint and the ``stats`` protocol verb;
* :mod:`repro.obs.monitor` -- the ``python -m repro monitor`` terminal
  dashboard renderer, fed by the ``stats`` verb;
* :mod:`repro.obs.spans` -- distributed request spans with a
  W3C-traceparent-style wire context, the per-process
  :class:`~repro.obs.spans.SpanSink` (ring buffer + JSONL), and the
  trace reassembly/waterfall rendering behind ``repro trace``.
"""

from repro.obs.histogram import LatencyHistogram
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.rules import classify_null_constraint, paper_rule, rule_for
from repro.obs.spans import (
    Span,
    SpanSink,
    assemble_traces,
    critical_path,
    decode_context,
    encode_context,
    render_trace,
    render_waterfall,
)
from repro.obs.trace import (
    CorrelatingTracer,
    JsonlTracer,
    RingBufferTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "CorrelatingTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "LatencyHistogram",
    "MetricsRegistry",
    "RingBufferTracer",
    "Span",
    "SpanSink",
    "TraceEvent",
    "Tracer",
    "assemble_traces",
    "classify_null_constraint",
    "critical_path",
    "decode_context",
    "encode_context",
    "paper_rule",
    "render_trace",
    "render_waterfall",
    "rule_for",
]
