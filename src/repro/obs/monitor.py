"""The ``python -m repro monitor`` terminal dashboard renderer.

Curses-free by design: the CLI polls the server's ``stats`` protocol
verb (the engine snapshot plus the server-layer ``server`` key with its
metric-registry snapshot) and repaints the terminal with one ANSI
home-and-clear escape per refresh.  Everything here is pure rendering
-- :func:`render_dashboard` takes two consecutive snapshots and returns
the screen as a string -- so the dashboard is testable without a
server, a terminal, or a clock.

Layout::

    repro monitor 127.0.0.1:7043 — every 2.0s
    requests 1204 (61.5/s) · connections 4 · inflight 2 · queue 7

    verb             count     p50      p99       errors
    insert             980   210us    2.1ms
    ...

    violations by rule
      restrict-delete · Section 5.1 (...)                    12

    group commit: 151 barriers · batch p50 4 p99 16 · wal sync p99 1.2ms
    engine: inserts 980 · deletes 12 · lookups 204 · ...
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["render_dashboard"]

#: ANSI: cursor home + clear to end of screen (repaint in place).
CLEAR = "\x1b[H\x1b[J"


def _metric_samples(stats: Mapping[str, Any], name: str) -> list[dict]:
    """The samples of one registry family out of a ``stats`` result
    (empty when the server runs with metrics disabled)."""
    server = stats.get("server")
    if not isinstance(server, Mapping):
        return []
    for family in server.get("metrics", []):
        if family.get("name") == name:
            return list(family.get("samples", []))
    return []


def _fmt_us(us: float | None) -> str:
    """A microsecond quantity with an adaptive unit (``-`` if absent)."""
    if us is None:
        return "-"
    if us >= 1_000_000:
        return f"{us / 1_000_000:.2f}s"
    if us >= 1_000:
        return f"{us / 1_000:.1f}ms"
    return f"{us:.0f}us"


def _rate(cur: Any, prev: Any, interval: float) -> str:
    """A per-second delta between two counter readings."""
    if prev is None or interval <= 0:
        return ""
    try:
        return f" ({(cur - prev) / interval:.1f}/s)"
    except TypeError:
        return ""


def render_dashboard(
    cur: Mapping[str, Any],
    prev: Mapping[str, Any] | None = None,
    interval: float = 2.0,
    title: str = "repro monitor",
) -> str:
    """One dashboard frame from a ``stats`` snapshot (and optionally
    the previous one, for throughput deltas)."""
    lines: list[str] = []
    server = cur.get("server") if isinstance(cur.get("server"), Mapping) else {}
    prev_server = (
        prev.get("server")
        if prev is not None and isinstance(prev.get("server"), Mapping)
        else {}
    )
    lines.append(f"{title} — every {interval:g}s")

    requests = server.get("requests_served", 0)
    rate = _rate(requests, prev_server.get("requests_served"), interval)
    gauges = (
        f"requests {requests}{rate}"
        f" · connections {server.get('connections', 0)}"
        f" · inflight {server.get('inflight', 0)}"
        f" · queue {server.get('queue_depth', 0)}"
    )
    if server.get("poisoned"):
        gauges += f" · POISONED: {server['poisoned']}"
    lines.append(gauges)
    lines.append("")

    counts = {
        tuple(s["labels"].items()): s["value"]
        for s in _metric_samples(cur, "repro_server_requests_total")
    }
    latencies = {
        s["labels"].get("verb", ""): s["value"]
        for s in _metric_samples(cur, "repro_server_request_seconds")
    }
    errors_by_type = _metric_samples(cur, "repro_server_errors_total")
    if counts:
        lines.append(f"{'verb':<18}{'count':>8}  {'p50':>8}  {'p99':>8}")
        for labels, count in sorted(counts.items()):
            verb = dict(labels).get("verb", "")
            hist = latencies.get(verb, {})
            lines.append(
                f"{verb:<18}{int(count):>8}  "
                f"{_fmt_us(hist.get('p50_us')):>8}  "
                f"{_fmt_us(hist.get('p99_us')):>8}"
            )
        lines.append("")

    violations = _metric_samples(cur, "repro_server_violations_total")
    if violations:
        lines.append("violations by rule")
        for sample in sorted(
            violations, key=lambda s: -s["value"]
        ):
            kind = sample["labels"].get("kind", "")
            rule = sample["labels"].get("rule", "")
            lines.append(f"  {kind} · {rule:<52} {int(sample['value']):>6}")
        lines.append("")
    if errors_by_type:
        parts = ", ".join(
            f"{s['labels'].get('type', '')}={int(s['value'])}"
            for s in sorted(errors_by_type, key=lambda s: -s["value"])
        )
        lines.append(f"errors: {parts}")
        lines.append("")

    batch = _metric_samples(cur, "repro_server_commit_batch_size")
    sync = _metric_samples(cur, "repro_server_wal_sync_seconds")
    if batch and batch[0]["value"].get("count"):
        b = batch[0]["value"]
        commit = (
            f"group commit: {b['count']} barriers · "
            f"batch p50 {b.get('p50', 0):g} p99 {b.get('p99', 0):g}"
        )
        if sync and sync[0]["value"].get("count"):
            commit += (
                f" · wal sync p99 {_fmt_us(sync[0]['value'].get('p99_us'))}"
            )
        lines.append(commit)

    engine_keys = (
        "inserts",
        "deletes",
        "updates",
        "lookups",
        "constraint_checks",
        "wal_group_commits",
        "wal_batched_records",
        "checkpoints",
    )
    engine = " · ".join(
        f"{k} {cur.get(k, 0)}" for k in engine_keys if cur.get(k)
    )
    lines.append(f"engine: {engine or 'idle'}")
    return "\n".join(lines) + "\n"
