"""The ``python -m repro monitor`` terminal dashboard renderer.

Curses-free by design: the CLI polls the server's ``stats`` protocol
verb (the engine snapshot plus the server-layer ``server`` key with its
metric-registry snapshot) and repaints the terminal with one ANSI
home-and-clear escape per refresh.  Everything here is pure rendering
-- :func:`render_dashboard` takes two consecutive snapshots and returns
the screen as a string -- so the dashboard is testable without a
server, a terminal, or a clock.

Layout::

    repro monitor 127.0.0.1:7043 — every 2.0s
    requests 1204 (61.5/s) · connections 4 · inflight 2 · queue 7

    verb             count     p50      p99       errors
    insert             980   210us    2.1ms
    ...

    violations by rule
      restrict-delete · Section 5.1 (...)                    12

    group commit: 151 barriers · batch p50 4 p99 16 · wal sync p99 1.2ms
    engine: inserts 980 · deletes 12 · lookups 204 · ...
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["render_dashboard", "render_fleet_dashboard"]

#: ANSI: cursor home + clear to end of screen (repaint in place).
CLEAR = "\x1b[H\x1b[J"


def _metric_samples(stats: Mapping[str, Any], name: str) -> list[dict]:
    """The samples of one registry family out of a ``stats`` result
    (empty when the server runs with metrics disabled)."""
    server = stats.get("server")
    if not isinstance(server, Mapping):
        return []
    for family in server.get("metrics", []):
        if family.get("name") == name:
            return list(family.get("samples", []))
    return []


def _fmt_us(us: float | None) -> str:
    """A microsecond quantity with an adaptive unit (``-`` if absent)."""
    if us is None:
        return "-"
    if us >= 1_000_000:
        return f"{us / 1_000_000:.2f}s"
    if us >= 1_000:
        return f"{us / 1_000:.1f}ms"
    return f"{us:.0f}us"


def _rate(cur: Any, prev: Any, interval: float) -> str:
    """A per-second delta between two counter readings."""
    if prev is None or interval <= 0:
        return ""
    try:
        return f" ({(cur - prev) / interval:.1f}/s)"
    except TypeError:
        return ""


def render_dashboard(
    cur: Mapping[str, Any],
    prev: Mapping[str, Any] | None = None,
    interval: float = 2.0,
    title: str = "repro monitor",
) -> str:
    """One dashboard frame from a ``stats`` snapshot (and optionally
    the previous one, for throughput deltas)."""
    lines: list[str] = []
    server = cur.get("server") if isinstance(cur.get("server"), Mapping) else {}
    prev_server = (
        prev.get("server")
        if prev is not None and isinstance(prev.get("server"), Mapping)
        else {}
    )
    lines.append(f"{title} — every {interval:g}s")

    requests = server.get("requests_served", 0)
    rate = _rate(requests, prev_server.get("requests_served"), interval)
    gauges = (
        f"requests {requests}{rate}"
        f" · connections {server.get('connections', 0)}"
        f" · inflight {server.get('inflight', 0)}"
        f" · queue {server.get('queue_depth', 0)}"
    )
    if server.get("poisoned"):
        gauges += f" · POISONED: {server['poisoned']}"
    lines.append(gauges)
    repl = server.get("replication")
    if isinstance(repl, Mapping):
        if repl.get("role") == "replica":
            applied = repl.get("applied", 0)
            rate = _rate(
                applied,
                (prev_server.get("replication") or {}).get("applied")
                if isinstance(prev_server.get("replication"), Mapping)
                else None,
                interval,
            )
            lines.append(
                f"replica of {repl.get('primary', '?')}"
                f" · applied lsn {repl.get('applied_lsn', 0)}"
                f" · applied {applied} record(s){rate}"
                f" · lag {repl.get('lag', 0)} record(s)"
            )
        elif repl.get("replicas"):
            lines.append(
                f"primary · {repl.get('replicas', 0)} sync replica(s)"
                f" · shipped {repl.get('shipped', 0)} record(s)"
            )
    spans = server.get("spans")
    if isinstance(spans, Mapping):
        span_line = (
            f"spans: ring {spans.get('depth', 0)}"
            f" · exported {spans.get('exported', 0)}"
            f" · dropped {spans.get('dropped', 0)}"
        )
        sample = spans.get("sample")
        if isinstance(sample, (int, float)):
            span_line += f" · sample {sample:g}"
        lines.append(span_line)
    lines.append("")

    counts = {
        tuple(s["labels"].items()): s["value"]
        for s in _metric_samples(cur, "repro_server_requests_total")
    }
    latencies = {
        s["labels"].get("verb", ""): s["value"]
        for s in _metric_samples(cur, "repro_server_request_seconds")
    }
    errors_by_type = _metric_samples(cur, "repro_server_errors_total")
    if counts:
        lines.append(f"{'verb':<18}{'count':>8}  {'p50':>8}  {'p99':>8}")
        for labels, count in sorted(counts.items()):
            verb = dict(labels).get("verb", "")
            hist = latencies.get(verb, {})
            lines.append(
                f"{verb:<18}{int(count):>8}  "
                f"{_fmt_us(hist.get('p50_us')):>8}  "
                f"{_fmt_us(hist.get('p99_us')):>8}"
            )
        lines.append("")

    violations = _metric_samples(cur, "repro_server_violations_total")
    if violations:
        lines.append("violations by rule")
        for sample in sorted(
            violations, key=lambda s: -s["value"]
        ):
            kind = sample["labels"].get("kind", "")
            rule = sample["labels"].get("rule", "")
            lines.append(f"  {kind} · {rule:<52} {int(sample['value']):>6}")
        lines.append("")
    if errors_by_type:
        parts = ", ".join(
            f"{s['labels'].get('type', '')}={int(s['value'])}"
            for s in sorted(errors_by_type, key=lambda s: -s["value"])
        )
        lines.append(f"errors: {parts}")
        lines.append("")

    batch = _metric_samples(cur, "repro_server_commit_batch_size")
    sync = _metric_samples(cur, "repro_server_wal_sync_seconds")
    if batch and batch[0]["value"].get("count"):
        b = batch[0]["value"]
        commit = (
            f"group commit: {b['count']} barriers · "
            f"batch p50 {b.get('p50', 0):g} p99 {b.get('p99', 0):g}"
        )
        if sync and sync[0]["value"].get("count"):
            commit += (
                f" · wal sync p99 {_fmt_us(sync[0]['value'].get('p99_us'))}"
            )
        lines.append(commit)

    ind_joins = cur.get("ind_joins")
    if isinstance(ind_joins, Mapping) and ind_joins:
        lines.append("advisor: hottest inclusion dependencies")
        prev_joins = (
            prev.get("ind_joins")
            if prev is not None and isinstance(prev.get("ind_joins"), Mapping)
            else {}
        )
        hottest = sorted(ind_joins.items(), key=lambda kv: -kv[1])[:5]
        for ind, count in hottest:
            rate = _rate(count, prev_joins.get(ind), interval)
            lines.append(f"  {int(count):>8}{rate:<12} {ind}")
        mutations = cur.get("scheme_mutations")
        if isinstance(mutations, Mapping) and mutations:
            busiest = sorted(mutations.items(), key=lambda kv: -kv[1])[:5]
            lines.append(
                "  mutations: "
                + " · ".join(f"{s} {int(n)}" for s, n in busiest)
            )
        lines.append("")

    engine_keys = (
        "inserts",
        "deletes",
        "updates",
        "lookups",
        "constraint_checks",
        "wal_group_commits",
        "wal_batched_records",
        "checkpoints",
    )
    engine = " · ".join(
        f"{k} {cur.get(k, 0)}" for k in engine_keys if cur.get(k)
    )
    lines.append(f"engine: {engine or 'idle'}")
    return "\n".join(lines) + "\n"


def _worker_id(stats: Mapping[str, Any], fallback: int) -> int:
    server = stats.get("server")
    if isinstance(server, Mapping):
        shard = server.get("shard")
        if isinstance(shard, Mapping):
            try:
                return int(shard.get("worker_id", fallback))
            except (TypeError, ValueError):
                return fallback
    return fallback


def render_fleet_dashboard(
    snapshots: Sequence[Mapping[str, Any]],
    prev_snapshots: Sequence[Mapping[str, Any]] | None = None,
    interval: float = 2.0,
    title: str = "repro monitor",
) -> str:
    """One dashboard frame for a sharded fleet: a per-worker row each
    (worker id column) plus a ``fleet`` totals row.

    ``snapshots`` is the list of per-worker ``stats`` results in worker
    order, as :meth:`repro.client.ShardedClient.stats` returns them.
    ``prev_snapshots`` (same shape) enables throughput deltas, matched
    by worker id so a respawned fleet still renders.
    """
    lines: list[str] = []
    lines.append(f"{title} — {len(snapshots)} workers — every {interval:g}s")
    lines.append("")

    prev_by_id: dict[int, Mapping[str, Any]] = {}
    for i, snap in enumerate(prev_snapshots or ()):
        prev_by_id[_worker_id(snap, i)] = snap

    header = (
        f"{'worker':<8}{'requests':>10}{'rate':>12}{'conn':>6}"
        f"{'queue':>7}{'mutations':>11}{'prepares':>12}{'violations':>12}"
    )
    lines.append(header)

    totals = {
        "requests": 0,
        "conn": 0,
        "queue": 0,
        "mutations": 0,
        "committed": 0,
        "aborted": 0,
        "expired": 0,
        "violations": 0,
    }
    total_rate = 0.0
    have_rate = False
    poisoned: list[int] = []

    rows = sorted(
        (
            (_worker_id(snap, i), snap)
            for i, snap in enumerate(snapshots)
        ),
        key=lambda pair: pair[0],
    )
    for wid, snap in rows:
        server = (
            snap.get("server") if isinstance(snap.get("server"), Mapping) else {}
        )
        prev_server_snap = prev_by_id.get(wid)
        prev_server = (
            prev_server_snap.get("server")
            if prev_server_snap is not None
            and isinstance(prev_server_snap.get("server"), Mapping)
            else {}
        )
        requests = int(server.get("requests_served", 0))
        prev_requests = prev_server.get("requests_served")
        if prev_requests is not None and interval > 0:
            rate = (requests - prev_requests) / interval
            total_rate += rate
            have_rate = True
            rate_s = f"{rate:.1f}/s"
        else:
            rate_s = "-"
        conn = int(server.get("connections", 0))
        queue = int(server.get("queue_depth", 0))
        mutations = sum(
            int(snap.get(k, 0)) for k in ("inserts", "deletes", "updates")
        )
        prepares = server.get("prepares")
        if isinstance(prepares, Mapping):
            committed = int(prepares.get("committed", 0))
            aborted = int(prepares.get("aborted", 0))
            expired = int(prepares.get("expired", 0))
            prepares_s = f"{committed}/{aborted}/{expired}"
        else:
            committed = aborted = expired = 0
            prepares_s = "-"
        violations = sum(
            int(s["value"])
            for s in _metric_samples(snap, "repro_server_violations_total")
        )
        totals["requests"] += requests
        totals["conn"] += conn
        totals["queue"] += queue
        totals["mutations"] += mutations
        totals["committed"] += committed
        totals["aborted"] += aborted
        totals["expired"] += expired
        totals["violations"] += violations
        if server.get("poisoned"):
            poisoned.append(wid)
        lines.append(
            f"{'w%d' % wid:<8}{requests:>10}{rate_s:>12}{conn:>6}"
            f"{queue:>7}{mutations:>11}{prepares_s:>12}{violations:>12}"
        )

    total_rate_s = f"{total_rate:.1f}/s" if have_rate else "-"
    total_prepares_s = (
        f"{totals['committed']}/{totals['aborted']}/{totals['expired']}"
    )
    lines.append("-" * len(header))
    lines.append(
        f"{'fleet':<8}{totals['requests']:>10}{total_rate_s:>12}"
        f"{totals['conn']:>6}{totals['queue']:>7}{totals['mutations']:>11}"
        f"{total_prepares_s:>12}{totals['violations']:>12}"
    )
    if poisoned:
        lines.append("")
        lines.append(
            "POISONED workers: " + ", ".join(f"w{w}" for w in poisoned)
        )
    lines.append("")
    lines.append("prepares column: committed/aborted/expired")
    return "\n".join(lines) + "\n"
