"""The structured trace layer: events, the sink protocol, and sinks.

A :class:`TraceEvent` records one enforcement decision -- a mutation
outcome, a constraint rejection, a reference-check access path, a
consistency-check verdict, or a planner merge decision -- with the
constraint id, its paper-rule label, the access path taken, rows
touched and wall time.  Emitters hold a :class:`Tracer` (or ``None``
for zero overhead); the two stock sinks keep the last *n* events in
memory (:class:`RingBufferTracer`) or stream JSON lines
(:class:`JsonlTracer`).

Event vocabulary (the ``event`` field):

``mutation``        an accepted engine mutation (``op`` says which)
``reject``          a rejected mutation, with ``constraint``/``rule``
``ref-check``       one reference-existence probe with its access path
``restrict-check``  one incoming-reference restrict probe
``check``           one constraint evaluated by the consistency checker
``violation``       a constraint the checker found violated
``merge-decision``  one family admitted/skipped by the merge planner
``merge-applied``   one merge the planner actually performed
``wal``             one mutation record appended to the write-ahead log
``checkpoint``      the log compacted into a snapshot
``recovery``        one crash-recovery step (truncate/rollback/replay/verify)
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, replace
from typing import IO, Iterable, Protocol


@dataclass(frozen=True)
class TraceEvent:
    """One enforcement decision.  ``None`` fields are omitted from the
    serialized form, so every sink sees only what the decision recorded."""

    event: str
    op: str | None = None
    scheme: str | None = None
    constraint: str | None = None
    kind: str | None = None
    rule: str | None = None
    outcome: str | None = None
    access_path: str | None = None
    rows: int | None = None
    elapsed_us: float | None = None
    detail: str | None = None
    #: Request correlation id, stamped by the server's
    #: :class:`CorrelatingTracer` so one grep of a JSONL sink
    #: reconstructs a request's full decision path.
    trace_id: str | None = None

    def to_dict(self) -> dict:
        """A plain dict with the ``None`` fields dropped."""
        return {k: v for k, v in asdict(self).items() if v is not None}

    def to_json(self) -> str:
        """One JSONL line (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)


class Tracer(Protocol):
    """Anything that accepts trace events (a sink)."""

    def emit(self, event: TraceEvent) -> None:
        """Record one event."""
        ...  # pragma: no cover - protocol


class RingBufferTracer:
    """Keeps the last ``capacity`` events in memory.

    The cheap always-on sink: attach one to a long-lived database and
    inspect ``tracer.events`` after a surprising rejection.
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        """Record one event (evicting the oldest at capacity)."""
        self._buffer.append(event)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """The buffered events, oldest first."""
        return tuple(self._buffer)

    def clear(self) -> None:
        """Drop every buffered event."""
        self._buffer.clear()

    def find(self, event: str) -> tuple[TraceEvent, ...]:
        """The buffered events of one kind, oldest first."""
        return tuple(e for e in self._buffer if e.event == event)


class JsonlTracer:
    """Streams events as JSON lines to a writable text stream.

    The stream is flushed per event so a trace survives a crash;
    :meth:`close` closes the stream only when this tracer opened it
    (``JsonlTracer.to_path``), never a caller-owned one like stdout.
    """

    def __init__(self, stream: IO[str]):
        self._stream = stream
        self._owns_stream = False
        self.events_written = 0

    @classmethod
    def to_path(cls, path: str) -> "JsonlTracer":
        """A tracer writing (truncating) the file at ``path``."""
        tracer = cls(open(path, "w"))
        tracer._owns_stream = True
        return tracer

    def emit(self, event: TraceEvent) -> None:
        """Write one JSONL line."""
        self._stream.write(event.to_json())
        self._stream.write("\n")
        self._stream.flush()
        self.events_written += 1

    def close(self) -> None:
        """Close the underlying stream if this tracer opened it."""
        if self._owns_stream:
            self._stream.close()


class CorrelatingTracer:
    """Stamps the active request's ``trace_id`` onto every event before
    forwarding to the wrapped sink.

    The server sets :attr:`trace_id` for the duration of one request's
    engine work and clears it afterwards (safe because the engine runs
    on a single event loop and never awaits mid-mutation), so every
    :class:`TraceEvent` a request causes -- the mutation itself, its
    reference checks, WAL appends, or the rejection -- carries the same
    id the client saw echoed in its response.  Events emitted while no
    request is active (e.g. the group-commit record covering a whole
    batch) pass through unstamped, as do events that already carry an
    id.
    """

    def __init__(self, sink: Tracer):
        self._sink = sink
        #: The id to stamp; ``None`` between requests.
        self.trace_id: str | None = None

    def emit(self, event: TraceEvent) -> None:
        """Forward one event, stamped with the active trace id."""
        if self.trace_id is not None and event.trace_id is None:
            event = replace(event, trace_id=self.trace_id)
        self._sink.emit(event)


class TeeTracer:
    """Fans every event out to several sinks (e.g. ring buffer + JSONL)."""

    def __init__(self, *tracers: Tracer):
        self._tracers = tracers

    def emit(self, event: TraceEvent) -> None:
        """Forward one event to every sink."""
        for tracer in self._tracers:
            tracer.emit(event)


def read_jsonl(lines: Iterable[str]) -> list[dict]:
    """Parse JSONL trace lines back into event dicts (blank-safe)."""
    return [json.loads(line) for line in lines if line.strip()]
