"""A fixed log-bucket latency histogram (dependency-free).

Buckets are powers of two over a 1 microsecond base: bucket 0 holds
latencies up to 1us, bucket *i* holds ``(2**(i-1), 2**i]`` microseconds,
and the last bucket absorbs everything above ~9 minutes.  Recording is
O(1) (a ``log2`` and an increment), the memory footprint is one small
list, and quantiles come back as the upper bound of the bucket holding
the requested rank -- a deliberate over-estimate, stable across runs,
which is what a perf-regression gate wants.

The exact minimum, maximum and sum are tracked alongside the buckets so
reports can bound the quantile error.
"""

from __future__ import annotations

import math
from typing import Iterator

#: Bucket 0 upper bound, in seconds (1 microsecond).
BASE_SECONDS = 1e-6
#: Bucket count; the last bucket tops out at ``BASE * 2**(N-1)`` (~550 s).
N_BUCKETS = 30


class LatencyHistogram:
    """Latency distribution with O(1) record and log-bucket quantiles."""

    __slots__ = ("counts", "count", "total", "min_seen", "max_seen")

    def __init__(self) -> None:
        self.counts = [0] * N_BUCKETS
        self.count = 0
        self.total = 0.0
        self.min_seen = math.inf
        self.max_seen = 0.0

    @staticmethod
    def bucket_index(seconds: float) -> int:
        """The bucket a latency falls into."""
        if seconds <= BASE_SECONDS:
            return 0
        index = math.ceil(math.log2(seconds / BASE_SECONDS))
        return min(index, N_BUCKETS - 1)

    @staticmethod
    def bucket_bound(index: int) -> float:
        """The inclusive upper bound of one bucket, in seconds."""
        return BASE_SECONDS * (1 << index)

    def record(self, seconds: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        if seconds < 0.0:
            seconds = 0.0
        self.counts[self.bucket_index(seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min_seen:
            self.min_seen = seconds
        if seconds > self.max_seen:
            self.max_seen = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's observations into this one.

        Guards against the two silent-corruption cases: merging a
        histogram into itself would double every count while iterating
        the very list being mutated, and merging one with a different
        bucket layout would add counts to the wrong latency ranges.
        Both raise ``ValueError`` instead.
        """
        if other is self:
            raise ValueError("cannot merge a histogram into itself")
        if len(other.counts) != len(self.counts):
            raise ValueError(
                f"bucket layouts differ ({len(other.counts)} vs "
                f"{len(self.counts)} buckets); refusing to merge"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile in seconds (bucket-upper-bound estimate,
        capped at the exact maximum seen); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= target:
                return min(self.bucket_bound(i), self.max_seen)
        return self.max_seen  # pragma: no cover - defensive

    def cumulative(self) -> Iterator[tuple[float, int]]:
        """``(upper_bound_seconds, cumulative_count)`` per non-empty
        prefix, for Prometheus-style cumulative buckets."""
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            yield self.bucket_bound(i), cumulative

    def to_prometheus(self, name: str, labels: dict | None = None) -> str:
        """Spec-conformant Prometheus exposition lines for this
        histogram, without family headers (ends with a newline).

        Buckets are cumulative with ``le`` upper bounds in seconds and
        close with the mandatory ``+Inf`` bucket, followed by ``_sum``
        and ``_count``; label values are escaped per the text format.
        Empty leading buckets are skipped and the saturated tail is
        collapsed into ``+Inf`` -- cumulative semantics make both
        lossless.
        """
        # Lazy import: metrics.py imports this module at its top level.
        from repro.obs.metrics import render_histogram

        lines = render_histogram(
            name, labels, self.cumulative(), self.total, self.count
        )
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """A JSON-ready summary in microseconds."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum_us": round(self.total * 1e6, 3),
            "min_us": round(self.min_seen * 1e6, 3),
            "p50_us": round(self.quantile(0.50) * 1e6, 3),
            "p90_us": round(self.quantile(0.90) * 1e6, 3),
            "p99_us": round(self.quantile(0.99) * 1e6, 3),
            "max_us": round(self.max_seen * 1e6, 3),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.count == 0:
            return "LatencyHistogram(empty)"
        return (
            f"LatencyHistogram(count={self.count}, "
            f"p50={self.quantile(0.5) * 1e6:.1f}us, "
            f"p99={self.quantile(0.99) * 1e6:.1f}us)"
        )
