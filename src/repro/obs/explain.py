"""EXPLAIN: render enforcement plans and merge provenance.

``explain_mutation`` answers "what will the engine check, in what
order, through which index" for one mutation kind on one scheme -- the
compiled :class:`~repro.engine.plans.SchemeAccessPlan` made those
decisions at schema-compile time, and this module makes them readable.
``explain_null_constraints`` answers "where did this constraint come
from" for the null constraints a merge generated, labelling each with
its Definition 4.1 step.  Everything returns plain dicts (JSON-ready)
with a separate text renderer, so the CLI can serve both humans and
machines from one computation.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.rules import classify_null_constraint, paper_rule
from repro.relational.schema import RelationalSchema

#: The mutation kinds ``explain_mutation`` understands.
MUTATION_OPS = ("insert", "update", "delete")


def _reference_path(db: Any, scheme: str, attrs: tuple[str, ...], is_pk: bool) -> str:
    """The access path a reference probe into ``scheme[attrs]`` takes."""
    if is_pk:
        return "pk-index"
    if tuple(attrs) in db.table(scheme).group_indexes:
        return "group-index"
    return "scan"


def explain_mutation(db: Any, op: str, scheme_name: str) -> dict:
    """The ordered checks one mutation kind runs on one scheme.

    ``db`` is a :class:`~repro.engine.database.Database`; the result
    lists every check in execution order with its constraint id, kind,
    paper-rule label and access path.
    """
    if op not in MUTATION_OPS:
        raise ValueError(f"op must be one of {MUTATION_OPS}, not {op!r}")
    plan = db.plan(scheme_name)
    checks: list[dict] = []

    def add(check: str, **fields: Any) -> None:
        entry = {"step": len(checks) + 1, "check": check}
        entry.update({k: v for k, v in fields.items() if v is not None})
        checks.append(entry)

    if op in ("insert", "update"):
        if op == "insert":
            add(
                "structure",
                rule=paper_rule("structure"),
                detail=(
                    "row attributes must be exactly "
                    f"{{{', '.join(sorted(plan.attr_set))}}}"
                ),
            )
        for constraint, _ in plan.null_checks:
            kind = classify_null_constraint(constraint)
            add(
                "null-constraint",
                constraint=str(constraint),
                kind=kind,
                rule=paper_rule(kind),
                access_path="per-tuple (compiled check)",
            )
        add(
            "primary-key",
            constraint=f"{scheme_name} key ({', '.join(plan.key_names)})",
            kind="primary-key",
            rule=paper_rule("primary-key"),
            access_path="pk-index",
        )
        for key_names, _ in plan.candidate_keys:
            add(
                "candidate-key",
                constraint=f"{scheme_name} key ({', '.join(key_names)})",
                kind="candidate-key",
                rule=paper_rule("candidate-key"),
                access_path="key-index",
                detail=f"{db.null_semantics} null semantics",
            )
        for ref in plan.outgoing:
            add(
                "inclusion-dependency",
                constraint=str(ref.ind),
                kind="inclusion-dependency",
                rule=paper_rule("inclusion-dependency"),
                access_path=_reference_path(db, ref.scheme, ref.attrs, ref.is_pk),
                detail=f"referenced row must exist in {ref.scheme}",
            )
    if op in ("update", "delete"):
        kind = "restrict-update" if op == "update" else "restrict-delete"
        for ref in plan.incoming:
            add(
                kind,
                constraint=str(ref.ind),
                kind=kind,
                rule=paper_rule(kind),
                access_path=_reference_path(db, ref.scheme, ref.attrs, ref.is_pk),
                detail=(
                    f"no {ref.scheme} row may still reference the "
                    + ("old value" if op == "update" else "deleted row")
                ),
            )
    return {
        "op": op,
        "scheme": scheme_name,
        "null_semantics": db.null_semantics,
        "checks": checks,
    }


def explain_database(
    db: Any,
    schemes: Iterable[str] | None = None,
    ops: Iterable[str] = MUTATION_OPS,
) -> dict:
    """Mutation explanations for several schemes, keyed by scheme."""
    names = list(schemes) if schemes is not None else list(db.schema.scheme_names)
    return {
        "null_semantics": db.null_semantics,
        "schemes": {
            name: {op: explain_mutation(db, op, name) for op in ops}
            for name in names
        },
    }


def explain_null_constraints(
    schema: RelationalSchema, scheme_name: str | None = None
) -> dict:
    """Provenance of a schema's null constraints: each constraint with
    its Section 3 kind and the Definition 4.1 step that generates it."""
    constraints = [
        {
            "scheme": c.scheme_name,
            "constraint": str(c),
            "kind": classify_null_constraint(c),
            "rule": paper_rule(classify_null_constraint(c)),
        }
        for c in schema.null_constraints
        if scheme_name is None or c.scheme_name == scheme_name
    ]
    return {"scheme": scheme_name, "null_constraints": constraints}


# -- text rendering -----------------------------------------------------------


def render_mutation(explanation: dict) -> str:
    """Human-readable form of one ``explain_mutation`` result."""
    lines = [
        f"EXPLAIN {explanation['op']} on {explanation['scheme']} "
        f"(null semantics: {explanation['null_semantics']})"
    ]
    for check in explanation["checks"]:
        head = f"  {check['step']}. {check['check']}"
        if "constraint" in check:
            head += f": {check['constraint']}"
        if "access_path" in check:
            head += f"  [{check['access_path']}]"
        lines.append(head)
        if "detail" in check:
            lines.append(f"       {check['detail']}")
        if check.get("rule"):
            lines.append(f"       rule: {check['rule']}")
    if len(lines) == 1:
        lines.append("  (no checks: the scheme has no constraints for this op)")
    return "\n".join(lines)


def render_database(explanation: dict) -> str:
    """Human-readable form of one ``explain_database`` result."""
    sections = []
    for per_op in explanation["schemes"].values():
        for op_explanation in per_op.values():
            sections.append(render_mutation(op_explanation))
    return "\n\n".join(sections)


def render_null_constraints(explanation: dict) -> str:
    """Human-readable form of one ``explain_null_constraints`` result."""
    constraints = explanation["null_constraints"]
    if not constraints:
        return "no null constraints"
    lines = ["null-constraint provenance:"]
    for entry in constraints:
        lines.append(f"  {entry['constraint']}  [{entry['kind']}]")
        lines.append(f"       rule: {entry['rule']}")
    return "\n".join(lines)
