"""A dependency-free metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` holds named metric families --
:class:`Counter`, :class:`Gauge` and :class:`Histogram` -- each of which
fans out into children keyed by label values (``labels(verb="insert")``).
The registry renders the whole set in the Prometheus text exposition
format (``# HELP``/``# TYPE`` headers, escaped label values, cumulative
``le`` histogram buckets ending at ``+Inf`` with ``_sum``/``_count``
lines) and snapshots it as JSON-ready dicts for the ``stats`` protocol
verb and the ``repro monitor`` dashboard.

Histograms reuse the engine's log2-bucket
:class:`~repro.obs.histogram.LatencyHistogram` for timings; a family
constructed with explicit ``buckets`` (e.g. group-commit batch sizes)
uses a fixed-bound cumulative histogram instead, rendered through the
same :func:`render_histogram` so both are spec-conformant.

Gauges may be backed by a callback (:meth:`Gauge.set_callback`) so
live quantities -- queue depth, open connections -- are read at scrape
time and can never drift from the value they mirror.

Everything here is synchronous and allocation-light: recording into a
counter or histogram is a dict lookup and an increment, which is what
lets the server keep the registry enabled under load (the measured
throughput cost is under 5%; see ``benchmarks/bench_server.py
--metrics``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.obs.histogram import LatencyHistogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "format_labels",
    "render_histogram",
]


def escape_label_value(value: Any) -> str:
    """A label value escaped for the text exposition format
    (backslash, double quote and newline are the three escapes the
    Prometheus spec defines)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: Mapping[str, Any] | None) -> str:
    """The ``{a="x",b="y"}`` label block (empty string for no labels)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _format_bound(bound: float) -> str:
    """An ``le`` bound rendered compactly (``1e-06``, ``0.000512``)."""
    return f"{bound:.6g}"


def render_histogram(
    name: str,
    labels: Mapping[str, Any] | None,
    cumulative: Iterable[tuple[float, int]],
    total_sum: float,
    count: int,
) -> list[str]:
    """Spec-conformant histogram sample lines: cumulative ``le`` buckets
    (leading empty buckets skipped, saturated tail collapsed into the
    mandatory ``+Inf`` bucket), then ``_sum`` and ``_count``.

    ``cumulative`` yields ``(upper_bound, cumulative_count)`` pairs in
    increasing bound order; the ``le`` label is appended after any
    caller labels so every line of one family shares its prefix.
    """
    base = dict(labels) if labels else {}
    lines: list[str] = []
    for bound, cum in cumulative:
        if cum == 0:
            continue  # leading empty buckets carry no information
        lines.append(
            f"{name}_bucket"
            f"{format_labels({**base, 'le': _format_bound(bound)})} {cum}"
        )
        if cum == count:
            break  # every later bucket only repeats the total
    lines.append(f"{name}_bucket{format_labels({**base, 'le': '+Inf'})} {count}")
    lines.append(f"{name}_sum{format_labels(base)} {total_sum:.9f}")
    lines.append(f"{name}_count{format_labels(base)} {count}")
    return lines


class _FixedBucketHistogram:
    """A cumulative histogram over caller-chosen upper bounds (for
    unit-less quantities like batch sizes, where the latency
    histogram's microsecond buckets would mislabel every value)."""

    __slots__ = ("bounds", "counts", "count", "total", "max_seen")

    def __init__(self, bounds: Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("buckets must be a non-empty increasing sequence")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0
        self.max_seen = 0.0

    def record(self, value: float) -> None:
        """Record one observation (values above the last bound land in
        the implicit ``+Inf`` overflow)."""
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        self.count += 1
        self.total += value
        if value > self.max_seen:
            self.max_seen = value

    def cumulative(self) -> Iterable[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` per bound, in order."""
        cum = 0
        for bound, c in zip(self.bounds, self.counts):
            cum += c
            yield bound, cum

    def quantile(self, q: float) -> float:
        """The ``q``-quantile as a bucket upper bound (capped at the
        exact maximum seen); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        for bound, c in zip(self.bounds, self.counts):
            cum += c
            if cum >= target:
                return min(bound, self.max_seen)
        return self.max_seen

    def to_dict(self) -> dict:
        """A JSON-ready summary (in the observed unit, not seconds)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": round(self.total, 3),
            "p50": round(self.quantile(0.50), 3),
            "p99": round(self.quantile(0.99), 3),
            "max": round(self.max_seen, 3),
        }


class _Family:
    """Shared machinery of one named metric family: label validation
    and the children map (one child per distinct label-value tuple)."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], Any] = {}

    def _child_values(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def _make_child(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels: Any) -> Any:
        """The child for one label-value combination (created on first
        use)."""
        key = self._child_values(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _default_child(self) -> Any:
        """The single child of an unlabeled family."""
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled by {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    def items(self) -> list[tuple[dict[str, str], Any]]:
        """``(labels_dict, child)`` pairs in first-use order."""
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in self._children.items()
        ]

    def header(self) -> list[str]:
        """The ``# HELP`` / ``# TYPE`` lines of this family."""
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]


class _Value:
    """One numeric child (a counter's or gauge's current value)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class Counter(_Family):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"

    def _make_child(self) -> _Value:
        return _Value()

    def labels(self, **labels: Any) -> "_CounterChild":
        """The counter child for one label combination."""
        return _CounterChild(super().labels(**labels))

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled counter."""
        self._default_child().inc(amount)

    def value(self, **labels: Any) -> float:
        """The current value under one label combination."""
        return super().labels(**labels).value

    def render(self) -> list[str]:
        """Exposition sample lines for every child."""
        return [
            f"{self.name}{format_labels(labels)} {_format_number(child.value)}"
            for labels, child in self.items()
        ]

    def snapshot_value(self, child: _Value) -> float:
        """JSON-ready value of one child."""
        return child.value


class _CounterChild:
    """Mutation handle for one counter child."""

    __slots__ = ("_cell",)

    def __init__(self, cell: _Value):
        self._cell = cell

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self._cell.value += amount

    @property
    def value(self) -> float:
        """The child's current value."""
        return self._cell.value


class Gauge(_Family):
    """A value that can go up and down; optionally callback-backed so
    scrapes read the live quantity."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._callback: Callable[[], float] | None = None

    def _make_child(self) -> _Value:
        return _Value()

    def set(self, value: float) -> None:
        """Set the unlabeled gauge."""
        self._default_child().value = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the unlabeled gauge upward."""
        self._default_child().value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the unlabeled gauge downward."""
        self._default_child().value -= amount

    def set_callback(self, fn: Callable[[], float]) -> None:
        """Back the (unlabeled) gauge with ``fn``, evaluated at every
        render/snapshot -- the value can then never drift from the
        quantity it mirrors."""
        if self.labelnames:
            raise ValueError("callback gauges cannot be labeled")
        self._callback = fn

    def current(self) -> float:
        """The unlabeled gauge's value (through the callback if set)."""
        if self._callback is not None:
            return float(self._callback())
        return self._default_child().value

    def render(self) -> list[str]:
        """Exposition sample lines for every child."""
        if self._callback is not None:
            return [f"{self.name} {_format_number(self.current())}"]
        return [
            f"{self.name}{format_labels(labels)} {_format_number(child.value)}"
            for labels, child in self.items()
        ]


class Histogram(_Family):
    """A distribution; latency-shaped by default (log2 microsecond
    buckets via :class:`LatencyHistogram`), or over explicit ``buckets``
    for unit-less quantities."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None

    def _make_child(self) -> Any:
        if self.buckets is not None:
            return _FixedBucketHistogram(self.buckets)
        return LatencyHistogram()

    def observe(self, value: float) -> None:
        """Record into the unlabeled histogram."""
        self._default_child().observe(value)

    def labels(self, **labels: Any) -> Any:
        """The histogram child (it records via ``.record(value)``, and
        also answers ``.observe(value)`` through this wrapper)."""
        return _HistogramChild(super().labels(**labels))

    def render(self) -> list[str]:
        """Exposition sample lines (buckets, sum, count) per child."""
        lines: list[str] = []
        for labels, child in self.items():
            lines.extend(
                render_histogram(
                    self.name,
                    labels,
                    child.cumulative(),
                    child.total,
                    child.count,
                )
            )
        return lines


class _HistogramChild:
    """Mutation handle for one histogram child."""

    __slots__ = ("_hist",)

    def __init__(self, hist: Any):
        self._hist = hist

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._hist.record(value)

    @property
    def count(self) -> int:
        """Observations recorded so far."""
        return self._hist.count


def _format_number(value: float) -> str:
    """Integers render without a trailing ``.0``; everything else as-is."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """A named collection of metric families with one exposition.

    Families register in creation order and names are unique; asking
    for an existing name returns the existing family when the type and
    label names match (so modules can share a registry without
    coordinating construction order) and raises otherwise.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, cls: type, name: str, *args: Any, **kwargs: Any):
        existing = self._families.get(name)
        if existing is not None:
            wanted = kwargs.get("labelnames") or (args[1] if len(args) > 1 else ())
            if type(existing) is not cls or existing.labelnames != tuple(wanted):
                raise ValueError(
                    f"metric {name!r} already registered with a different "
                    "type or label set"
                )
            return existing
        family = cls(name, *args, **kwargs)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Register (or fetch) a counter family."""
        return self._get_or_create(Counter, name, help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Register (or fetch) a gauge family."""
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        """Register (or fetch) a histogram family."""
        family = self._get_or_create(
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )
        if buckets is not None and family.buckets != tuple(buckets):
            raise ValueError(
                f"metric {name!r} already registered with different buckets"
            )
        return family

    def render(self) -> str:
        """The full text exposition (ends with a newline)."""
        lines: list[str] = []
        for family in self._families.values():
            lines.extend(family.header())
            lines.extend(family.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> list[dict]:
        """JSON-ready state: one dict per family with its samples
        (numeric values for counters/gauges, summary dicts for
        histograms)."""
        out: list[dict] = []
        for family in self._families.values():
            samples: list[dict] = []
            if isinstance(family, Gauge) and family._callback is not None:
                samples.append({"labels": {}, "value": family.current()})
            else:
                for labels, child in family.items():
                    value: Any
                    if isinstance(family, Histogram):
                        value = child.to_dict()
                    else:
                        value = child.value
                    samples.append({"labels": labels, "value": value})
            out.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
            )
        return out
