"""The four EER structures of Figure 8.

Each is "amenable for representation involving a single relation":

* (i)   a generalization hierarchy whose specializations carry several
        attributes -- mergeable, but the merged relation needs general
        null constraints (null-synchronization across each
        specialization's attributes);
* (ii)  binary many-to-one relationship-sets *with attributes* anchored
        at one entity-set -- mergeable with general null constraints
        (the relationship attribute must be synchronized with the
        foreign key, the Figure 1(iii) situation);
* (iii) a generalization hierarchy whose specializations have exactly
        one own attribute, no specializations of their own, and no
        relationship participation -- mergeable with only
        nulls-not-allowed constraints (Proposition 5.2 via
        condition (1));
* (iv)  attribute-free binary many-to-one relationship-sets whose
        one-sides are plain entity-sets with single-attribute
        identifiers -- mergeable with only nulls-not-allowed constraints
        (Proposition 5.2 via condition (2)).
"""

from __future__ import annotations

from repro.eer.model import (
    Cardinality,
    EERAttribute,
    EERSchema,
    EntitySet,
    Generalization,
    Participation,
    RelationshipSet,
)
from repro.relational.attributes import Domain

_ID = Domain("id")
_TEXT = Domain("text")
_DATE = Domain("date")


def fig8_i_generalization_general() -> EERSchema:
    """Figure 8(i): ISA hierarchy with multi-attribute specializations."""
    employee = EntitySet(
        "EMPLOYEE", (EERAttribute("SSN", _ID),), identifier=("SSN",)
    )
    engineer = EntitySet(
        "ENGINEER",
        (EERAttribute("DEGREE", _TEXT), EERAttribute("SPECIALTY", _TEXT)),
    )
    manager = EntitySet(
        "MANAGER",
        (EERAttribute("LEVEL", _TEXT), EERAttribute("BONUS", _TEXT)),
    )
    return EERSchema(
        name="fig8-i",
        object_sets=(employee, engineer, manager),
        generalizations=(
            Generalization("EMPLOYEE", ("ENGINEER", "MANAGER")),
        ),
    )


def fig8_ii_star_general() -> EERSchema:
    """Figure 8(ii): many-to-one relationship-sets with attributes."""
    employee = EntitySet(
        "EMPLOYEE", (EERAttribute("SSN", _ID),), identifier=("SSN",)
    )
    project = EntitySet(
        "PROJECT", (EERAttribute("NR", _ID),), identifier=("NR",)
    )
    department = EntitySet(
        "DEPARTMENT", (EERAttribute("NAME", _TEXT),), identifier=("NAME",)
    )
    works = RelationshipSet(
        "WORKS",
        attributes=(EERAttribute("SINCE", _DATE, required=False),),
        participants=(
            Participation("EMPLOYEE", Cardinality.MANY),
            Participation("PROJECT", Cardinality.ONE),
        ),
    )
    belongs = RelationshipSet(
        "BELONGS",
        attributes=(EERAttribute("ROLE", _TEXT),),
        participants=(
            Participation("EMPLOYEE", Cardinality.MANY),
            Participation("DEPARTMENT", Cardinality.ONE),
        ),
    )
    return EERSchema(
        name="fig8-ii",
        object_sets=(employee, project, department, works, belongs),
    )


def fig8_iii_generalization_nna() -> EERSchema:
    """Figure 8(iii): ISA hierarchy satisfying condition (1) of
    Section 5.2 -- one own attribute per specialization, no further
    structure."""
    vehicle = EntitySet(
        "VEHICLE", (EERAttribute("VIN", _ID),), identifier=("VIN",)
    )
    car = EntitySet("CAR", (EERAttribute("DOORS", _TEXT),))
    truck = EntitySet("TRUCK", (EERAttribute("PAYLOAD", _TEXT),))
    return EERSchema(
        name="fig8-iii",
        object_sets=(vehicle, car, truck),
        generalizations=(Generalization("VEHICLE", ("CAR", "TRUCK")),),
    )


def fig8_iv_star_nna() -> EERSchema:
    """Figure 8(iv): attribute-free many-to-one star satisfying
    condition (2) of Section 5.2."""
    book = EntitySet(
        "BOOK", (EERAttribute("ISBN", _ID),), identifier=("ISBN",)
    )
    publisher = EntitySet(
        "PUBLISHER", (EERAttribute("NAME", _TEXT),), identifier=("NAME",)
    )
    language = EntitySet(
        "LANGUAGE", (EERAttribute("CODE", _TEXT),), identifier=("CODE",)
    )
    published_by = RelationshipSet(
        "ISSUED",
        participants=(
            Participation("BOOK", Cardinality.MANY),
            Participation("PUBLISHER", Cardinality.ONE),
        ),
    )
    written_in = RelationshipSet(
        "WRITTEN",
        participants=(
            Participation("BOOK", Cardinality.MANY),
            Participation("LANGUAGE", Cardinality.ONE),
        ),
    )
    return EERSchema(
        name="fig8-iv",
        object_sets=(book, publisher, language, published_by, written_in),
    )


def all_fig8_schemas() -> dict[str, EERSchema]:
    """The four structures keyed by their figure label."""
    return {
        "8(i)": fig8_i_generalization_general(),
        "8(ii)": fig8_ii_star_general(),
        "8(iii)": fig8_iii_generalization_nna(),
        "8(iv)": fig8_iv_star_nna(),
    }
