"""The four EER structures of Figure 8.

Each is "amenable for representation involving a single relation":

* (i)   a generalization hierarchy whose specializations carry several
        attributes -- mergeable, but the merged relation needs general
        null constraints (null-synchronization across each
        specialization's attributes);
* (ii)  binary many-to-one relationship-sets *with attributes* anchored
        at one entity-set -- mergeable with general null constraints
        (the relationship attribute must be synchronized with the
        foreign key, the Figure 1(iii) situation);
* (iii) a generalization hierarchy whose specializations have exactly
        one own attribute, no specializations of their own, and no
        relationship participation -- mergeable with only
        nulls-not-allowed constraints (Proposition 5.2 via
        condition (1));
* (iv)  attribute-free binary many-to-one relationship-sets whose
        one-sides are plain entity-sets with single-attribute
        identifiers -- mergeable with only nulls-not-allowed constraints
        (Proposition 5.2 via condition (2)).
"""

from __future__ import annotations

from repro.eer.model import (
    Cardinality,
    EERAttribute,
    EERSchema,
    EntitySet,
    Generalization,
    Participation,
    RelationshipSet,
)
from repro.relational.attributes import Domain

_ID = Domain("id")
_TEXT = Domain("text")
_DATE = Domain("date")


def fig8_i_generalization_general() -> EERSchema:
    """Figure 8(i): ISA hierarchy with multi-attribute specializations."""
    employee = EntitySet(
        "EMPLOYEE", (EERAttribute("SSN", _ID),), identifier=("SSN",)
    )
    engineer = EntitySet(
        "ENGINEER",
        (EERAttribute("DEGREE", _TEXT), EERAttribute("SPECIALTY", _TEXT)),
    )
    manager = EntitySet(
        "MANAGER",
        (EERAttribute("LEVEL", _TEXT), EERAttribute("BONUS", _TEXT)),
    )
    return EERSchema(
        name="fig8-i",
        object_sets=(employee, engineer, manager),
        generalizations=(
            Generalization("EMPLOYEE", ("ENGINEER", "MANAGER")),
        ),
    )


def fig8_ii_star_general() -> EERSchema:
    """Figure 8(ii): many-to-one relationship-sets with attributes."""
    employee = EntitySet(
        "EMPLOYEE", (EERAttribute("SSN", _ID),), identifier=("SSN",)
    )
    project = EntitySet(
        "PROJECT", (EERAttribute("NR", _ID),), identifier=("NR",)
    )
    department = EntitySet(
        "DEPARTMENT", (EERAttribute("NAME", _TEXT),), identifier=("NAME",)
    )
    works = RelationshipSet(
        "WORKS",
        attributes=(EERAttribute("SINCE", _DATE, required=False),),
        participants=(
            Participation("EMPLOYEE", Cardinality.MANY),
            Participation("PROJECT", Cardinality.ONE),
        ),
    )
    belongs = RelationshipSet(
        "BELONGS",
        attributes=(EERAttribute("ROLE", _TEXT),),
        participants=(
            Participation("EMPLOYEE", Cardinality.MANY),
            Participation("DEPARTMENT", Cardinality.ONE),
        ),
    )
    return EERSchema(
        name="fig8-ii",
        object_sets=(employee, project, department, works, belongs),
    )


def fig8_iii_generalization_nna() -> EERSchema:
    """Figure 8(iii): ISA hierarchy satisfying condition (1) of
    Section 5.2 -- one own attribute per specialization, no further
    structure."""
    vehicle = EntitySet(
        "VEHICLE", (EERAttribute("VIN", _ID),), identifier=("VIN",)
    )
    car = EntitySet("CAR", (EERAttribute("DOORS", _TEXT),))
    truck = EntitySet("TRUCK", (EERAttribute("PAYLOAD", _TEXT),))
    return EERSchema(
        name="fig8-iii",
        object_sets=(vehicle, car, truck),
        generalizations=(Generalization("VEHICLE", ("CAR", "TRUCK")),),
    )


def fig8_iv_star_nna() -> EERSchema:
    """Figure 8(iv): attribute-free many-to-one star satisfying
    condition (2) of Section 5.2."""
    book = EntitySet(
        "BOOK", (EERAttribute("ISBN", _ID),), identifier=("ISBN",)
    )
    publisher = EntitySet(
        "PUBLISHER", (EERAttribute("NAME", _TEXT),), identifier=("NAME",)
    )
    language = EntitySet(
        "LANGUAGE", (EERAttribute("CODE", _TEXT),), identifier=("CODE",)
    )
    published_by = RelationshipSet(
        "ISSUED",
        participants=(
            Participation("BOOK", Cardinality.MANY),
            Participation("PUBLISHER", Cardinality.ONE),
        ),
    )
    written_in = RelationshipSet(
        "WRITTEN",
        participants=(
            Participation("BOOK", Cardinality.MANY),
            Participation("LANGUAGE", Cardinality.ONE),
        ),
    )
    return EERSchema(
        name="fig8-iv",
        object_sets=(book, publisher, language, published_by, written_in),
    )


def fig8_iv_relational():
    """The Markowitz-Shoshani translation of Figure 8(iv)::

        BOOK(B.ISBN)   PUBLISHER(P.NAME)   LANGUAGE(L.CODE)
        ISSUED(I.B.ISBN, I.P.NAME)   WRITTEN(W.B.ISBN, W.L.CODE)

    The BOOK family {BOOK, ISSUED, WRITTEN} is the paper's NNA-only
    amenable case (Proposition 5.2 condition (2)) -- the merge advisor's
    demo and CI schema.
    """
    from repro.eer.translate import translate_eer

    return translate_eer(fig8_iv_star_nna()).schema


def seed_fig8_iv(client, books: int = 24) -> None:
    """Seed a live server (or any object with the client's ``insert``
    method) with a consistent Figure 8(iv) state: 3 publishers, 2
    languages, ``books`` books each issued and written."""
    publishers = [f"pub{i}" for i in range(3)]
    languages = ["en", "de"]
    for name in publishers:
        client.insert("PUBLISHER", {"P.NAME": name})
    for code in languages:
        client.insert("LANGUAGE", {"L.CODE": code})
    for i in range(books):
        isbn = f"isbn{i:04d}"
        client.insert("BOOK", {"B.ISBN": isbn})
        client.insert(
            "ISSUED",
            {"I.B.ISBN": isbn, "I.P.NAME": publishers[i % len(publishers)]},
        )
        client.insert(
            "WRITTEN",
            {"W.B.ISBN": isbn, "W.L.CODE": languages[i % len(languages)]},
        )


def skewed_fig8_iv_load(
    client, books: int = 24, profile_reads: int = 5
) -> int:
    """Drive the skewed read workload the advisor CI job mines: every
    book's profile is read ``profile_reads`` times, each profile costing
    two IND joins (BOOK -> ISSUED -> PUBLISHER side and BOOK -> WRITTEN
    -> LANGUAGE side navigated via ``find_referencing``).  Join traffic
    therefore outweighs the 3 mutations per book roughly
    ``2 * profile_reads : 3``, which makes the BOOK family pay for
    itself under the advisor's scoring.  Returns the number of joins
    issued.
    """
    joins = 0
    for i in range(books):
        isbn = f"isbn{i:04d}"
        for _ in range(profile_reads):
            client.find_referencing(
                "BOOK", (isbn,), "ISSUED", ["I.B.ISBN"], ["B.ISBN"]
            )
            client.find_referencing(
                "BOOK", (isbn,), "WRITTEN", ["W.B.ISBN"], ["B.ISBN"]
            )
            joins += 2
    return joins


def all_fig8_schemas() -> dict[str, EERSchema]:
    """The four structures keyed by their figure label."""
    return {
        "8(i)": fig8_i_generalization_general(),
        "8(ii)": fig8_ii_star_general(),
        "8(iii)": fig8_iii_generalization_nna(),
        "8(iv)": fig8_iv_star_nna(),
    }
