"""A warehouse workload: weak entities, composite keys, and an m:n
relationship.

This third domain exercises the translation and merging paths the
university and registry workloads do not:

* ``BIN`` is a *weak* entity-set identified through ``WAREHOUSE`` plus a
  partial identifier -- its relation has a composite primary key;
* ``STOCKED`` is a binary many-to-one relationship-set anchored at the
  weak entity, so its relation inherits the composite key and merging
  ``{BIN, STOCKED}`` equates *two-attribute* keys (the ordered
  correspondence of Definition 4.1);
* ``SUPPLIES`` is many-to-many (both legs MANY), translating to a
  relation keyed by both participants -- never mergeable into either
  side, a useful negative case for the planner.
"""

from __future__ import annotations

import random
from typing import Any, Mapping

from repro.eer.builder import EERBuilder, optional
from repro.eer.model import EERSchema
from repro.eer.translate import Translation, translate_eer
from repro.relational.state import DatabaseState
from repro.relational.tuples import NULL


def warehouse_eer() -> EERSchema:
    """The warehouse EER design (see module docstring)."""
    return (
        EERBuilder("warehouse")
        .entity("WAREHOUSE", identifier={"SITE": "site"}, abbrev="W")
        .weak_entity(
            "BIN",
            owner="WAREHOUSE",
            partial_identifier={"SLOT": "slot"},
            attrs={"CAPACITY": optional("units")},
            abbrev="B",
        )
        .entity("PRODUCT", identifier={"SKU": "sku"}, abbrev="P")
        .entity("VENDOR", identifier={"VAT": "vat"}, abbrev="V")
        .relationship("STOCKED", many="BIN", one="PRODUCT", abbrev="ST")
        .relationship(
            "SUPPLIES", many=["VENDOR", "PRODUCT"], abbrev="SU"
        )
        .build()
    )


def warehouse_translation() -> Translation:
    """The relational translation (6 relation-schemes; BIN and STOCKED
    carry composite primary keys)."""
    return translate_eer(warehouse_eer())


def warehouse_state(
    n_warehouses: int = 3,
    bins_per_warehouse: int = 8,
    n_products: int = 10,
    n_vendors: int = 4,
    stocked_fraction: float = 0.7,
    seed: int = 0,
) -> DatabaseState:
    """A random consistent state of the warehouse schema."""
    rng = random.Random(seed)
    schema = warehouse_translation().schema
    warehouses = [f"site-{i}" for i in range(n_warehouses)]
    products = [f"sku-{i:04d}" for i in range(n_products)]
    vendors = [f"vat-{i:03d}" for i in range(n_vendors)]

    rows: dict[str, list[Mapping[str, Any]]] = {
        "WAREHOUSE": [{"W.SITE": w} for w in warehouses],
        "PRODUCT": [{"P.SKU": p} for p in products],
        "VENDOR": [{"V.VAT": v} for v in vendors],
        "BIN": [],
        "STOCKED": [],
        "SUPPLIES": [],
    }
    for site in warehouses:
        for slot in range(bins_per_warehouse):
            slot_id = f"slot-{slot:02d}"
            capacity = (
                str(rng.choice([10, 20, 50])) if rng.random() < 0.7 else NULL
            )
            rows["BIN"].append(
                {"B.W.SITE": site, "B.SLOT": slot_id, "B.CAPACITY": capacity}
            )
            if rng.random() < stocked_fraction:
                rows["STOCKED"].append(
                    {
                        "ST.B.W.SITE": site,
                        "ST.B.SLOT": slot_id,
                        "ST.P.SKU": rng.choice(products),
                    }
                )
    seen = set()
    for vendor in vendors:
        for product in rng.sample(products, k=min(3, len(products))):
            if (vendor, product) not in seen:
                seen.add((vendor, product))
                rows["SUPPLIES"].append(
                    {"SU.V.VAT": vendor, "SU.P.SKU": product}
                )
    return DatabaseState.for_schema(schema, rows)
