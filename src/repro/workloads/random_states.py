"""Seeded random *consistent* database states for schemas of the paper's
class.

Works for any schema whose inclusion-dependency graph is acyclic (the
class produced by the EER translation and by
:mod:`repro.workloads.random_schemas`): schemes are filled in topological
order so foreign keys can be sampled from already-populated referenced
relations, primary keys are kept distinct, and nulls are injected only
into attributes not covered by nulls-not-allowed constraints.
"""

from __future__ import annotations

import random
from typing import Any, Mapping

from repro.constraints.nulls import NullExistenceConstraint
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.state import DatabaseState
from repro.relational.tuples import NULL


def _topological_order(schema: RelationalSchema) -> list[RelationScheme]:
    """Schemes ordered so every IND target precedes its sources."""
    remaining = {s.name for s in schema.schemes}
    deps: dict[str, set[str]] = {name: set() for name in remaining}
    for ind in schema.inds:
        if ind.lhs_scheme != ind.rhs_scheme:
            deps[ind.lhs_scheme].add(ind.rhs_scheme)
    order: list[RelationScheme] = []
    while remaining:
        ready = sorted(
            name for name in remaining if not (deps[name] & remaining)
        )
        if not ready:
            raise ValueError(
                "inclusion-dependency graph has a cycle; cannot order schemes"
            )
        for name in ready:
            order.append(schema.scheme(name))
            remaining.discard(name)
    return order


def _required_attrs(schema: RelationalSchema, scheme: RelationScheme) -> set[str]:
    required = set(scheme.key_names)
    for c in schema.null_constraints_of(scheme.name):
        if isinstance(c, NullExistenceConstraint) and c.is_nulls_not_allowed():
            required |= c.rhs
    return required


def random_consistent_state(
    schema: RelationalSchema,
    rows_per_scheme: int | Mapping[str, int] = 8,
    null_prob: float = 0.3,
    seed: int = 0,
) -> DatabaseState:
    """A random consistent state of ``schema``.

    ``rows_per_scheme`` caps row counts (schemes whose primary key is a
    foreign key are additionally capped by the referenced population);
    ``null_prob`` drives nulls into optional attributes.
    """
    rng = random.Random(seed)
    value_counter = 0

    def fresh(domain_name: str) -> str:
        nonlocal value_counter
        value_counter += 1
        return f"{domain_name}#{value_counter}"

    def wanted(name: str) -> int:
        if isinstance(rows_per_scheme, int):
            return rows_per_scheme
        return rows_per_scheme.get(name, 8)

    relations: dict[str, list[dict[str, Any]]] = {}
    key_pools: dict[str, list[tuple[Any, ...]]] = {}

    for scheme in _topological_order(schema):
        required = _required_attrs(schema, scheme)
        fk_groups: list[tuple[tuple[str, ...], str, tuple[str, ...]]] = []
        for ind in schema.inds_from(scheme.name):
            if ind.rhs_scheme != scheme.name:
                fk_groups.append(
                    (tuple(ind.lhs_attrs), ind.rhs_scheme, tuple(ind.rhs_attrs))
                )
        key_names = set(scheme.key_names)
        key_fk = next(
            (g for g in fk_groups if set(g[0]) == key_names), None
        )

        n = wanted(scheme.name)
        rows: list[dict[str, Any]] = []
        used_keys: set[tuple[Any, ...]] = set()

        if key_fk is not None:
            _, ref_scheme, ref_attrs = key_fk
            pool = [
                tuple(row[a] for a in ref_attrs)
                for row in relations.get(ref_scheme, ())
            ]
            rng.shuffle(pool)
            key_values = pool[:n]
        else:
            key_values = [
                tuple(
                    fresh(attr.domain.name)
                    for attr in scheme.primary_key
                )
                for _ in range(n)
            ]

        for key_value in key_values:
            if key_value in used_keys:
                continue
            used_keys.add(key_value)
            row: dict[str, Any] = dict(zip(scheme.key_names, key_value))
            for attrs, ref_scheme, ref_attrs in fk_groups:
                if set(attrs) == key_names:
                    continue
                ref_rows = relations.get(ref_scheme, ())
                optional = not (set(attrs) & required)
                if not ref_rows:
                    if not optional:
                        raise ValueError(
                            f"{scheme.name} requires rows in {ref_scheme} "
                            "but it is empty; raise its row count"
                        )
                    for a in attrs:
                        row[a] = NULL
                    continue
                if optional and rng.random() < null_prob:
                    for a in attrs:
                        row[a] = NULL
                else:
                    picked = rng.choice(list(ref_rows))
                    for a, ra in zip(attrs, ref_attrs):
                        row[a] = picked[ra]
            for attr in scheme.attributes:
                if attr.name in row:
                    continue
                if attr.name not in required and rng.random() < null_prob:
                    row[attr.name] = NULL
                else:
                    row[attr.name] = fresh(attr.domain.name)
            rows.append(row)
        relations[scheme.name] = rows
        key_pools[scheme.name] = sorted(used_keys)

    return DatabaseState.for_schema(schema, relations)
