"""Seeded random schemas in the paper's class.

Generated schemas consist of relation-schemes, (implicit) key
dependencies, key-based inclusion dependencies, and nulls-not-allowed
constraints -- and are built so that mergeable families exist: each
*cluster* has a root scheme whose primary key is chained into by child
schemes (their primary keys are foreign keys into the parent, the
``Refkey*`` shape of Proposition 3.1), plus optional cross-cluster
foreign keys on non-key attributes.

Used by the property tests (Merge/Remove round trips on arbitrary
schemas) and the proposition benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import nulls_not_allowed
from repro.relational.attributes import Attribute, Domain
from repro.relational.schema import RelationScheme, RelationalSchema


@dataclass(frozen=True)
class RandomSchemaParams:
    """Shape parameters for :func:`random_schema`."""

    n_clusters: int = 2
    #: Children chained under each root (each child's key references its
    #: parent's key; depth grows along the chain).
    max_children: int = 3
    max_depth: int = 2
    #: Extra non-key attributes per scheme (uniform 0..max).
    max_extra_attrs: int = 2
    #: Probability that a scheme gains a non-key foreign key into another
    #: cluster's root.
    cross_ref_prob: float = 0.3
    #: Probability that a non-key, non-foreign-key attribute allows nulls.
    optional_attr_prob: float = 0.0
    #: Probability that a scheme gains a nullable unique attribute
    #: (``<name>.U``) declared as a candidate key -- the Section 5.1
    #: shape whose enforcement differs between null-semantics modes.
    candidate_key_prob: float = 0.0


@dataclass
class GeneratedSchema:
    """A random schema plus the cluster structure that produced it."""

    schema: RelationalSchema
    #: Root scheme name per cluster.
    roots: list[str] = field(default_factory=list)
    #: Cluster members (including the root), per root name.
    clusters: dict[str, list[str]] = field(default_factory=dict)


def random_schema(
    params: RandomSchemaParams = RandomSchemaParams(), seed: int = 0
) -> GeneratedSchema:
    """Generate a random relational schema of the paper's class."""
    rng = random.Random(seed)
    schemes: list[RelationScheme] = []
    inds: list[InclusionDependency] = []
    null_constraints = []
    result = GeneratedSchema(schema=None)  # type: ignore[arg-type]

    counter = 0

    def next_name() -> str:
        nonlocal counter
        counter += 1
        return f"R{counter}"

    def build_scheme(
        name: str,
        key_domain: Domain,
        parent: RelationScheme | None,
        cluster: list[str],
    ) -> RelationScheme:
        key_attr = Attribute(f"{name}.K", key_domain)
        attrs = [key_attr]
        required = [key_attr.name]
        for j in range(rng.randint(0, params.max_extra_attrs)):
            attr = Attribute(f"{name}.A{j}", Domain(f"dom-{name}-A{j}"))
            attrs.append(attr)
            if rng.random() >= params.optional_attr_prob:
                required.append(attr.name)
        candidate_keys = ()
        if rng.random() < params.candidate_key_prob:
            unique = Attribute(f"{name}.U", Domain(f"dom-{name}-U"))
            attrs.append(unique)  # nullable: not added to ``required``
            candidate_keys = ((unique,),)
        scheme = RelationScheme(
            name, tuple(attrs), (key_attr,), candidate_keys
        )
        schemes.append(scheme)
        null_constraints.append(nulls_not_allowed(name, required))
        if parent is not None:
            inds.append(
                InclusionDependency(
                    name, scheme.key_names, parent.name, parent.key_names
                )
            )
        cluster.append(name)
        return scheme

    # Cluster roots and chains.
    for c in range(params.n_clusters):
        key_domain = Domain(f"key-{c}")
        root = build_scheme(next_name(), key_domain, None, cluster := [])
        result.roots.append(root.name)
        frontier = [(root, 1)]
        while frontier:
            parent, depth = frontier.pop(0)
            if depth > params.max_depth:
                continue
            for _ in range(rng.randint(0, params.max_children)):
                child = build_scheme(next_name(), key_domain, parent, cluster)
                frontier.append((child, depth + 1))
        result.clusters[root.name] = cluster

    # Cross-cluster foreign keys on fresh non-key attributes.  Targets
    # are restricted to *earlier* clusters so the inclusion-dependency
    # graph stays acyclic (the EER translation never produces cycles
    # either).
    cluster_index = {
        name: i
        for i, root in enumerate(result.roots)
        for name in result.clusters[root]
    }
    final_schemes: list[RelationScheme] = []
    for scheme in schemes:
        earlier_roots = [
            r
            for i, r in enumerate(result.roots)
            if i < cluster_index[scheme.name]
        ]
        if earlier_roots and rng.random() < params.cross_ref_prob:
            other_root_name = rng.choice(earlier_roots)
            if scheme.name not in result.clusters[other_root_name]:
                target = next(
                    s for s in schemes if s.name == other_root_name
                )
                fk = Attribute(
                    f"{scheme.name}.FK", target.primary_key[0].domain
                )
                scheme = RelationScheme(
                    scheme.name,
                    scheme.attributes + (fk,),
                    scheme.primary_key,
                    scheme.candidate_keys,
                )
                inds.append(
                    InclusionDependency(
                        scheme.name,
                        (fk.name,),
                        target.name,
                        target.key_names,
                    )
                )
                null_constraints.append(
                    nulls_not_allowed(scheme.name, [fk.name])
                )
        final_schemes.append(scheme)

    result.schema = RelationalSchema(
        schemes=tuple(final_schemes),
        inds=tuple(inds),
        null_constraints=tuple(null_constraints),
    )
    return result
