"""The university schema of Figure 3 (the relational translation of the
EER schema of Figure 7) and consistent-state generators over it.

The schema has eight relation-schemes::

    PERSON(P.SSN)           DEPARTMENT(D.NAME)
    FACULTY(F.SSN)          OFFER(O.C.NR, O.D.NAME)
    STUDENT(S.SSN)          TEACH(T.C.NR, T.F.SSN)
    COURSE(C.NR)            ASSIST(A.C.NR, A.S.SSN)

eight referential integrity constraints and eight nulls-not-allowed
constraints -- reproduced verbatim from the figure.
"""

from __future__ import annotations

import random
from typing import Any, Mapping

from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import nulls_not_allowed
from repro.relational.attributes import Attribute, Domain
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.state import DatabaseState

from repro.eer.model import (
    Cardinality,
    EERAttribute,
    EERSchema,
    EntitySet,
    Generalization,
    Participation,
    RelationshipSet,
)

SSN = Domain("ssn")
COURSE_NR = Domain("course-nr")
DEPT_NAME = Domain("dept-name")


def university_eer() -> EERSchema:
    """The EER schema of Figure 7.

    PERSON generalizes FACULTY and STUDENT; OFFER relates COURSE (many)
    to DEPARTMENT (one); TEACH and ASSIST are relationship-sets over the
    relationship-set OFFER (many) and FACULTY resp. STUDENT (one).  Its
    Markowitz-Shoshani translation is exactly the Figure 3 schema.
    """
    person = EntitySet(
        "PERSON", (EERAttribute("SSN", SSN),), identifier=("SSN",)
    )
    faculty = EntitySet("FACULTY")
    student = EntitySet("STUDENT")
    course = EntitySet(
        "COURSE", (EERAttribute("NR", COURSE_NR),), identifier=("NR",)
    )
    department = EntitySet(
        "DEPARTMENT", (EERAttribute("NAME", DEPT_NAME),), identifier=("NAME",)
    )
    offer = RelationshipSet(
        "OFFER",
        participants=(
            Participation("COURSE", Cardinality.MANY),
            Participation("DEPARTMENT", Cardinality.ONE),
        ),
    )
    teach = RelationshipSet(
        "TEACH",
        participants=(
            Participation("OFFER", Cardinality.MANY),
            Participation("FACULTY", Cardinality.ONE),
        ),
    )
    assist = RelationshipSet(
        "ASSIST",
        participants=(
            Participation("OFFER", Cardinality.MANY),
            Participation("STUDENT", Cardinality.ONE),
        ),
    )
    return EERSchema(
        name="university",
        object_sets=(
            person,
            faculty,
            student,
            course,
            department,
            offer,
            teach,
            assist,
        ),
        generalizations=(
            Generalization("PERSON", ("FACULTY", "STUDENT")),
        ),
    )


def _scheme(name: str, attrs: list[Attribute], key_size: int) -> RelationScheme:
    return RelationScheme(name, tuple(attrs), tuple(attrs[:key_size]))


def university_relational() -> RelationalSchema:
    """The relational schema of Figure 3, exactly as printed."""
    person = _scheme("PERSON", [Attribute("P.SSN", SSN)], 1)
    faculty = _scheme("FACULTY", [Attribute("F.SSN", SSN)], 1)
    student = _scheme("STUDENT", [Attribute("S.SSN", SSN)], 1)
    course = _scheme("COURSE", [Attribute("C.NR", COURSE_NR)], 1)
    department = _scheme("DEPARTMENT", [Attribute("D.NAME", DEPT_NAME)], 1)
    offer = _scheme(
        "OFFER",
        [Attribute("O.C.NR", COURSE_NR), Attribute("O.D.NAME", DEPT_NAME)],
        1,
    )
    teach = _scheme(
        "TEACH",
        [Attribute("T.C.NR", COURSE_NR), Attribute("T.F.SSN", SSN)],
        1,
    )
    assist = _scheme(
        "ASSIST",
        [Attribute("A.C.NR", COURSE_NR), Attribute("A.S.SSN", SSN)],
        1,
    )
    schemes = (
        person,
        faculty,
        student,
        course,
        department,
        offer,
        teach,
        assist,
    )
    inds = (
        InclusionDependency("FACULTY", ("F.SSN",), "PERSON", ("P.SSN",)),
        InclusionDependency("STUDENT", ("S.SSN",), "PERSON", ("P.SSN",)),
        InclusionDependency("OFFER", ("O.C.NR",), "COURSE", ("C.NR",)),
        InclusionDependency("OFFER", ("O.D.NAME",), "DEPARTMENT", ("D.NAME",)),
        InclusionDependency("TEACH", ("T.C.NR",), "OFFER", ("O.C.NR",)),
        InclusionDependency("TEACH", ("T.F.SSN",), "FACULTY", ("F.SSN",)),
        InclusionDependency("ASSIST", ("A.C.NR",), "OFFER", ("O.C.NR",)),
        InclusionDependency("ASSIST", ("A.S.SSN",), "STUDENT", ("S.SSN",)),
    )
    null_constraints = (
        nulls_not_allowed("PERSON", ["P.SSN"]),
        nulls_not_allowed("FACULTY", ["F.SSN"]),
        nulls_not_allowed("STUDENT", ["S.SSN"]),
        nulls_not_allowed("COURSE", ["C.NR"]),
        nulls_not_allowed("DEPARTMENT", ["D.NAME"]),
        nulls_not_allowed("OFFER", ["O.C.NR", "O.D.NAME"]),
        nulls_not_allowed("TEACH", ["T.C.NR", "T.F.SSN"]),
        nulls_not_allowed("ASSIST", ["A.C.NR", "A.S.SSN"]),
    )
    return RelationalSchema(
        schemes=schemes, inds=inds, null_constraints=null_constraints
    )


def university_state(
    n_courses: int = 10,
    n_departments: int = 3,
    n_people: int | None = None,
    offer_fraction: float = 0.8,
    teach_fraction: float = 0.7,
    assist_fraction: float = 0.5,
    seed: int = 0,
) -> DatabaseState:
    """A random consistent state of the Figure 3 schema.

    Each course is offered with probability ``offer_fraction``; offered
    courses are taught/assisted with the given fractions (the inclusion
    chain COURSE <- OFFER <- TEACH/ASSIST is respected by construction).
    """
    rng = random.Random(seed)
    schema = university_relational()
    n_people = n_people if n_people is not None else max(4, n_courses)
    people = [f"ssn-{i:04d}" for i in range(n_people)]
    half = max(1, n_people // 2)
    faculty = people[:half]
    students = people[half:] or people[:1]
    departments = [f"dept-{i}" for i in range(n_departments)]
    courses = [f"crs-{i:04d}" for i in range(n_courses)]

    rows: dict[str, list[Mapping[str, Any]]] = {
        "PERSON": [{"P.SSN": p} for p in people],
        "FACULTY": [{"F.SSN": f} for f in faculty],
        "STUDENT": [{"S.SSN": s} for s in students],
        "COURSE": [{"C.NR": c} for c in courses],
        "DEPARTMENT": [{"D.NAME": d} for d in departments],
        "OFFER": [],
        "TEACH": [],
        "ASSIST": [],
    }
    for course in courses:
        if rng.random() >= offer_fraction:
            continue
        rows["OFFER"].append(
            {"O.C.NR": course, "O.D.NAME": rng.choice(departments)}
        )
        if rng.random() < teach_fraction:
            rows["TEACH"].append(
                {"T.C.NR": course, "T.F.SSN": rng.choice(faculty)}
            )
        if rng.random() < assist_fraction:
            rows["ASSIST"].append(
                {"A.C.NR": course, "A.S.SSN": rng.choice(students)}
            )
    return DatabaseState.for_schema(schema, rows)
