"""The employee/project example of Figure 1 and the OFFER/TEACH example
of Figure 2.

``figure1_relational`` builds the BCNF schema ``RS`` of Figure 1(ii)
(the Markowitz-Shoshani translation of the ER schema); the ER source
itself lives in :mod:`repro.workloads.fig_eer`.  ``figure2_schema``
builds the two-scheme OFFER/TEACH schema used to introduce merging, with
or without the inclusion dependency that makes OFFER a key-relation.
``assign_example_schema`` is the Section 1 synthesis example
(TEACH/OFFER with equivalent keys).
"""

from __future__ import annotations

import random
from typing import Any, Mapping

from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import nulls_not_allowed
from repro.relational.attributes import Attribute, Domain
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.state import DatabaseState

from repro.eer.model import (
    Cardinality,
    EERAttribute,
    EERSchema,
    EntitySet,
    Participation,
    RelationshipSet,
)

SSN = Domain("ssn")
PROJECT_NR = Domain("project-nr")
DATE = Domain("date")
COURSE_NR = Domain("course-nr")
DEPT = Domain("dept-name")
FACULTY_NAME = Domain("faculty-name")


def figure1_eer() -> EERSchema:
    """The ER schema of Figure 1(i): EMPLOYEE and PROJECT connected by the
    binary many-to-one relationship-sets WORKS (with an optional DATE
    attribute) and MANAGES."""
    employee = EntitySet(
        "EMPLOYEE", (EERAttribute("SSN", SSN),), identifier=("SSN",)
    )
    project = EntitySet(
        "PROJECT", (EERAttribute("NR", PROJECT_NR),), identifier=("NR",)
    )
    works = RelationshipSet(
        "WORKS",
        attributes=(EERAttribute("DATE", DATE, required=False),),
        participants=(
            Participation("EMPLOYEE", Cardinality.MANY),
            Participation("PROJECT", Cardinality.ONE),
        ),
    )
    manages = RelationshipSet(
        "MANAGES",
        participants=(
            Participation("EMPLOYEE", Cardinality.MANY),
            Participation("PROJECT", Cardinality.ONE),
        ),
    )
    return EERSchema(
        name="employee-project",
        object_sets=(employee, project, works, manages),
    )


def figure1_relational() -> RelationalSchema:
    """The BCNF schema ``RS`` of Figure 1(ii), with prefixed attribute
    names (the figure prints bare names; prefixes implement the globally
    unique naming Definition 4.1 assumes).

    ``WORKS`` and ``MANAGES`` are many-to-one from EMPLOYEE to PROJECT;
    the ``DATE`` attribute of WORKS allows nulls (starred in the figure).
    """
    project = RelationScheme(
        "PROJECT", (Attribute("P.NR", PROJECT_NR),), (Attribute("P.NR", PROJECT_NR),)
    )
    employee = RelationScheme(
        "EMPLOYEE", (Attribute("E.SSN", SSN),), (Attribute("E.SSN", SSN),)
    )
    works_key = Attribute("W.E.SSN", SSN)
    works = RelationScheme(
        "WORKS",
        (works_key, Attribute("W.P.NR", PROJECT_NR), Attribute("W.DATE", DATE)),
        (works_key,),
    )
    manages_key = Attribute("M.E.SSN", SSN)
    manages = RelationScheme(
        "MANAGES",
        (manages_key, Attribute("M.P.NR", PROJECT_NR)),
        (manages_key,),
    )
    inds = (
        InclusionDependency("WORKS", ("W.P.NR",), "PROJECT", ("P.NR",)),
        InclusionDependency("WORKS", ("W.E.SSN",), "EMPLOYEE", ("E.SSN",)),
        InclusionDependency("MANAGES", ("M.P.NR",), "PROJECT", ("P.NR",)),
        InclusionDependency("MANAGES", ("M.E.SSN",), "EMPLOYEE", ("E.SSN",)),
    )
    null_constraints = (
        nulls_not_allowed("PROJECT", ["P.NR"]),
        nulls_not_allowed("EMPLOYEE", ["E.SSN"]),
        nulls_not_allowed("WORKS", ["W.E.SSN", "W.P.NR"]),
        nulls_not_allowed("MANAGES", ["M.E.SSN", "M.P.NR"]),
    )
    return RelationalSchema(
        schemes=(project, employee, works, manages),
        inds=inds,
        null_constraints=null_constraints,
    )


def figure1_state(
    n_employees: int = 20,
    n_projects: int = 5,
    works_fraction: float = 0.7,
    manages_fraction: float = 0.2,
    seed: int = 0,
) -> DatabaseState:
    """A random consistent state of the Figure 1(ii) schema."""
    rng = random.Random(seed)
    schema = figure1_relational()
    employees = [f"ssn-{i:04d}" for i in range(n_employees)]
    projects = [f"prj-{i:03d}" for i in range(n_projects)]
    rows: dict[str, list[Mapping[str, Any]]] = {
        "EMPLOYEE": [{"E.SSN": e} for e in employees],
        "PROJECT": [{"P.NR": p} for p in projects],
        "WORKS": [],
        "MANAGES": [],
    }
    from repro.relational.tuples import NULL

    for emp in employees:
        if rng.random() < works_fraction:
            date = f"2026-0{rng.randint(1, 7)}-01" if rng.random() < 0.8 else NULL
            rows["WORKS"].append(
                {"W.E.SSN": emp, "W.P.NR": rng.choice(projects), "W.DATE": date}
            )
        if rng.random() < manages_fraction:
            rows["MANAGES"].append(
                {"M.E.SSN": emp, "M.P.NR": rng.choice(projects)}
            )
    return DatabaseState.for_schema(schema, rows)


def figure2_schema(with_ind: bool = False) -> RelationalSchema:
    """The two-scheme schema of Figure 2: ``OFFER(O.CN, O.DN)`` and
    ``TEACH(T.CN, T.FN)``.

    With ``with_ind`` the schema also carries
    ``TEACH[T.CN] <= OFFER[O.CN]``, which (Proposition 3.1) makes OFFER a
    key-relation of the pair; without it, merging must synthesise a fresh
    key-relation and the merged scheme acquires a part-null constraint.
    """
    offer = RelationScheme(
        "OFFER",
        (Attribute("O.CN", COURSE_NR), Attribute("O.DN", DEPT)),
        (Attribute("O.CN", COURSE_NR),),
    )
    teach = RelationScheme(
        "TEACH",
        (Attribute("T.CN", COURSE_NR), Attribute("T.FN", FACULTY_NAME)),
        (Attribute("T.CN", COURSE_NR),),
    )
    inds = (
        (InclusionDependency("TEACH", ("T.CN",), "OFFER", ("O.CN",)),)
        if with_ind
        else ()
    )
    return RelationalSchema(
        schemes=(offer, teach),
        inds=inds,
        null_constraints=(
            nulls_not_allowed("OFFER", ["O.CN", "O.DN"]),
            nulls_not_allowed("TEACH", ["T.CN", "T.FN"]),
        ),
    )


def figure2_state(
    n_courses: int = 12,
    offer_fraction: float = 0.7,
    teach_fraction: float = 0.6,
    with_ind: bool = False,
    seed: int = 0,
) -> DatabaseState:
    """A random consistent state of the Figure 2 schema.

    With ``with_ind`` every taught course is also offered (satisfying the
    inclusion dependency); without it the two relations overlap freely.
    """
    rng = random.Random(seed)
    schema = figure2_schema(with_ind=with_ind)
    courses = [f"crs-{i:03d}" for i in range(n_courses)]
    depts = ["math", "cs", "physics"]
    names = ["ada", "grace", "edgar", "alan"]
    rows: dict[str, list[Mapping[str, Any]]] = {"OFFER": [], "TEACH": []}
    for course in courses:
        offered = rng.random() < offer_fraction
        if offered:
            rows["OFFER"].append({"O.CN": course, "O.DN": rng.choice(depts)})
        can_teach = offered if with_ind else True
        if can_teach and rng.random() < teach_fraction:
            rows["TEACH"].append({"T.CN": course, "T.FN": rng.choice(names)})
    return DatabaseState.for_schema(schema, rows)


def assign_example_schema() -> RelationalSchema:
    """The Section 1 synthesis example: ``TEACH(COURSE, FACULTY)`` and
    ``OFFER(COURSE, DEPARTMENT)`` with equivalent keys.

    Attribute names are prefixed for global uniqueness; both COURSE
    columns belong to the same domain, making the keys compatible.
    """
    teach = RelationScheme(
        "TEACH",
        (Attribute("T.COURSE", COURSE_NR), Attribute("T.FACULTY", FACULTY_NAME)),
        (Attribute("T.COURSE", COURSE_NR),),
    )
    offer = RelationScheme(
        "OFFER",
        (Attribute("O.COURSE", COURSE_NR), Attribute("O.DEPARTMENT", DEPT)),
        (Attribute("O.COURSE", COURSE_NR),),
    )
    return RelationalSchema(
        schemes=(teach, offer),
        null_constraints=(
            nulls_not_allowed("TEACH", ["T.COURSE", "T.FACULTY"]),
            nulls_not_allowed("OFFER", ["O.COURSE", "O.DEPARTMENT"]),
        ),
    )
