"""A clinical sample-registry workload (second application domain).

The paper came out of Lawrence Berkeley Laboratory's health-data work;
this workload models the kind of schema its SDT tool targeted: subjects
specializing into patients and donors, and samples hanging off three
binary many-to-one relationship-sets (drawn from a subject, stored in a
freezer, assayed by a lab).  The SAMPLE star is a Figure 8(iv)-shaped
structure *except* that DRAWN_FROM points at a generalization hierarchy,
exercising merge planning beyond the university example.
"""

from __future__ import annotations

import random
from typing import Any, Mapping

from repro.eer.model import (
    Cardinality,
    EERAttribute,
    EERSchema,
    EntitySet,
    Generalization,
    Participation,
    RelationshipSet,
)
from repro.eer.translate import Translation, translate_eer
from repro.relational.attributes import Domain
from repro.relational.state import DatabaseState
from repro.relational.tuples import NULL

ID = Domain("id")
TEXT = Domain("text")
DATE = Domain("date")


def registry_eer() -> EERSchema:
    """The registry EER design (see module docstring)."""
    subject = EntitySet(
        "SUBJECT", (EERAttribute("SID", ID),), identifier=("SID",), abbrev="SU"
    )
    patient = EntitySet(
        "PATIENT", (EERAttribute("DIAGNOSIS", TEXT),), abbrev="P"
    )
    donor = EntitySet("DONOR", (EERAttribute("CONSENT", TEXT),), abbrev="D")
    sample = EntitySet(
        "SAMPLE",
        (
            EERAttribute("BARCODE", ID),
            EERAttribute("DRAWN", DATE, required=False),
        ),
        identifier=("BARCODE",),
        abbrev="S",
    )
    freezer = EntitySet(
        "FREEZER", (EERAttribute("UNIT", ID),), identifier=("UNIT",), abbrev="F"
    )
    lab = EntitySet(
        "LAB", (EERAttribute("CODE", ID),), identifier=("CODE",), abbrev="L"
    )
    drawn_from = RelationshipSet(
        "DRAWN_FROM",
        abbrev="DR",
        participants=(
            Participation("SAMPLE", Cardinality.MANY),
            Participation("SUBJECT", Cardinality.ONE),
        ),
    )
    stored_in = RelationshipSet(
        "STORED_IN",
        abbrev="ST",
        participants=(
            Participation("SAMPLE", Cardinality.MANY),
            Participation("FREEZER", Cardinality.ONE),
        ),
    )
    assayed_by = RelationshipSet(
        "ASSAYED_BY",
        abbrev="A",
        participants=(
            Participation("SAMPLE", Cardinality.MANY),
            Participation("LAB", Cardinality.ONE),
        ),
    )
    return EERSchema(
        name="registry",
        object_sets=(
            subject,
            patient,
            donor,
            sample,
            freezer,
            lab,
            drawn_from,
            stored_in,
            assayed_by,
        ),
        generalizations=(Generalization("SUBJECT", ("PATIENT", "DONOR")),),
    )


def registry_translation() -> Translation:
    """The registry's relational translation (9 relation-schemes)."""
    return translate_eer(registry_eer())


def registry_state(
    n_samples: int = 50,
    n_subjects: int = 20,
    n_freezers: int = 4,
    n_labs: int = 3,
    drawn_fraction: float = 0.9,
    stored_fraction: float = 0.8,
    assayed_fraction: float = 0.5,
    seed: int = 0,
) -> DatabaseState:
    """A random consistent state of the registry schema."""
    rng = random.Random(seed)
    schema = registry_translation().schema
    subjects = [f"sub-{i:04d}" for i in range(n_subjects)]
    half = max(1, n_subjects // 2)
    patients = subjects[:half]
    donors = subjects[half:] or subjects[:1]
    samples = [f"bar-{i:05d}" for i in range(n_samples)]
    freezers = [f"frz-{i}" for i in range(n_freezers)]
    labs = [f"lab-{i}" for i in range(n_labs)]

    rows: dict[str, list[Mapping[str, Any]]] = {
        "SUBJECT": [{"SU.SID": s} for s in subjects],
        "PATIENT": [
            {"P.SID": s, "P.DIAGNOSIS": f"dx-{rng.randint(1, 9)}"}
            for s in patients
        ],
        "DONOR": [
            {"D.SID": s, "D.CONSENT": rng.choice(["full", "limited"])}
            for s in donors
        ],
        "SAMPLE": [],
        "FREEZER": [{"F.UNIT": f} for f in freezers],
        "LAB": [{"L.CODE": code} for code in labs],
        "DRAWN_FROM": [],
        "STORED_IN": [],
        "ASSAYED_BY": [],
    }
    for barcode in samples:
        drawn = (
            f"2026-{rng.randint(1, 7):02d}-{rng.randint(1, 28):02d}"
            if rng.random() < 0.8
            else NULL
        )
        rows["SAMPLE"].append({"S.BARCODE": barcode, "S.DRAWN": drawn})
        if rng.random() < drawn_fraction:
            rows["DRAWN_FROM"].append(
                {"DR.S.BARCODE": barcode, "DR.SU.SID": rng.choice(subjects)}
            )
        if rng.random() < stored_fraction:
            rows["STORED_IN"].append(
                {"ST.S.BARCODE": barcode, "ST.F.UNIT": rng.choice(freezers)}
            )
        if rng.random() < assayed_fraction:
            rows["ASSAYED_BY"].append(
                {"A.S.BARCODE": barcode, "A.L.CODE": rng.choice(labs)}
            )
    return DatabaseState.for_schema(schema, rows)
