"""Workloads: the paper's running examples and random generators.

* :mod:`repro.workloads.university` -- the university schema of Figures
  3/7 and scaled consistent states;
* :mod:`repro.workloads.project` -- the employee/project ER example of
  Figure 1 and the two-scheme OFFER/TEACH example of Figure 2;
* :mod:`repro.workloads.fig8` -- the four EER structures of Figure 8;
* :mod:`repro.workloads.random_schemas` / ``random_states`` -- seeded
  generators of schemas in the paper's class and consistent states, used
  by property tests and scale benchmarks.
"""

from repro.workloads.university import (
    university_relational,
    university_state,
)
from repro.workloads.project import (
    assign_example_schema,
    figure2_schema,
)

__all__ = [
    "university_relational",
    "university_state",
    "assign_example_schema",
    "figure2_schema",
]
