"""JSON form of EER schemas.

Example::

    {
      "name": "university",
      "object_sets": [
        {"kind": "entity", "name": "COURSE",
         "attributes": [{"name": "NR", "domain": "course-nr"}],
         "identifier": ["NR"]},
        {"kind": "relationship", "name": "OFFER",
         "participants": [
            {"object_set": "COURSE", "cardinality": "many"},
            {"object_set": "DEPARTMENT", "cardinality": "one"}]}
      ],
      "generalizations": [
        {"generic": "PERSON", "specializations": ["FACULTY", "STUDENT"]}
      ]
    }
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.eer.model import (
    Cardinality,
    EERAttribute,
    EERSchema,
    EntitySet,
    Generalization,
    ObjectSet,
    Participation,
    RelationshipSet,
    WeakEntitySet,
)
from repro.relational.attributes import Domain


class EERDecodeError(ValueError):
    """Raised when an EER dictionary is malformed."""


def _attr_to_dict(attr: EERAttribute) -> dict[str, Any]:
    out: dict[str, Any] = {"name": attr.name, "domain": attr.domain.name}
    if not attr.required:
        out["required"] = False
    return out


def _object_set_to_dict(obj: ObjectSet) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": obj.name,
        "attributes": [_attr_to_dict(a) for a in obj.attributes],
    }
    if obj.abbrev:
        out["abbrev"] = obj.abbrev
    if isinstance(obj, WeakEntitySet):
        out["kind"] = "weak-entity"
        out["owner"] = obj.owner
        out["partial_identifier"] = list(obj.partial_identifier)
    elif isinstance(obj, RelationshipSet):
        out["kind"] = "relationship"
        out["participants"] = [
            {
                "object_set": p.object_set,
                "cardinality": p.cardinality.value,
                **({"role": p.role} if p.role else {}),
            }
            for p in obj.participants
        ]
    elif isinstance(obj, EntitySet):
        out["kind"] = "entity"
        if obj.identifier:
            out["identifier"] = list(obj.identifier)
    else:  # pragma: no cover - the model has no other kinds
        raise TypeError(f"unknown object-set kind: {obj!r}")
    return out


def eer_schema_to_dict(schema: EERSchema) -> dict[str, Any]:
    """Encode an EER schema as a JSON-compatible dictionary."""
    return {
        "name": schema.name,
        "object_sets": [_object_set_to_dict(o) for o in schema.object_sets],
        "generalizations": [
            {"generic": g.generic, "specializations": list(g.specializations)}
            for g in schema.generalizations
        ],
    }


def _attrs_from(data: Mapping[str, Any], context: str) -> tuple[EERAttribute, ...]:
    out = []
    for a in data.get("attributes", []):
        try:
            out.append(
                EERAttribute(
                    a["name"], Domain(a["domain"]), a.get("required", True)
                )
            )
        except KeyError as exc:
            raise EERDecodeError(
                f"{context}: attribute missing field {exc}"
            ) from None
    return tuple(out)


def _object_set_from_dict(data: Mapping[str, Any]) -> ObjectSet:
    try:
        kind = data.get("kind", "entity")
        name = data["name"]
    except KeyError as exc:
        raise EERDecodeError(f"object-set missing field {exc}") from None
    attrs = _attrs_from(data, name)
    abbrev = data.get("abbrev")
    if kind == "entity":
        return EntitySet(
            name,
            attrs,
            abbrev=abbrev,
            identifier=tuple(data.get("identifier", [])),
        )
    if kind == "weak-entity":
        return WeakEntitySet(
            name,
            attrs,
            abbrev=abbrev,
            owner=data.get("owner", ""),
            partial_identifier=tuple(data.get("partial_identifier", [])),
        )
    if kind == "relationship":
        try:
            participants = tuple(
                Participation(
                    p["object_set"],
                    Cardinality(p["cardinality"]),
                    p.get("role"),
                )
                for p in data["participants"]
            )
        except (KeyError, ValueError) as exc:
            raise EERDecodeError(f"{name}: bad participant: {exc}") from None
        return RelationshipSet(
            name, attrs, abbrev=abbrev, participants=participants
        )
    raise EERDecodeError(f"unknown object-set kind {kind!r}")


def eer_schema_from_dict(data: Mapping[str, Any]) -> EERSchema:
    """Decode an EER schema from its dictionary form."""
    try:
        object_sets = tuple(
            _object_set_from_dict(o) for o in data["object_sets"]
        )
    except KeyError:
        raise EERDecodeError("schema: missing field 'object_sets'") from None
    generalizations = tuple(
        Generalization(g["generic"], tuple(g["specializations"]))
        for g in data.get("generalizations", [])
    )
    try:
        return EERSchema(
            name=data.get("name", "schema"),
            object_sets=object_sets,
            generalizations=generalizations,
        )
    except ValueError as exc:
        raise EERDecodeError(str(exc)) from exc
