"""JSON form of database states.

Rows are attribute-name/value objects; the ``NULL`` marker is encoded as
the object ``{"$null": true}`` so it survives round trips without
colliding with legitimate string values::

    {
      "relations": {
        "COURSE": [{"C.NR": "crs-0001"}],
        "OFFER": [{"O.C.NR": "crs-0001", "O.D.NAME": {"$null": true}}]
      }
    }
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.relational.relation import Relation
from repro.relational.schema import RelationalSchema
from repro.relational.state import DatabaseState
from repro.relational.tuples import NULL, is_null

NULL_MARKER = {"$null": True}


class StateDecodeError(ValueError):
    """Raised when a state dictionary does not fit its schema."""


def encode_value(value: Any) -> Any:
    """One attribute value in JSON form (``NULL`` becomes the marker
    object).  Shared by state files and the write-ahead log
    (:mod:`repro.engine.wal`), so both formats agree on how a null
    survives a round trip."""
    return dict(NULL_MARKER) if is_null(value) else value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, Mapping) and value.get("$null") is True:
        return NULL
    return value


def state_to_dict(state: DatabaseState) -> dict[str, Any]:
    """Encode a database state as a JSON-compatible dictionary."""
    relations: dict[str, list[dict[str, Any]]] = {}
    for name, relation in sorted(state.items()):
        rows = []
        for t in relation:
            rows.append({k: encode_value(v) for k, v in t.items()})
        rows.sort(key=lambda r: sorted((k, repr(v)) for k, v in r.items()))
        relations[name] = rows
    return {"relations": relations}


def state_from_dict(
    data: Mapping[str, Any], schema: RelationalSchema
) -> DatabaseState:
    """Decode a database state against ``schema``.

    Schemes absent from the data get empty relations; unknown relation
    names are an error.
    """
    raw = data.get("relations", {})
    unknown = set(raw) - set(schema.scheme_names)
    if unknown:
        raise StateDecodeError(
            f"state mentions unknown schemes: {sorted(unknown)}"
        )
    relations = {}
    for scheme in schema.schemes:
        rows = raw.get(scheme.name, [])
        decoded = [
            {k: decode_value(v) for k, v in row.items()} for row in rows
        ]
        try:
            relations[scheme.name] = Relation.from_dicts(
                scheme.attributes, decoded
            )
        except ValueError as exc:
            raise StateDecodeError(f"{scheme.name}: {exc}") from exc
    return DatabaseState(relations)
