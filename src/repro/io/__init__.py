"""JSON (de)serialization for schemas, EER designs, and database states.

Schemas of the paper's class are plain structured data; this package
gives them a stable on-disk form so the command-line tool
(:mod:`repro.cli`) and downstream users can store, diff and exchange
designs:

* :mod:`repro.io.relational_json` -- relational schemas with all four
  constraint groups;
* :mod:`repro.io.eer_json` -- EER schemas;
* :mod:`repro.io.state_json` -- database states (``NULL`` is encoded as
  ``{"$null": true}``).

All encoders produce JSON-compatible plain dictionaries; use ``json``
from the standard library to move them to/from text.
"""

from repro.io.relational_json import (
    relational_schema_from_dict,
    relational_schema_to_dict,
)
from repro.io.eer_json import eer_schema_from_dict, eer_schema_to_dict
from repro.io.state_json import (
    decode_value,
    encode_value,
    state_from_dict,
    state_to_dict,
)

__all__ = [
    "relational_schema_from_dict",
    "relational_schema_to_dict",
    "eer_schema_from_dict",
    "eer_schema_to_dict",
    "state_from_dict",
    "state_to_dict",
    "encode_value",
    "decode_value",
]
