"""JSON form of relational schemas.

The encoding mirrors the paper's presentation: a schema is its
relation-schemes (attributes with domains, primary key, extra candidate
keys) plus the four constraint groups.  Example::

    {
      "schemes": [
        {"name": "OFFER",
         "attributes": [["O.C.NR", "course-nr"], ["O.D.NAME", "dept-name"]],
         "primary_key": ["O.C.NR"]}
      ],
      "fds": [{"scheme": "OFFER", "lhs": ["O.C.NR"],
               "rhs": ["O.C.NR", "O.D.NAME"]}],
      "inds": [{"lhs_scheme": "OFFER", "lhs_attrs": ["O.C.NR"],
                "rhs_scheme": "COURSE", "rhs_attrs": ["C.NR"]}],
      "null_constraints": [
        {"kind": "null-existence", "scheme": "OFFER",
         "lhs": [], "rhs": ["O.C.NR", "O.D.NAME"]}
      ]
    }
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.constraints.functional import KeyDependency
from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import (
    NullConstraint,
    NullExistenceConstraint,
    PartNullConstraint,
    TotalEqualityConstraint,
)
from repro.relational.attributes import Attribute, Domain
from repro.relational.schema import RelationScheme, RelationalSchema


class SchemaDecodeError(ValueError):
    """Raised when a schema dictionary is malformed."""


def _scheme_to_dict(scheme: RelationScheme) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": scheme.name,
        "attributes": [[a.name, a.domain.name] for a in scheme.attributes],
        "primary_key": list(scheme.key_names),
    }
    extra_keys = sorted(
        [list(a.name for a in key) for key in scheme.candidate_keys]
    )
    extra_keys = [k for k in extra_keys if tuple(k) != scheme.key_names]
    if extra_keys:
        out["candidate_keys"] = extra_keys
    return out


def _null_constraint_to_dict(constraint: NullConstraint) -> dict[str, Any]:
    if isinstance(constraint, NullExistenceConstraint):
        return {
            "kind": "null-existence",
            "scheme": constraint.scheme_name,
            "lhs": sorted(constraint.lhs),
            "rhs": sorted(constraint.rhs),
        }
    if isinstance(constraint, PartNullConstraint):
        return {
            "kind": "part-null",
            "scheme": constraint.scheme_name,
            "groups": [sorted(g) for g in constraint.groups],
        }
    if isinstance(constraint, TotalEqualityConstraint):
        return {
            "kind": "total-equality",
            "scheme": constraint.scheme_name,
            "lhs": list(constraint.lhs),
            "rhs": list(constraint.rhs),
        }
    raise TypeError(f"unknown null constraint: {constraint!r}")


def relational_schema_to_dict(schema: RelationalSchema) -> dict[str, Any]:
    """Encode a relational schema as a JSON-compatible dictionary."""
    return {
        "schemes": [_scheme_to_dict(s) for s in schema.schemes],
        "fds": [
            {
                "scheme": fd.scheme_name,
                "lhs": sorted(fd.lhs),
                "rhs": sorted(fd.rhs),
            }
            for fd in schema.fds
        ],
        "inds": [
            {
                "lhs_scheme": d.lhs_scheme,
                "lhs_attrs": list(d.lhs_attrs),
                "rhs_scheme": d.rhs_scheme,
                "rhs_attrs": list(d.rhs_attrs),
            }
            for d in schema.inds
        ],
        "null_constraints": [
            _null_constraint_to_dict(c) for c in schema.null_constraints
        ],
    }


def _require(mapping: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in mapping:
        raise SchemaDecodeError(f"{context}: missing field {key!r}")
    return mapping[key]


def _scheme_from_dict(data: Mapping[str, Any]) -> RelationScheme:
    name = _require(data, "name", "scheme")
    attr_pairs = _require(data, "attributes", f"scheme {name}")
    attrs = tuple(
        Attribute(attr_name, Domain(domain_name))
        for attr_name, domain_name in attr_pairs
    )
    by_name = {a.name: a for a in attrs}
    try:
        key = tuple(
            by_name[n] for n in _require(data, "primary_key", f"scheme {name}")
        )
        candidate_keys = frozenset(
            tuple(by_name[n] for n in key_names)
            for key_names in data.get("candidate_keys", [])
        )
    except KeyError as exc:
        raise SchemaDecodeError(
            f"scheme {name}: key references unknown attribute {exc}"
        ) from None
    return RelationScheme(name, attrs, key, candidate_keys)


def _null_constraint_from_dict(data: Mapping[str, Any]) -> NullConstraint:
    kind = _require(data, "kind", "null constraint")
    scheme = _require(data, "scheme", f"null constraint ({kind})")
    if kind == "null-existence":
        return NullExistenceConstraint(
            scheme,
            frozenset(data.get("lhs", [])),
            frozenset(_require(data, "rhs", "null-existence")),
        )
    if kind == "part-null":
        return PartNullConstraint(
            scheme,
            tuple(
                frozenset(g) for g in _require(data, "groups", "part-null")
            ),
        )
    if kind == "total-equality":
        return TotalEqualityConstraint(
            scheme,
            tuple(_require(data, "lhs", "total-equality")),
            tuple(_require(data, "rhs", "total-equality")),
        )
    raise SchemaDecodeError(f"unknown null constraint kind {kind!r}")


def relational_schema_from_dict(data: Mapping[str, Any]) -> RelationalSchema:
    """Decode a relational schema from its dictionary form."""
    schemes = tuple(
        _scheme_from_dict(s) for s in _require(data, "schemes", "schema")
    )
    fds = tuple(
        KeyDependency(
            _require(fd, "scheme", "fd"),
            frozenset(_require(fd, "lhs", "fd")),
            frozenset(_require(fd, "rhs", "fd")),
        )
        for fd in data.get("fds", [])
    )
    inds = tuple(
        InclusionDependency(
            _require(d, "lhs_scheme", "ind"),
            tuple(_require(d, "lhs_attrs", "ind")),
            _require(d, "rhs_scheme", "ind"),
            tuple(_require(d, "rhs_attrs", "ind")),
        )
        for d in data.get("inds", [])
    )
    null_constraints = tuple(
        _null_constraint_from_dict(c)
        for c in data.get("null_constraints", [])
    )
    try:
        return RelationalSchema(
            schemes=schemes,
            fds=fds,
            inds=inds,
            null_constraints=null_constraints,
        )
    except ValueError as exc:
        raise SchemaDecodeError(str(exc)) from exc
