"""Hash-partitioned shard routing for the multi-core server fleet.

A sharded fleet (:mod:`repro.server.supervisor`) runs one single-writer
worker process per core; every relation is hash-partitioned across all
workers by primary key, so each worker owns a disjoint slice of every
table, with its own write-ahead log, group-commit pipeline and metrics
registry (the shared-nothing, partitioned-executor design of
H-Store/VoltDB-style systems).

The partitioning function must be computable on both ends of the wire
without sharing any process state, so it hashes the *wire form* of the
key -- the JSON-encodable values produced by
:func:`repro.server.protocol.encode_pk` -- with CRC-32 over a canonical
JSON rendering.  (``hash()`` is per-process randomized for strings and
therefore useless across processes.)

:class:`ShardMap` is the client-side picture of a fleet, built from a
``topology`` response: how many workers there are, where they listen,
and each scheme's key attributes (needed to route an insert by the key
columns of its row).  The pure decision logic for cross-shard reference
requirements (:func:`requirement_violation`) lives here too, so the
client driver and the tests share one implementation.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Callable, Iterable, Mapping, Sequence


def shard_of(scheme: str, pk_wire: Sequence[Any], n_shards: int) -> int:
    """The worker index owning ``scheme``'s row with wire-form key
    ``pk_wire``.

    Deterministic across processes and runs: CRC-32 of the canonical
    (sorted-key, compact) JSON of ``[scheme, pk_wire]``.
    """
    if n_shards <= 1:
        return 0
    canonical = json.dumps(
        [scheme, list(pk_wire)], separators=(",", ":"), sort_keys=True
    )
    return zlib.crc32(canonical.encode("utf-8")) % n_shards


class ShardMap:
    """A fleet's shard layout, as reported by the ``topology`` verb.

    Besides the partitioning inputs (worker count, key attributes per
    scheme), it carries each scheme's reference profile -- whether any
    inclusion dependency points *out of* or *into* it -- which is what
    lets a router send reference-free mutations down the plain
    group-commit path and reserve the two-phase prepare protocol for
    mutations whose checks may cross shards.
    """

    __slots__ = (
        "n_shards",
        "host",
        "ports",
        "shared_port",
        "key_names",
        "refs_out",
        "refs_in",
    )

    def __init__(
        self,
        n_shards: int,
        host: str,
        ports: Sequence[int],
        key_names: Mapping[str, Sequence[str]],
        shared_port: int | None = None,
        refs_out: Mapping[str, bool] | None = None,
        refs_in: Mapping[str, bool] | None = None,
    ):
        self.n_shards = max(1, int(n_shards))
        self.host = host
        self.ports = list(ports)
        self.shared_port = shared_port
        self.key_names = {k: tuple(v) for k, v in key_names.items()}
        # Unknown profiles default to True: assume checks may cross
        # shards unless told otherwise.
        self.refs_out = {
            k: bool((refs_out or {}).get(k, True)) for k in self.key_names
        }
        self.refs_in = {
            k: bool((refs_in or {}).get(k, True)) for k in self.key_names
        }

    @classmethod
    def from_topology(cls, topo: Mapping[str, Any]) -> "ShardMap":
        """Build a map from a server's ``topology`` verb response."""
        schemes = topo.get("schemes", {})
        key_names: dict[str, Sequence[str]] = {}
        refs_out: dict[str, bool] = {}
        refs_in: dict[str, bool] = {}
        for name, entry in schemes.items():
            if isinstance(entry, Mapping):
                key_names[name] = entry.get("key", ())
                refs_out[name] = bool(entry.get("refs_out", True))
                refs_in[name] = bool(entry.get("refs_in", True))
            else:  # bare key list (older/simpler producers)
                key_names[name] = entry
        return cls(
            n_shards=int(topo.get("workers", 1)),
            host=str(topo.get("host", "127.0.0.1")),
            ports=[int(p) for p in topo.get("ports", ())],
            key_names=key_names,
            shared_port=topo.get("shared_port"),
            refs_out=refs_out,
            refs_in=refs_in,
        )

    def shards(self) -> range:
        """Every shard index, in order."""
        return range(self.n_shards)

    def shard_of_pk(self, scheme: str, pk_wire: Sequence[Any]) -> int:
        """Owning shard of a wire-form primary key."""
        return shard_of(scheme, pk_wire, self.n_shards)

    def shard_of_row(self, scheme: str, row_wire: Mapping[str, Any]) -> int:
        """Owning shard of a wire-form row, by its key columns."""
        keys = self.key_names.get(scheme)
        if keys is None:
            raise KeyError(f"unknown scheme {scheme!r}")
        try:
            pk_wire = [row_wire[k] for k in keys]
        except KeyError as exc:
            raise KeyError(
                f"{scheme}: row is missing key attribute {exc.args[0]!r}"
            ) from exc
        return shard_of(scheme, pk_wire, self.n_shards)

    def shard_of_op(self, op: Sequence[Any]) -> int:
        """Owning shard of one wire-form ``apply_batch`` operation."""
        kind = op[0]
        if kind == "insert":
            return self.shard_of_row(op[1], op[2])
        if kind in ("delete", "update"):
            pk = op[2]
            if not isinstance(pk, (list, tuple)):
                pk = [pk]
            return self.shard_of_pk(op[1], pk)
        raise ValueError(f"unknown batch operation {kind!r}")


def requirement_violation(
    req: Mapping[str, Any],
    exists_any: Callable[[str, Sequence[str], Sequence[Any]], bool],
) -> str | None:
    """Decide one cross-shard requirement from a prepared batch.

    ``exists_any(scheme, attrs, value)`` must answer whether *any* shard
    (the preparing ones included -- their probes see held-prepare state)
    has a row of ``scheme`` carrying ``value`` under ``attrs``.  Returns
    ``None`` when the requirement is satisfied, else a human-readable
    violation message.

    * ``exists``: some row somewhere must carry the referenced value.
    * ``restrict``: the batch removed this shard's last provider of the
      value; fine if another shard still provides it, otherwise no
      referencing child row may remain anywhere.
    """
    kind = req["kind"]
    if kind == "exists":
        if exists_any(req["scheme"], req["attrs"], req["value"]):
            return None
        return (
            f"{req['scheme']} has no row with "
            f"{dict(zip(req['attrs'], req['value']))!r} "
            f"(required by {req['constraint']})"
        )
    if kind == "restrict":
        if exists_any(req["scheme"], req["attrs"], req["value"]):
            return None  # another provider of the value survives
        if exists_any(req["child_scheme"], req["child_attrs"], req["value"]):
            return (
                f"{req['scheme']} value "
                f"{dict(zip(req['attrs'], req['value']))!r} "
                f"still referenced by {req['child_scheme']} "
                f"({req['constraint']})"
            )
        return None
    raise ValueError(f"unknown requirement kind {kind!r}")


def group_ops_by_shard(
    shard_map: ShardMap, ops: Iterable[Sequence[Any]]
) -> dict[int, list[tuple[int, Sequence[Any]]]]:
    """Split wire-form batch ops by owning shard, keeping each op's
    position so the driver can reassemble results in request order."""
    groups: dict[int, list[tuple[int, Sequence[Any]]]] = {}
    for i, op in enumerate(ops):
        groups.setdefault(shard_map.shard_of_op(op), []).append((i, op))
    return groups
