"""The fleet supervisor: one single-writer worker process per core.

``python -m repro serve SCHEMA --workers N`` runs this parent process.
It binds every listening socket up front -- one *direct* socket per
worker (ephemeral port, carrying that worker's routed traffic) plus one
*shared* socket on the public port, which every worker accepts from
(the kernel load-balances a shared listening fd across the accepting
processes; ``SO_REUSEPORT`` is additionally set where available so a
future per-worker-bound deployment needs no code change).  The bound
sockets are passed to each worker by file descriptor
(``subprocess`` ``pass_fds``), so the parent never proxies a byte: it
is a pure supervisor, and the workers are ordinary ``repro serve``
processes in worker mode.

Each worker owns a hash-partitioned shard of every relation
(:mod:`repro.server.router`) with its own write-ahead log
(``<wal>.w<i>``), group-commit pipeline, and metrics registry --
shared-nothing, so worker throughput adds up instead of serializing on
one writer.

Supervision: a worker that dies unexpectedly is respawned with the same
fds and WAL path; ``repro serve``'s own startup recovery replays the
shard's log, so a SIGKILL mid-batch loses only unacknowledged
mutations (the group-commit contract, now per shard).  ``SIGTERM`` /
``SIGINT`` on the parent drains the fleet: every worker gets SIGTERM
and performs its usual graceful drain (final group commit, checkpoint,
close).

Stdout protocol (what :class:`FleetProcess` and scripts parse): each
worker line is forwarded prefixed ``[w<i>]``; the parent prints
``worker <i> pid <pid> port <port>`` when a worker becomes ready
(suffixed ``(respawned)`` after a crash), then ``fleet listening on
<host>:<port> workers=<n>`` once all are up, and ``fleet drained``
after shutdown.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
from typing import Any, IO


def bind_socket(host: str, port: int, reuse_port: bool = True) -> socket.socket:
    """A bound (not yet listening) TCP socket the workers will accept
    from."""
    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if reuse_port and hasattr(socket, "SO_REUSEPORT"):
        try:
            s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        except OSError:
            pass
    s.bind((host, port))
    return s


class Supervisor:
    """Spawn, watch, respawn, and drain a fleet of worker processes.

    ``worker_args`` is the tail of each worker's command line (schema
    path and forwarded ``serve`` options); the supervisor appends the
    worker-mode flags (index, ports, fds, per-worker WAL path).
    """

    def __init__(
        self,
        workers: int,
        host: str,
        port: int,
        worker_args: list[str],
        wal: str | None = None,
        ready_timeout: float = 60.0,
        replicate_from: list[str] | None = None,
        span_sink: str | None = None,
    ):
        if workers < 1:
            raise ValueError("a fleet needs at least one worker")
        if replicate_from is not None and len(replicate_from) != workers:
            raise ValueError(
                f"need one primary address per worker: got "
                f"{len(replicate_from)} for {workers} workers"
            )
        self.n_workers = workers
        self.host = host
        self.wal = wal
        #: Span-sink base path; each worker writes ``<path>.w<i>``
        #: (same per-worker derivation as the WAL), which is what
        #: ``repro trace`` globs up to reassemble fleet-wide traces.
        self.span_sink = span_sink
        self.worker_args = list(worker_args)
        #: Per-worker primary addresses (``host:port`` of the matching
        #: shard on the primary fleet); set, every worker runs as a
        #: replica of its counterpart and the whole fleet is promotable
        #: shard by shard.
        self.replicate_from = replicate_from
        self.ready_timeout = ready_timeout
        self.shared_socket = bind_socket(host, port)
        self.port: int = self.shared_socket.getsockname()[1]
        self.direct_sockets = [bind_socket(host, 0) for _ in range(workers)]
        self.ports: list[int] = [
            s.getsockname()[1] for s in self.direct_sockets
        ]
        self.procs: list[subprocess.Popen | None] = [None] * workers
        self.respawns = 0
        self._ready = [threading.Event() for _ in range(workers)]
        self._draining = threading.Event()
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._exit_codes: list[int] = []

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker and block until the whole fleet is ready."""
        for i in range(self.n_workers):
            self._spawn(i)
        for i, event in enumerate(self._ready):
            if not event.wait(self.ready_timeout):
                raise RuntimeError(f"worker {i} failed to become ready")
        print(
            f"fleet listening on {self.host}:{self.port} "
            f"workers={self.n_workers}",
            flush=True,
        )

    def run_forever(self) -> int:
        """Install signal handlers and supervise until drained."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda *_: self.drain())
        self._done.wait()
        print("fleet drained", flush=True)
        return 1 if any(self._exit_codes) else 0

    def drain(self) -> None:
        """SIGTERM every worker and reap the fleet (idempotent)."""
        if self._draining.is_set():
            self._done.wait()
            return
        self._draining.set()
        with self._lock:
            procs = [p for p in self.procs if p is not None]
        for proc in procs:
            if proc.poll() is None:
                with _suppress_process_errors():
                    proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                code = proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                code = proc.wait()
            self._exit_codes.append(code)
            if code:
                index = next(
                    (i for i, p in enumerate(self.procs) if p is proc), "?"
                )
                print(
                    f"worker {index} pid {proc.pid} drained "
                    f"with code {code}",
                    flush=True,
                )
        for s in self.direct_sockets:
            s.close()
        self.shared_socket.close()
        self._done.set()

    # -- workers ---------------------------------------------------------

    def _worker_command(self, index: int) -> list[str]:
        cmd = [sys.executable, "-m", "repro", "serve"]
        cmd += self.worker_args
        cmd += [
            "--host",
            self.host,
            "--workers",
            str(self.n_workers),
            "--worker-index",
            str(index),
            "--worker-ports",
            ",".join(str(p) for p in self.ports),
            "--shared-port",
            str(self.port),
            "--listen-fd",
            str(self.direct_sockets[index].fileno()),
            "--shared-fd",
            str(self.shared_socket.fileno()),
        ]
        if self.wal is not None:
            cmd += ["--wal", f"{self.wal}.w{index}"]
        if self.span_sink is not None:
            cmd += ["--span-sink", f"{self.span_sink}.w{index}"]
        if self.replicate_from is not None:
            cmd += ["--replicate-from", self.replicate_from[index]]
        return cmd

    def _spawn(self, index: int, respawned: bool = False) -> None:
        proc = subprocess.Popen(
            self._worker_command(index),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            pass_fds=(
                self.direct_sockets[index].fileno(),
                self.shared_socket.fileno(),
            ),
        )
        with self._lock:
            self.procs[index] = proc
        threading.Thread(
            target=self._pump,
            args=(index, proc, respawned),
            name=f"repro-worker-{index}",
            daemon=True,
        ).start()

    def _pump(
        self, index: int, proc: subprocess.Popen, respawned: bool
    ) -> None:
        """Forward one worker's output, mark readiness, respawn on
        unexpected death."""
        stdout: IO[str] = proc.stdout  # type: ignore[assignment]
        for line in stdout:
            line = line.rstrip("\n")
            print(f"[w{index}] {line}", flush=True)
            if line.startswith("listening on "):
                suffix = " (respawned)" if respawned else ""
                print(
                    f"worker {index} pid {proc.pid} "
                    f"port {self.ports[index]}{suffix}",
                    flush=True,
                )
                self._ready[index].set()
        proc.wait()
        if self._draining.is_set():
            return
        print(
            f"worker {index} pid {proc.pid} exited "
            f"with code {proc.returncode}; respawning",
            flush=True,
        )
        with self._lock:
            self.respawns += 1
        self._ready[index].clear()
        self._spawn(index, respawned=True)


class _suppress_process_errors:
    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, *_: Any) -> bool:
        return exc_type is not None and issubclass(
            exc_type, (ProcessLookupError, OSError)
        )


class FleetProcess:
    """A ``repro serve --workers N`` fleet run as a child process -- the
    harness tests and ``bench_server`` drive.

    Parses the supervisor's stdout protocol: :attr:`port` (the shared
    public port), :attr:`worker_ports` and :attr:`worker_pids` by worker
    index, updated on respawn.  ``stop()`` sends SIGTERM and waits for
    the graceful fleet drain.
    """

    def __init__(
        self,
        schema: str,
        workers: int,
        wal: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        extra_args: tuple[str, ...] = (),
        timeout: float = 120.0,
    ):
        self.timeout = timeout
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            schema,
            "--host",
            host,
            "--port",
            str(port),
            "--workers",
            str(workers),
        ]
        if wal is not None:
            cmd += ["--wal", wal]
        cmd += list(extra_args)
        env = dict(os.environ)
        env.setdefault("PYTHONUNBUFFERED", "1")
        # The child must import ``repro`` however the caller did (e.g. a
        # benchmark harness that put ``src`` on sys.path itself).
        pkg_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        paths = env.get("PYTHONPATH", "")
        if pkg_root not in paths.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + os.pathsep + paths if paths else pkg_root
            )
        self.proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.host = host
        self.port: int | None = None
        self.worker_ports: dict[int, int] = {}
        self.worker_pids: dict[int, int] = {}
        self.respawned: set[int] = set()
        self.lines: list[str] = []
        self._ready = threading.Event()
        self._drained = threading.Event()
        self._reader = threading.Thread(
            target=self._read, name="repro-fleet-reader", daemon=True
        )
        self._reader.start()

    def __enter__(self) -> "FleetProcess":
        return self.wait_ready()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _read(self) -> None:
        stdout: IO[str] = self.proc.stdout  # type: ignore[assignment]
        for raw in stdout:
            line = raw.rstrip("\n")
            self.lines.append(line)
            parts = line.split()
            if (
                line.startswith("worker ")
                and "pid" in parts
                and "port" in parts
            ):
                index = int(parts[1])
                self.worker_pids[index] = int(parts[parts.index("pid") + 1])
                self.worker_ports[index] = int(
                    parts[parts.index("port") + 1]
                )
                if line.endswith("(respawned)"):
                    self.respawned.add(index)
            elif line.startswith("fleet listening on "):
                self.port = int(parts[3].rpartition(":")[2])
                self._ready.set()
            elif line == "fleet drained":
                self._drained.set()
        self._ready.set()  # EOF: unblock waiters even on startup failure

    def wait_ready(self) -> "FleetProcess":
        """Block until the fleet announces readiness; self, for chaining."""
        if not self._ready.wait(self.timeout) or self.port is None:
            self.stop()
            raise RuntimeError(
                "fleet failed to start:\n" + "\n".join(self.lines[-20:])
            )
        return self

    def wait_worker(self, index: int, timeout: float = 60.0) -> int:
        """Block until worker ``index`` is (re)announced; its pid."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            pid = self.worker_pids.get(index)
            if pid is not None and _pid_alive(pid):
                return pid
            time.sleep(0.05)
        raise RuntimeError(f"worker {index} did not come up")

    def kill_worker(self, index: int) -> int:
        """SIGKILL one worker (crash injection); returns the old pid."""
        pid = self.worker_pids[index]
        del self.worker_pids[index]
        os.kill(pid, signal.SIGKILL)
        return pid

    def stop(self) -> int:
        """Graceful fleet drain; the supervisor's exit code."""
        if self.proc.poll() is None:
            with _suppress_process_errors():
                self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=self.timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            code = self.proc.wait()
        self._reader.join(timeout=10)
        return code


class ServerProcess:
    """A plain (one-worker) ``repro serve`` run as a child process.

    The single-server sibling of :class:`FleetProcess`, used by the
    replication tests and ``bench_server --replicated``: it parses the
    ``listening on`` readiness line, exposes the stdout transcript for
    assertions (``replica caught up ...``, ``promoted to primary``),
    and supports both graceful drain (:meth:`stop`) and crash
    injection (:meth:`kill`).
    """

    def __init__(
        self,
        schema: str,
        wal: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        replicate_from: str | None = None,
        extra_args: tuple[str, ...] = (),
        timeout: float = 60.0,
    ):
        self.timeout = timeout
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            schema,
            "--host",
            host,
            "--port",
            str(port),
        ]
        if wal is not None:
            cmd += ["--wal", wal]
        if replicate_from is not None:
            cmd += ["--replicate-from", replicate_from]
        cmd += list(extra_args)
        env = dict(os.environ)
        env.setdefault("PYTHONUNBUFFERED", "1")
        pkg_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        paths = env.get("PYTHONPATH", "")
        if pkg_root not in paths.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + os.pathsep + paths if paths else pkg_root
            )
        self.proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            # Replica-status lines (``replica caught up ...``) print to
            # stderr; merge them into the transcript so wait_line()
            # sees both streams.
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.host = host
        self.port: int | None = None
        self.lines: list[str] = []
        self._ready = threading.Event()
        self._reader = threading.Thread(
            target=self._read, name="repro-server-reader", daemon=True
        )
        self._reader.start()

    def __enter__(self) -> "ServerProcess":
        return self.wait_ready()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _read(self) -> None:
        stdout: IO[str] = self.proc.stdout  # type: ignore[assignment]
        for raw in stdout:
            line = raw.rstrip("\n")
            self.lines.append(line)
            if line.startswith("listening on "):
                self.port = int(line.rpartition(":")[2])
                self._ready.set()
        self._ready.set()  # EOF: unblock waiters even on startup failure

    def wait_ready(self) -> "ServerProcess":
        """Block until the readiness line; self, for chaining."""
        if not self._ready.wait(self.timeout) or self.port is None:
            self.stop()
            raise RuntimeError(
                "server failed to start:\n" + "\n".join(self.lines[-20:])
            )
        return self

    def wait_line(self, prefix: str, timeout: float = 30.0) -> str:
        """Block until a stdout line starting with ``prefix`` appears
        (e.g. ``replica caught up``); returns the line."""
        import time

        deadline = time.monotonic() + timeout
        seen = 0
        while time.monotonic() < deadline:
            lines = self.lines
            for line in lines[seen:]:
                if line.startswith(prefix):
                    return line
            seen = len(lines)
            time.sleep(0.02)
        raise RuntimeError(
            f"no line starting with {prefix!r} within {timeout}s:\n"
            + "\n".join(self.lines[-20:])
        )

    def kill(self) -> int:
        """SIGKILL the server (crash injection); returns its pid."""
        pid = self.proc.pid
        with _suppress_process_errors():
            self.proc.kill()
        self.proc.wait()
        return pid

    def stop(self) -> int:
        """Graceful drain via SIGTERM; the server's exit code."""
        if self.proc.poll() is None:
            with _suppress_process_errors():
                self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=self.timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            code = self.proc.wait()
        self._reader.join(timeout=10)
        return code


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
