"""The JSON-lines wire protocol between :mod:`repro.client` and the
server.

One frame per line, UTF-8 JSON, newline-terminated.  Requests carry a
client-chosen ``id`` (echoed verbatim in the response, so a client can
match responses to requests), a ``verb``, and verb-specific parameters::

    {"id": 1, "verb": "insert", "scheme": "COURSE", "row": {"C.NR": "c1"}}

Requests may also carry an optional ``trace_id`` string.  The server
echoes it -- or a generated id, when absent -- as a top-level
``trace_id`` on the response (and inside the ``error`` object of error
frames), and stamps it onto every engine trace event emitted while
handling the request, which is the correlation handle ``repro monitor``
and JSONL trace greps pivot on (see ``docs/OBSERVABILITY.md``).

Requests may further carry an optional ``span`` string -- a
W3C-traceparent-style span context
(:func:`repro.obs.spans.encode_context`).  A server running with a span
sink parents its server span on the context's span id, so the client's
root span, the router's fan-out, every participant shard's
prepare/commit, the group-commit barrier, and the replica's apply all
land in one reassemblable trace (``repro trace``; see
``docs/OBSERVABILITY.md``).  An absent or malformed ``span`` simply
roots a new trace; bit 0 of the context's flags carries the caller's
head-sampling decision.

Responses are either a result frame or a typed error frame::

    {"id": 1, "ok": true, "result": {"C.NR": "c1"}}
    {"id": 2, "ok": false, "error": {"type": "constraint-violation",
        "constraint": "restrict-delete", "kind": "restrict-delete",
        "rule": "Section 5.1 (referential integrity, ...)",
        "message": "..."}}

Error frames for rejected mutations carry the full provenance of the
:class:`~repro.engine.database.ConstraintViolationError` that fired --
``constraint``, ``kind``, ``rule`` and ``detail`` -- so a remote client
learns exactly which paper rule rejected it, the same way an in-process
caller would.  Other error ``type`` values: ``not-found`` (no row under
the given key), ``bad-request`` (malformed frame, unknown verb, bad
parameters), ``wal-error`` (the log refused; the server needs crash
recovery), ``overloaded`` (connection limit), ``shutting-down`` (the
server is draining) and ``server-error`` (anything else).

Attribute values travel through :func:`repro.io.state_json.encode_value`
/ :func:`~repro.io.state_json.decode_value`, so the ``NULL`` marker
``{"$null": true}`` round-trips exactly as it does in state files and
the write-ahead log.

Verbs (dispatched by :mod:`repro.server.service`):

========================  =====================================================
``insert``                ``scheme``, ``row`` -> the stored row
``update``                ``scheme``, ``pk``, ``updates`` -> the updated row
``delete``                ``scheme``, ``pk`` -> ``null``
``insert_many``           ``scheme``, ``rows`` -> list of stored rows
``apply_batch``           ``ops`` (list of op arrays) -> list of row/``null``
``get``                   ``scheme``, ``pk`` -> row or ``null``
``join_to``               ``scheme``, ``pk``, ``via``, ``target_scheme``
                          [, ``target_attrs``] -> row or ``null``
``find_referencing``      ``scheme``, ``pk``, ``source_scheme``, ``via``,
                          ``target_attrs`` -> list of rows
``check``                 -> ``{"consistent": bool, "violations": [...]}``
``explain``               ``op``, ``scheme`` -> the EXPLAIN dict
``metrics``               -> Prometheus text exposition (string): the
                          engine counters/histograms plus the
                          server-layer registry
``stats``                 -> the :meth:`EngineStats.snapshot` dict plus
                          a ``server`` key (request/queue gauges and
                          the metric registry snapshot)
``advise``                [``strategy``] -> the merge advisor's report:
                          mined per-IND join counts and per-scheme
                          mutation rates, every candidate family's
                          Section 5 verdicts and workload score, the
                          ``recommendation`` (or ``null``), and the
                          EXPLAIN text
``apply_merge``           [``members``, ``key_relation``,
                          ``merged_name``, ``strategy``] -> apply a
                          merge online in one WAL transaction; with no
                          ``members`` the advisor's recommendation is
                          applied.  Returns ``{"merged_name",
                          "members", "key_relation", "removed",
                          "schemes"}``
``topology``              -> ``{"workers", "worker_id", "host",
                          "ports", "shared_port"}`` -- the shard map a
                          router needs (a plain single-process server
                          reports ``workers: 1`` and an empty port
                          list, meaning "this address serves
                          everything")
``exists``                ``scheme``, ``attrs``, ``value`` -> whether
                          any local row of ``scheme`` carries ``value``
                          under ``attrs`` (the router's cross-shard
                          reference probe; sees held-prepare state)
``batch_prepare``         ``xid``, ``ops`` -> ``{"xid", "requirements"}``
                          -- phase one of a sharded batch: apply the
                          ops in an open transaction, return the
                          reference checks this shard cannot answer
                          alone, and hold the writer until the decision
``batch_commit``          ``xid`` -> list of row/``null`` (the batch's
                          results), after a durability barrier
``batch_abort``           ``xid`` -> ``null``; rolls the prepare back
``repl_snapshot``         -> ``{"state", "lsn", "role"}`` -- the current
                          checkpoint image plus the durable ``lsn`` it
                          covers (a replica's catch-up base); rejected
                          with ``busy`` while a cross-shard prepare is
                          held
``repl_poll``             ``after`` [, ``wait``, ``sync``,
                          ``max_records``] -> ``{"records",
                          "durable_lsn"}`` -- committed log records with
                          ``lsn > after``, long-polling up to ``wait``
                          seconds when caught up; ``sync: true``
                          registers the session as a synchronous
                          replica whose receipt gates mutation acks
``repl_status``           -> ``{"role", "applied_lsn", "durable_lsn",
                          "primary", "replicas"}`` -- where this server
                          stands in the replication topology
``promote``               -> ``{"was", "role", "applied_lsn"}`` -- turn
                          a replica into a read-write primary
                          (idempotent on a primary)
``spans``                 [``limit``] -> ``{"spans", "depth",
                          "dropped", "exported", "sample"}`` -- the
                          span sink's ring buffer, oldest first (the
                          live collection path of ``repro trace``);
                          empty with no sink configured
========================  =====================================================

Sharding (see ``docs/SERVER.md``): each worker of a sharded fleet owns
the rows whose primary key hashes to it (:mod:`repro.server.router`).
Single-shard mutations sent to the wrong worker are rejected with a
``wrong-shard`` error frame carrying the owning ``worker`` index;
``batch_commit``/``batch_abort`` for an unknown transfer id get
``no-prepared-batch``, and a decision arriving after the hold timed out
gets ``prepare-expired``.

Replication (see ``docs/REPLICATION.md``): a replica answers reads
normally but rejects every mutation and decision verb with a
``read-only-replica`` error frame naming its ``primary``, so a client
that writes to the wrong end of the pair learns where to go.
``repl_snapshot`` during a held prepare gets ``busy`` (retry shortly).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.io.state_json import decode_value, encode_value

#: Hard cap on one frame's length in bytes (newline included).  A
#: JSON-lines protocol has no other framing, so an unbounded line is an
#: unbounded memory commitment per connection; oversized requests are
#: rejected with a ``bad-request`` frame and the connection is closed.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Every verb the service dispatches; requests naming anything else are
#: answered with a ``bad-request`` error frame.
VERBS = (
    "insert",
    "update",
    "delete",
    "insert_many",
    "apply_batch",
    "get",
    "join_to",
    "find_referencing",
    "check",
    "explain",
    "advise",
    "apply_merge",
    "metrics",
    "stats",
    "topology",
    "exists",
    "batch_prepare",
    "batch_commit",
    "batch_abort",
    "repl_snapshot",
    "repl_poll",
    "repl_status",
    "promote",
    "spans",
)

#: The verbs that mutate state and therefore go through the
#: single-writer group-commit path (the rest execute as snapshot reads).
#: ``batch_commit``/``batch_abort`` are neither: they are decisions
#: delivered straight to the writer already holding their prepare.
MUTATION_VERBS = frozenset(
    (
        "insert",
        "update",
        "delete",
        "insert_many",
        "apply_batch",
        "batch_prepare",
        "apply_merge",
    )
)

#: Decision verbs for a held prepare (routed around the mutation queue).
DECISION_VERBS = frozenset(("batch_commit", "batch_abort"))

#: WAL-shipping verbs (``promote`` included: it flips the role the
#: others are gated on).  Handled outside the mutation queue -- a
#: replica poll parks on the commit signal, never on the writer.
REPLICATION_VERBS = frozenset(
    ("repl_snapshot", "repl_poll", "repl_status", "promote")
)


class ProtocolError(ValueError):
    """A frame could not be parsed (bad JSON, missing fields, too big)."""


class RemoteError(RuntimeError):
    """An error frame, raised client-side.

    ``type`` is the error frame's type string; ``detail`` whatever extra
    the frame carried.
    """

    def __init__(self, type: str, message: str, **extra: Any):
        super().__init__(f"{type}: {message}")
        self.type = type
        self.message = message
        self.extra = extra


class RemoteConstraintViolation(RemoteError):
    """A server-side :class:`ConstraintViolationError`, re-raised
    client-side with its full provenance (``constraint``, ``kind``,
    ``rule``, ``detail``)."""

    def __init__(self, message: str, **extra: Any):
        super().__init__("constraint-violation", message, **extra)
        self.constraint = extra.get("constraint", "")
        self.kind = extra.get("kind", "")
        self.rule = extra.get("rule", "")
        self.detail = extra.get("detail", "")


# -- row / value encoding ------------------------------------------------------


def encode_row(row: Mapping[str, Any]) -> dict[str, Any]:
    """A tuple's attribute mapping in wire form (NULL -> marker)."""
    return {k: encode_value(v) for k, v in row.items()}


def decode_row(row: Mapping[str, Any]) -> dict[str, Any]:
    """Inverse of :func:`encode_row`."""
    return {k: decode_value(v) for k, v in row.items()}


def encode_pk(pk: tuple[Any, ...]) -> list[Any]:
    """A primary-key value tuple in wire form."""
    return [encode_value(v) for v in pk]


def decode_pk(pk: Iterable[Any]) -> tuple[Any, ...]:
    """Inverse of :func:`encode_pk`."""
    return tuple(decode_value(v) for v in pk)


# -- framing -------------------------------------------------------------------


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """One wire line: compact JSON + newline."""
    return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` on anything that is not a JSON object
    (framing never resyncs mid-connection, so the caller should close).
    """
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object")
    return frame


def request_frame(id: Any, verb: str, **params: Any) -> dict[str, Any]:
    """A request frame (client side)."""
    frame = {"id": id, "verb": verb}
    frame.update(params)
    return frame


def ok_frame(id: Any, result: Any) -> dict[str, Any]:
    """A success response frame."""
    return {"id": id, "ok": True, "result": result}


def error_frame(
    id: Any, type: str, message: str, **extra: Any
) -> dict[str, Any]:
    """A typed error response frame."""
    error: dict[str, Any] = {"type": type, "message": message}
    error.update({k: v for k, v in extra.items() if v is not None})
    return {"id": id, "ok": False, "error": error}


def violation_frame(id: Any, exc: Any) -> dict[str, Any]:
    """The error frame of one rejected mutation, carrying the
    :class:`ConstraintViolationError`'s full provenance."""
    return error_frame(
        id,
        "constraint-violation",
        str(exc),
        constraint=exc.constraint,
        kind=exc.kind,
        rule=exc.rule,
        detail=exc.detail,
    )


def raise_error(frame: Mapping[str, Any]) -> None:
    """Client side: raise the matching exception for an error frame."""
    error = frame.get("error")
    if not isinstance(error, Mapping):
        raise ProtocolError(f"malformed error frame: {frame!r}")
    type_ = str(error.get("type", "server-error"))
    message = str(error.get("message", ""))
    extra = {k: v for k, v in error.items() if k not in ("type", "message")}
    if type_ == "constraint-violation":
        raise RemoteConstraintViolation(message, **extra)
    raise RemoteError(type_, message, **extra)
