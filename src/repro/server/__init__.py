"""The network service layer: serve one constraint-enforcing
:class:`~repro.engine.database.Database` to many concurrent clients.

The paper's Section 5 asks which merged-relation constraints a DBMS can
maintain *declaratively* on behalf of applications; this package makes
that question operational.  Clients submit mutations over a JSON-lines
TCP protocol (:mod:`repro.server.protocol`), and the server is the sole
enforcer of Definition 2.1 consistency: every rejection comes back as a
typed error frame carrying the violated constraint's ``kind`` and
paper-rule label, exactly as the in-process engine raises them.

Layering:

* :mod:`repro.server.protocol` -- the wire format (framing, verbs,
  row/NULL encoding, typed error frames);
* :mod:`repro.server.service` -- sessions, verb dispatch, and the
  single-writer transaction manager with the group-commit WAL path;
* :mod:`repro.server.server` -- the asyncio accept loop with connection
  limits, backpressure, graceful drain, and the sidecar HTTP endpoint
  serving ``/metrics``, ``/healthz`` and ``/readyz``;
* :mod:`repro.server.router` -- the hash-partitioning function and
  shard map of the multi-core fleet;
* :mod:`repro.server.supervisor` -- the parent process that binds the
  fleet's sockets, spawns one single-writer worker per core, respawns
  crashed workers through WAL recovery, and drains the fleet.

Replication (``docs/REPLICATION.md``): a server started with
``--replicate-from HOST:PORT`` runs as a read-only replica -- it
bootstraps from the primary's checkpoint image (``repl_snapshot``),
tails its committed WAL records (``repl_poll``), re-logs them into its
own WAL, and can be promoted to primary with the ``promote`` verb when
the primary dies.  A registered replica is synchronous: the primary
withholds mutation acks until the replica has confirmed receipt, so
acked durability survives the loss of the primary's disk.

Telemetry runs end to end: the service records per-verb request
counters and latencies, violation counters labeled by constraint kind
and paper rule, and queue/batch/WAL-sync instruments on a
:class:`~repro.obs.metrics.MetricsRegistry`, and every request carries
a ``trace_id`` (client-supplied or server-generated) that is echoed in
the response and stamped onto the engine's trace events (see
``docs/OBSERVABILITY.md``).

The matching blocking client lives in :mod:`repro.client`; the CLI
entry point is ``python -m repro serve`` (see ``docs/SERVER.md``).
"""

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    RemoteConstraintViolation,
    RemoteError,
)
from repro.server.router import ShardMap, shard_of
from repro.server.server import (
    ReproServer,
    ServerConfig,
    ServerThread,
    drain_summary,
    serve,
)
from repro.server.service import DatabaseService, ServerMetrics, ShardInfo
from repro.server.supervisor import ServerProcess, Supervisor

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "RemoteConstraintViolation",
    "RemoteError",
    "ReproServer",
    "ServerConfig",
    "ServerMetrics",
    "ServerProcess",
    "ServerThread",
    "ShardInfo",
    "Supervisor",
    "ShardMap",
    "DatabaseService",
    "drain_summary",
    "serve",
    "shard_of",
]
