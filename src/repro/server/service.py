"""Sessions, verb dispatch, and the single-writer transaction manager.

One :class:`DatabaseService` multiplexes every connection over one
:class:`~repro.engine.database.Database`:

* **Reads** (``get``/``join_to``/``find_referencing``/``check``/
  ``explain``/``metrics``/``stats``) execute inline in the connection's
  coroutine.  The event loop is single-threaded and the handlers never
  await while touching the database, so a read always sees a consistent
  snapshot between mutations; ``Database.scan``'s version guard would
  turn any future violation of that invariant into a loud
  ``RuntimeError`` rather than a silently torn read.

* **Mutations** (``insert``/``update``/``delete``/``insert_many``/
  ``apply_batch``) are funneled through a bounded queue to a single
  writer task -- the serialization point that makes "the server is the
  sole enforcer" true under concurrency.  The queue bound is the
  backpressure mechanism: when writers outrun the engine, connection
  handlers block on ``put`` (and stop reading their sockets) instead of
  buffering unboundedly.

* **Group commit**: the writer drains up to ``max_batch`` queued
  mutations (waiting at most ``max_delay`` seconds for stragglers after
  the first), applies them one by one -- each validated, WAL-appended
  *unflushed*, and stored -- then issues one
  :meth:`~repro.engine.database.Database.sync_wal` barrier and only then
  acknowledges the whole batch.  Concurrent writers' records thus share
  a single flush/fsync instead of paying one each; the
  ``wal_group_commits`` / ``wal_batched_records`` counters report the
  achieved batching factor.  A client is never acked before its record
  is durable, so a crash loses only unacknowledged mutations.

If the sync barrier itself fails, the log is poisoned (the WAL module's
standing discipline): every mutation in the batch -- and every later
one -- is answered with a ``wal-error`` frame, and the process must be
restarted through :meth:`Database.recover`, which drops whatever the
log cannot prove committed.
"""

from __future__ import annotations

import asyncio
import sys
import uuid
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter, time
from typing import Any, Mapping

from repro.engine.database import ConstraintViolationError, Database
from repro.engine.query import QueryEngine
from repro.engine.recovery import RecoveryError, WalApplier
from repro.engine.wal import WalCursor, WalError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, SpanSink, decode_context, render_trace
from repro.obs.trace import CorrelatingTracer
from repro.server import protocol
from repro.server.protocol import (
    DECISION_VERBS,
    MUTATION_VERBS,
    REPLICATION_VERBS,
    VERBS,
    ProtocolError,
    decode_pk,
    decode_row,
    encode_pk,
    encode_row,
    error_frame,
    ok_frame,
    violation_frame,
)
from repro.server.router import shard_of


class WrongShardError(Exception):
    """A single-shard request landed on a worker that does not own its
    primary key; the error frame carries the owning worker index so a
    router-less client can still find its way."""

    def __init__(self, worker: int):
        super().__init__(f"row belongs to worker {worker}")
        self.worker = worker


@dataclass
class ShardInfo:
    """This worker's place in a sharded fleet (``None`` on a plain
    single-process server): its index, the fleet size, and where every
    worker listens -- what the ``topology`` verb reports."""

    worker_id: int = 0
    n_shards: int = 1
    host: str = "127.0.0.1"
    ports: list[int] = field(default_factory=list)
    shared_port: int | None = None


@dataclass
class Session:
    """One client connection's state and counters."""

    id: int
    peer: str = ""
    requests: int = 0
    mutations: int = 0
    rejections: int = 0
    opened_at: float = field(default_factory=perf_counter)
    #: This session's WAL-shipping cursor, created on its first
    #: ``repl_poll`` (each replica connection tails independently).
    repl_cursor: WalCursor | None = None


def _require(frame: Mapping[str, Any], key: str, kind: type) -> Any:
    """A typed parameter, or :class:`ProtocolError` naming what's wrong."""
    try:
        value = frame[key]
    except KeyError:
        raise ProtocolError(f"missing parameter {key!r}") from None
    if not isinstance(value, kind):
        raise ProtocolError(
            f"parameter {key!r} must be {kind.__name__}, not "
            f"{type(value).__name__}"
        )
    return value


def _decode_batch_ops(raw_ops: list) -> list[tuple]:
    """Wire-form ``apply_batch`` op arrays as engine op tuples."""
    ops: list[tuple] = []
    for i, raw in enumerate(raw_ops):
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(f"ops[{i}] must be a non-empty array")
        kind = raw[0]
        if kind == "insert" and len(raw) == 3 and isinstance(raw[2], dict):
            ops.append(("insert", raw[1], decode_row(raw[2])))
        elif (
            kind == "update"
            and len(raw) == 4
            and isinstance(raw[2], list)
            and isinstance(raw[3], dict)
        ):
            ops.append(
                ("update", raw[1], decode_pk(raw[2]), decode_row(raw[3]))
            )
        elif kind == "delete" and len(raw) == 3 and isinstance(raw[2], list):
            ops.append(("delete", raw[1], decode_pk(raw[2])))
        else:
            raise ProtocolError(
                f"ops[{i}] is not a valid insert/update/delete op array"
            )
    return ops


class ServerMetrics:
    """The server-layer metric families, on one shared registry.

    Counters and histograms are recorded by the request path; the three
    gauges are callback-backed, reading the live quantity (connections,
    in-flight mutations, queue depth) at scrape time so they can never
    drift.  The registry renders after the engine's own exposition in
    :meth:`DatabaseService.render_metrics` and snapshots into the
    ``stats`` verb's ``server.metrics`` key.
    """

    def __init__(self, service: "DatabaseService"):
        self.registry = MetricsRegistry()
        r = self.registry
        self.requests = r.counter(
            "repro_server_requests_total",
            "Requests handled, by verb (unknown verbs count as 'invalid').",
            labelnames=("verb",),
        )
        self.request_seconds = r.histogram(
            "repro_server_request_seconds",
            "End-to-end request latency by verb, queueing and group "
            "commit included.",
            labelnames=("verb",),
        )
        self.errors = r.counter(
            "repro_server_errors_total",
            "Error frames returned, by error type.",
            labelnames=("type",),
        )
        self.violations = r.counter(
            "repro_server_violations_total",
            "Constraint-violation rejections, by constraint kind and "
            "paper rule.",
            labelnames=("kind", "rule"),
        )
        self.sessions = r.counter(
            "repro_server_sessions_total", "Client sessions accepted."
        )
        self.rejected_connections = r.counter(
            "repro_server_rejected_connections_total",
            "Connections refused (overloaded or draining).",
        )
        connections = r.gauge(
            "repro_server_connections", "Open client connections."
        )
        connections.set_callback(lambda: service.connections)
        inflight = r.gauge(
            "repro_server_inflight_mutations",
            "Mutations submitted but not yet acknowledged.",
        )
        inflight.set_callback(lambda: service.inflight)
        depth = r.gauge(
            "repro_server_queue_depth",
            "Mutations queued for the single writer.",
        )
        depth.set_callback(lambda: service._queue.qsize())
        self.batch_size = r.histogram(
            "repro_server_commit_batch_size",
            "Mutations covered by one group-commit barrier.",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
        )
        self.wal_sync_seconds = r.histogram(
            "repro_server_wal_sync_seconds",
            "Latency of the group-commit WAL sync barrier.",
        )
        self.prepares = r.counter(
            "repro_server_prepares_total",
            "Cross-shard batch prepares, by final outcome "
            "(committed / aborted / expired).",
            labelnames=("outcome",),
        )
        self.repl_shipped = r.counter(
            "repro_server_repl_shipped_records_total",
            "WAL records shipped to replicas (primary side).",
        )
        self.repl_applied = r.counter(
            "repro_server_repl_applied_records_total",
            "Replicated WAL records applied locally (replica side).",
        )
        replicas = r.gauge(
            "repro_server_repl_replicas",
            "Synchronous replicas currently attached (primary side).",
        )
        replicas.set_callback(lambda: len(service._replicas))
        lag = r.gauge(
            "repro_server_repl_lag_records",
            "Records between the primary's durable lsn and this "
            "replica's applied lsn (0 on a primary).",
        )
        lag.set_callback(service.replication_lag)
        # -- process-level gauges (PR 10) ------------------------------
        uptime = r.gauge(
            "repro_process_uptime_seconds",
            "Seconds since this server process started serving.",
        )
        uptime.set_callback(lambda: time() - service.started_at)
        wal_size = r.gauge(
            "repro_server_wal_size_bytes",
            "Current on-disk size of the write-ahead log (0 without "
            "file storage).",
        )
        wal_size.set_callback(service.wal_size_bytes)
        snapshots = r.gauge(
            "repro_server_wal_snapshots",
            "Checkpoint snapshots taken by this process (WAL "
            "compactions).",
        )
        snapshots.set_callback(lambda: service.db.stats.checkpoints)
        span_depth = r.gauge(
            "repro_server_span_queue_depth",
            "Finished spans held in the span sink's ring buffer.",
        )
        span_depth.set_callback(
            lambda: service.span_sink.depth if service.span_sink else 0
        )
        span_dropped = r.gauge(
            "repro_server_spans_dropped_total",
            "Spans evicted from the span ring buffer before collection.",
        )
        span_dropped.set_callback(
            lambda: service.span_sink.dropped if service.span_sink else 0
        )


class _SpanEventBridge:
    """Tee engine :class:`TraceEvent`s into the active request span.

    Sits between the service's :class:`CorrelatingTracer` and the real
    trace sink: every event still reaches the configured tracer
    unchanged, but while a sampled request is executing its
    constraint-check / WAL-append decisions also land on the request's
    span as span events, so one waterfall shows both layers.
    """

    def __init__(self, service: "DatabaseService", sink):
        self._service = service
        self._sink = sink

    def emit(self, event) -> None:
        """Attach ``event`` to the active span, then forward it."""
        span = self._service._active_span
        if span is not None:
            span.add_event(
                event.event,
                op=event.op,
                kind=event.kind,
                constraint=event.constraint,
                outcome=event.outcome,
                rows=event.rows,
                elapsed_us=event.elapsed_us,
            )
        if self._sink is not None:
            self._sink.emit(event)


class DatabaseService:
    """Verb dispatch plus the single-writer group-commit pipeline."""

    def __init__(
        self,
        db: Database,
        max_batch: int = 64,
        max_delay: float = 0.002,
        queue_depth: int = 1024,
        metrics: bool = True,
        shard: ShardInfo | None = None,
        prepare_timeout: float = 30.0,
        role: str = "primary",
        primary: str | None = None,
        repl_ack_timeout: float = 5.0,
        span_sink: SpanSink | None = None,
        slow_ms: float | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if role not in ("primary", "replica"):
            raise ValueError("role must be 'primary' or 'replica'")
        self.db = db
        self.query = QueryEngine(db)
        self.max_batch = max_batch
        self.max_delay = max_delay
        #: This worker's place in a sharded fleet; ``None`` disables
        #: shard ownership enforcement and makes ``topology`` report a
        #: one-worker world.
        self.shard = shard
        #: How long the writer holds a prepared batch awaiting its
        #: commit/abort decision before aborting it unilaterally.
        self.prepare_timeout = prepare_timeout
        self._key_names: dict[str, tuple[str, ...]] = {
            s.name: s.key_names for s in db.schema.schemes
        }
        #: Why the WAL is unusable (``None`` = healthy).  Set on the
        #: first storage fault; every later mutation gets a
        #: ``wal-error`` frame until the process crash-recovers.
        self.poisoned: str | None = None
        self.requests_served = 0
        #: Mutations submitted whose future is not yet resolved.  The
        #: writer uses this to distinguish "everyone who wants into this
        #: group is already in it -- commit now" from "a straggler is
        #: mid-submission -- wait up to ``max_delay`` for it", so the
        #: delay is only ever paid when it can actually grow a batch.
        self.inflight = 0
        #: Open connections (maintained by the server's accept loop).
        #: The writer treats every connection as a potential straggler:
        #: under a write-heavy load it waits up to ``max_delay`` for
        #:  them to join the group, which is what turns near-simultaneous
        #: arrivals into one barrier instead of many.  Read-heavy
        #: deployments should run with ``max_delay=0``.
        self.connections = 0
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self._writer: asyncio.Task | None = None
        self._stopping = False
        #: Commit/abort decisions for a held prepare, routed around the
        #: mutation queue (the writer is parked on this queue while it
        #: holds one).
        self._decisions: asyncio.Queue = asyncio.Queue()
        #: A ``batch_prepare`` item pulled out of a forming group; the
        #: writer handles it solo on its next iteration.
        self._deferred: tuple | None = None
        #: The transfer id of the currently held prepare (``None`` when
        #: no prepare is in flight) and the last few ids whose holds
        #: timed out, so a late decision gets ``prepare-expired`` rather
        #: than the generic ``no-prepared-batch``.
        self._held_xid: str | None = None
        self._expired_xids: deque[str] = deque(maxlen=8)
        self.prepares = 0
        self.prepare_commits = 0
        self.prepare_aborts = 0
        self.prepare_expired = 0
        # -- replication state (see docs/REPLICATION.md) ---------------
        #: ``"primary"`` (read-write, ships its WAL) or ``"replica"``
        #: (read-only, applies a primary's records); flipped by the
        #: ``promote`` verb.
        self.role = role
        #: ``host:port`` of the primary this replica follows (display
        #: and error frames only -- the replica loop owns the socket).
        self.primary = primary
        #: How long a mutation ack may wait on synchronous-replica
        #: receipt before the stalled replicas are detached.  Bounds
        #: the damage a frozen replica can do to primary availability.
        self.repl_ack_timeout = repl_ack_timeout
        #: Primary side: session id -> highest lsn that synchronous
        #: replica has confirmed received.  Mutation acks gate on
        #: ``min(values) >= the batch's lsn``.
        self._replicas: dict[int, int] = {}
        #: Session ids of every replication poller (sync or not) --
        #: excluded from the group-commit straggler wait, since a
        #: parked poll will never contribute a mutation.
        self._repl_sessions: set[int] = set()
        #: Resolved (and replaced) after every successful durability
        #: barrier; parked ``repl_poll`` long-polls wait on it.
        self._commit_waiter: asyncio.Future | None = None
        #: Resolved (and replaced) whenever a sync replica confirms
        #: receipt; deferred mutation acks wait on it.
        self._confirm_waiter: asyncio.Future | None = None
        self._draining = False
        #: WAL records shipped to replicas / applied from the primary.
        self.repl_shipped = 0
        self.repl_applied = 0
        #: Replica side: the primary's lsn of the last applied record,
        #: and the primary's durable lsn as of the last poll (their
        #: difference is the replication lag).
        self.applied_lsn = 0
        self.primary_durable_lsn = 0
        #: Incremental redo machine (replica side), fed records in
        #: primary-log order; ``None`` on a primary.
        self._applier: WalApplier | None = (
            WalApplier(db) if role == "replica" else None
        )
        #: Async callback the server installs; runs after ``promote``
        #: flips the role (cancels the replica loop, prints the line).
        self.on_promote = None
        #: Wall-clock start of this service, behind the
        #: ``repro_process_uptime_seconds`` gauge.
        self.started_at = time()
        #: Where finished spans go (``None`` disables span tracing);
        #: see :mod:`repro.obs.spans` and docs/OBSERVABILITY.md.
        self.span_sink = span_sink
        #: Dump an ASCII waterfall to stderr for any request whose
        #: server span runs at least this many milliseconds (``None``
        #: disables the slow-request log).
        self.slow_ms = slow_ms
        #: The span the writer (or read path) is executing under right
        #: now; the tracer bridge copies engine events onto it.
        self._active_span: Span | None = None
        #: True when the tracer pipeline exists only for the span sink
        #: (no real tracer behind it): the engine tracer is then
        #: attached just-in-time around sampled requests, so untraced
        #: ones skip event construction entirely.
        self._span_only_tracing = db.tracer is None and span_sink is not None
        #: lsn -> encoded span context for recently committed WAL
        #: records, so replication shipping can stamp the originating
        #: context onto shipped records and the replica's apply joins
        #: the same trace.  Bounded; WAL payloads stay untouched (their
        #: checksums cover exact bytes).
        self._span_ctx_by_lsn: dict[int, str] = {}
        #: Server-layer metric families (``None`` disables the registry
        #: entirely -- the configuration ``bench_server --metrics``
        #: compares against).
        self.metrics: ServerMetrics | None = (
            ServerMetrics(self) if metrics else None
        )
        #: Stamps each request's trace id onto the engine's trace
        #: events; ``None`` when neither a tracer nor a span sink is
        #: attached (a span sink alone still needs the correlator, so
        #: engine events reach the active request span as span events).
        self._correlator: CorrelatingTracer | None = None
        if db.tracer is not None or span_sink is not None:
            self._correlator = CorrelatingTracer(
                _SpanEventBridge(self, db.tracer)
            )
            if not self._span_only_tracing:
                db.set_tracer(self._correlator)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Spawn the single writer task."""
        if self._writer is None:
            self._writer = asyncio.ensure_future(self._write_loop())

    async def stop(self) -> None:
        """Drain the mutation queue and stop the writer.

        The caller (the server's drain path) guarantees no handler will
        enqueue after this: the sentinel is FIFO-ordered behind every
        already-queued mutation, so in-flight work completes first.
        """
        if self._writer is None:
            return
        self._stopping = True
        # A held prepare parks the writer on the decision queue; the
        # drain decision aborts it so the sentinel below can be reached.
        self._decisions.put_nowait(("__drain__", False, None, None, None))
        await self._queue.put(None)
        await self._writer
        self._writer = None

    # -- request dispatch ------------------------------------------------

    async def handle(
        self, session: Session, frame: Mapping[str, Any]
    ) -> dict[str, Any]:
        """One request frame in, one response frame out (never raises).

        Every response echoes a ``trace_id`` -- the client's, when the
        request carried one, otherwise a server-generated id -- and the
        same id is stamped onto every engine :class:`TraceEvent` the
        request causes (via the :class:`CorrelatingTracer`), so one
        grep of a JSONL trace sink reconstructs the decision path.
        """
        request_id = frame.get("id")
        verb = frame.get("verb")
        session.requests += 1
        self.requests_served += 1
        started = perf_counter()
        trace_id = frame.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            response = error_frame(
                request_id, "bad-request", "parameter 'trace_id' must be a string"
            )
            return self._finish(session, "invalid", None, started, response)
        if trace_id is None:
            trace_id = uuid.uuid4().hex[:16]
        if not isinstance(verb, str) or verb not in VERBS:
            response = error_frame(
                request_id,
                "bad-request",
                f"unknown verb {verb!r}; expected one of {', '.join(VERBS)}",
            )
            return self._finish(session, "invalid", trace_id, started, response)
        if verb in REPLICATION_VERBS:
            response = await self._handle_replication(
                verb, frame, request_id, session
            )
            return self._finish(session, verb, trace_id, started, response)
        if self.role == "replica" and (
            verb in MUTATION_VERBS or verb in DECISION_VERBS
        ):
            response = error_frame(
                request_id,
                "read-only-replica",
                "this server is a read-only replica; send writes to the "
                "primary",
                primary=self.primary,
            )
            return self._finish(session, verb, trace_id, started, response)
        span = self._open_server_span(verb, frame)
        if verb in DECISION_VERBS:
            session.mutations += 1
            response = await self._handle_decision(
                verb, frame, request_id, span
            )
            return self._finish(
                session, verb, trace_id, started, response, span
            )
        if verb in MUTATION_VERBS:
            session.mutations += 1
            if self._stopping:
                response = error_frame(
                    request_id,
                    "shutting-down",
                    "server is draining; no further mutations accepted",
                )
                return self._finish(
                    session, verb, trace_id, started, response, span
                )
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self.inflight += 1
            try:
                await self._queue.put(
                    (verb, frame, request_id, trace_id, span, future)
                )
            except BaseException:
                self.inflight -= 1
                raise
            response = await future
        else:
            if self._correlator is not None:
                self._correlator.trace_id = trace_id
            self._activate_span(span)
            try:
                response = self._execute_read(verb, frame, request_id)
            finally:
                self._activate_span(None)
                if self._correlator is not None:
                    self._correlator.trace_id = None
        return self._finish(session, verb, trace_id, started, response, span)

    def _open_server_span(
        self, verb: str, frame: Mapping[str, Any]
    ) -> Span | None:
        """Open the server-side span for one request.

        An incoming ``span`` wire context dictates the trace: we join it
        as a child span and follow its head-sampling flag.  Without one
        (or with a malformed one -- :func:`decode_context` returns
        ``None``) this request roots a new trace, subject to the sink's
        sampling rate.  Replication polls and the ``spans`` verb itself
        are never traced: both are observability plumbing, and tracing
        them would fill the ring with noise.
        """
        sink = self.span_sink
        if sink is None or verb == "spans":
            return None
        ctx = decode_context(frame.get("span"))
        if ctx is not None:
            ctx_trace_id, parent_id, sampled = ctx
            if not sampled:
                return None
            return sink.start_span(
                f"server:{verb}",
                trace_id=ctx_trace_id,
                parent_id=parent_id,
                kind="server",
            )
        if not sink.sample_root():
            return None
        return sink.start_span(f"server:{verb}", kind="server")

    def _finish(
        self,
        session: Session,
        verb: str,
        trace_id: str | None,
        started: float,
        response: dict[str, Any],
        span: Span | None = None,
    ) -> dict[str, Any]:
        """Common response tail: echo the trace id (top-level and inside
        the error object, so client exceptions carry it), bump the
        session counters, record the request metrics, and close out the
        server span (export + slow-request log)."""
        if trace_id is not None:
            response["trace_id"] = trace_id
            error = response.get("error")
            if isinstance(error, dict):
                error.setdefault("trace_id", trace_id)
        if not response.get("ok"):
            session.rejections += 1
        if self.metrics is not None:
            self.metrics.requests.labels(verb=verb).inc()
            self.metrics.request_seconds.labels(verb=verb).observe(
                perf_counter() - started
            )
            error = response.get("error")
            if isinstance(error, dict):
                self.metrics.errors.labels(
                    type=error.get("type", "server-error")
                ).inc()
                if error.get("type") == "constraint-violation":
                    self.metrics.violations.labels(
                        kind=error.get("kind", ""),
                        rule=error.get("rule", ""),
                    ).inc()
        if span is not None and self.span_sink is not None:
            if response.get("lsn") is not None:
                span.attributes["lsn"] = response["lsn"]
            error = response.get("error")
            status = (
                error.get("type", "error") if isinstance(error, dict) else None
            )
            self.span_sink.export(span.end(status))
            self._maybe_log_slow(verb, span)
        return response

    def _maybe_log_slow(self, verb: str, span: Span) -> None:
        """Auto-dump the waterfall for an outlier request (``--slow-ms``):
        render every span of the offending trace still in the local ring
        buffer to stderr, so slow requests explain themselves without a
        separate collection step."""
        if self.slow_ms is None:
            return
        duration_ms = span.duration_s * 1000.0
        if duration_ms < self.slow_ms:
            return
        members = [
            s
            for s in self.span_sink.recent()
            if s.get("trace_id") == span.trace_id
        ]
        print(
            f"slow request: {verb} took {duration_ms:.1f} ms "
            f"(threshold {self.slow_ms:g} ms)",
            file=sys.stderr,
        )
        print(render_trace(span.trace_id, members), file=sys.stderr)

    # -- sharding ----------------------------------------------------------

    async def _handle_decision(
        self,
        verb: str,
        frame: Mapping[str, Any],
        request_id: Any,
        span: Span | None = None,
    ) -> dict[str, Any]:
        """Route a ``batch_commit``/``batch_abort`` to the writer
        holding the named prepare (decisions skip the mutation queue --
        the writer is parked on the decision queue, not draining
        mutations, while it holds one)."""
        xid = frame.get("xid")
        if not isinstance(xid, str):
            return error_frame(
                request_id, "bad-request", "parameter 'xid' must be a string"
            )
        if self._held_xid != xid:
            if xid in self._expired_xids:
                return error_frame(
                    request_id,
                    "prepare-expired",
                    f"prepared batch {xid!r} timed out and was aborted",
                )
            return error_frame(
                request_id,
                "no-prepared-batch",
                f"no prepared batch {xid!r} is held here",
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._decisions.put_nowait(
            (xid, verb == "batch_commit", future, request_id, span)
        )
        return await future

    # -- replication (WAL shipping; see docs/REPLICATION.md) ---------------

    def replication_lag(self) -> int:
        """Records between the primary's durable lsn and this replica's
        applied lsn (0 on a primary, by definition)."""
        if self.role != "replica":
            return 0
        return max(0, self.primary_durable_lsn - self.applied_lsn)

    def _commit_signal(self) -> asyncio.Future:
        """The future the next durability barrier resolves (parked
        ``repl_poll`` long-polls wait on it)."""
        if self._commit_waiter is None or self._commit_waiter.done():
            self._commit_waiter = (
                asyncio.get_running_loop().create_future()
            )
        return self._commit_waiter

    def _confirm_signal(self) -> asyncio.Future:
        """The future the next replica receipt-confirmation resolves
        (deferred mutation acks wait on it)."""
        if self._confirm_waiter is None or self._confirm_waiter.done():
            self._confirm_waiter = (
                asyncio.get_running_loop().create_future()
            )
        return self._confirm_waiter

    def _signal_commit(self) -> None:
        if self._commit_waiter is not None and not self._commit_waiter.done():
            self._commit_waiter.set_result(None)

    def _signal_confirm(self) -> None:
        if (
            self._confirm_waiter is not None
            and not self._confirm_waiter.done()
        ):
            self._confirm_waiter.set_result(None)

    def forget_replica(self, session: Session) -> None:
        """Connection-close cleanup: a vanished replica must stop
        gating acks (the confirm waiters re-evaluate without it)."""
        session.repl_cursor = None
        self._repl_sessions.discard(session.id)
        if self._replicas.pop(session.id, None) is not None:
            self._signal_confirm()

    def begin_drain(self) -> None:
        """Entering drain: release parked replica polls and deferred
        acks promptly instead of letting them ride out their waits."""
        self._draining = True
        self._signal_commit()
        self._signal_confirm()

    async def _await_replication(self, lsn: int) -> None:
        """Hold a mutation ack until every synchronous replica has
        confirmed receipt of everything up to ``lsn``.

        A replica confirms by issuing its *next* poll with an advanced
        ``after`` -- which it does before applying, so this wait costs
        one round trip, not a replica replay.  Replicas that stay
        silent past :attr:`repl_ack_timeout` are detached (they
        re-attach on their next poll): a stalled or dead replica slows
        acks by at most the timeout, never forever.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.repl_ack_timeout
        while self._replicas and not self._draining:
            if min(self._replicas.values()) >= lsn:
                return
            remaining = deadline - loop.time()
            if remaining <= 0:
                stalled = [
                    sid for sid, c in self._replicas.items() if c < lsn
                ]
                for sid in stalled:
                    self._replicas.pop(sid, None)
                return
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._confirm_signal()), remaining
                )
            except asyncio.TimeoutError:
                continue

    async def _resolve_after_confirm(
        self, batch: list[tuple], outcomes: list, lsn: int
    ) -> None:
        """Deferred tail of :meth:`_commit_group` under semi-synchronous
        replication: resolve the batch's futures only once the
        replicas hold its records (or proved themselves stalled)."""
        try:
            await self._await_replication(lsn)
        finally:
            for (_, _, _, _, _, future), outcome in zip(batch, outcomes):
                if not future.done():
                    future.set_result(outcome)

    async def _handle_replication(
        self,
        verb: str,
        frame: Mapping[str, Any],
        request_id: Any,
        session: Session,
    ) -> dict[str, Any]:
        try:
            if verb == "promote":
                return await self._handle_promote(request_id)
            if verb == "repl_status":
                return ok_frame(
                    request_id,
                    {
                        "role": self.role,
                        "primary": self.primary,
                        "applied_lsn": self.applied_lsn,
                        "durable_lsn": (
                            self.db.wal.durable_lsn
                            if self.db.wal is not None
                            else 0
                        ),
                        "replicas": len(self._replicas),
                        "lag": self.replication_lag(),
                    },
                )
            if self.db.wal is None:
                return error_frame(
                    request_id,
                    "bad-request",
                    "server has no write-ahead log to replicate "
                    "(start it with --wal)",
                )
            if self.poisoned is not None:
                return self._poisoned_frame(request_id)
            if verb == "repl_snapshot":
                return self._handle_repl_snapshot(request_id)
            if verb == "repl_poll":
                return await self._handle_repl_poll(
                    frame, request_id, session
                )
            raise ProtocolError(f"unhandled replication verb {verb!r}")
        except ProtocolError as exc:
            return error_frame(request_id, "bad-request", str(exc))
        except Exception as exc:
            return error_frame(request_id, "server-error", repr(exc))

    async def _handle_promote(self, request_id: Any) -> dict[str, Any]:
        was = self.role
        if was == "replica":
            # Seal the redo stream: a group whose commit never arrived
            # was never acked by the dead primary, so dropping it is
            # exactly the recovery semantics.
            if self._applier is not None:
                self._applier.seal()
            self.role = "primary"
            self.primary = None
            if self.on_promote is not None:
                await self.on_promote()
        return ok_frame(
            request_id,
            {"was": was, "role": self.role, "applied_lsn": self.applied_lsn},
        )

    def _handle_repl_snapshot(self, request_id: Any) -> dict[str, Any]:
        from repro.io.state_json import state_to_dict

        if self._held_xid is not None:
            # The state holds an undecided prepare's rows; an image
            # taken now would leak uncommitted mutations to the replica.
            return error_frame(
                request_id,
                "busy",
                "a cross-shard prepare is held; retry the snapshot "
                "shortly",
            )
        # No awaits between a mutation's apply and its barrier, so at
        # any scheduling point the live state is exactly the durable
        # prefix: this image covers precisely lsn <= durable_lsn.
        snapshot: dict[str, Any] = {
            "state": state_to_dict(self.db.state()),
            "lsn": self.db.wal.durable_lsn,
            "role": self.role,
        }
        if self.db._schema_evolved:
            # An online merge evolved the schema past the boot schema a
            # bootstrapping replica holds: ship the evolved schema so
            # the image decodes against the right relation-schemes.
            from repro.io.relational_json import relational_schema_to_dict

            snapshot["schema"] = relational_schema_to_dict(self.db.schema)
        return ok_frame(request_id, snapshot)

    async def _handle_repl_poll(
        self, frame: Mapping[str, Any], request_id: Any, session: Session
    ) -> dict[str, Any]:
        after = frame.get("after", 0)
        if not isinstance(after, int) or after < 0:
            raise ProtocolError(
                "parameter 'after' must be a non-negative integer"
            )
        wait = frame.get("wait", 0)
        if not isinstance(wait, (int, float)) or wait < 0:
            raise ProtocolError(
                "parameter 'wait' must be a non-negative number"
            )
        max_records = frame.get("max_records", 512)
        if not isinstance(max_records, int) or max_records < 1:
            raise ProtocolError(
                "parameter 'max_records' must be a positive integer"
            )
        self._repl_sessions.add(session.id)
        if frame.get("sync"):
            # This poll *is* the receipt confirmation for everything
            # up to ``after``: the replica holds those records (it
            # confirms before applying, never re-requesting them).
            self._replicas[session.id] = after
            self._signal_confirm()
        if session.repl_cursor is None:
            session.repl_cursor = WalCursor(self.db.wal.storage)
        records = session.repl_cursor.read_after(
            after, self.db.wal.durable_lsn, max_records
        )
        if not records and wait > 0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + float(wait)
            while not records and not self._draining:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    await asyncio.wait_for(
                        asyncio.shield(self._commit_signal()), remaining
                    )
                except asyncio.TimeoutError:
                    break
                records = session.repl_cursor.read_after(
                    after, self.db.wal.durable_lsn, max_records
                )
        if records:
            self.repl_shipped += len(records)
            if self.metrics is not None:
                self.metrics.repl_shipped.inc(len(records))
            if self._span_ctx_by_lsn:
                # Stamp the originating span context onto shipped
                # *copies* (never the WAL payloads themselves -- their
                # checksums cover exact bytes), so the replica's apply
                # joins the trace that produced each record.
                records = [
                    (
                        {**record, "span_ctx": ctx}
                        if (
                            ctx := self._span_ctx_by_lsn.get(
                                record.get("lsn")
                            )
                        )
                        is not None
                        else record
                    )
                    for record in records
                ]
        return ok_frame(
            request_id,
            {"records": records, "durable_lsn": self.db.wal.durable_lsn},
        )

    def load_replica_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Replica side: seed the local state (and local log) from a
        primary's ``repl_snapshot`` image."""
        from repro.io.state_json import state_from_dict

        schema_dict = snapshot.get("schema")
        if schema_dict is not None:
            # The primary merged online before this bootstrap: adopt its
            # evolved schema first, then decode the image against it.
            from repro.io.relational_json import relational_schema_from_dict

            schema = relational_schema_from_dict(schema_dict)
            self.db._adopt_schema(
                schema, state_from_dict(snapshot["state"], schema)
            )
            self._refresh_schema_caches()
            # checkpoint() re-logs the image (schema included) into the
            # replica's own WAL -- same independent recoverability as
            # the load_state record the plain path writes.
            self.db.checkpoint()
            self.db.sync_wal()
            self.applied_lsn = int(snapshot["lsn"])
            self.primary_durable_lsn = max(
                self.primary_durable_lsn, self.applied_lsn
            )
            return
        state = state_from_dict(snapshot["state"], self.db.schema)
        self.db.load_state(state, validate=False)
        self.db.sync_wal()
        self.applied_lsn = int(snapshot["lsn"])
        self.primary_durable_lsn = max(
            self.primary_durable_lsn, self.applied_lsn
        )

    def apply_replicated(
        self, records: list[Mapping[str, Any]], durable_lsn: int
    ) -> None:
        """Replica side: redo a polled batch of primary records.

        Runs synchronously (no awaits), so a ``promote`` arriving on
        another connection can never observe half a batch.  Records
        re-log through the replica's *own* WAL (its lsns, its group
        markers), so the local log is independently recoverable.

        Bare inserts -- the bulk of any write-heavy stream -- redo
        through :meth:`Database.redo_insert`, which trusts the
        primary's validation instead of re-running every constraint
        probe; everything else takes the applier's validating replay,
        where divergence (a record the primary committed but this
        state rejects) raises :class:`RecoveryError` and the replica
        loop treats it as fatal.
        """
        applier = self._applier
        if applier is None:
            raise RecoveryError("not a replica (already promoted?)")
        db = self.db
        sink = self.span_sink
        schema_before = db.schema
        applied = self.applied_lsn
        for shipped in records:
            record = dict(shipped)
            # Shipped records may carry the originating span context
            # (stamped by the primary's ``repl_poll``); strip it before
            # redo so the replica re-logs the exact primary payload.
            ctx = record.pop("span_ctx", None)
            span = None
            if ctx is not None and sink is not None:
                decoded = decode_context(ctx)
                if decoded is not None and decoded[2]:
                    span = sink.start_span(
                        "replica-apply",
                        trace_id=decoded[0],
                        parent_id=decoded[1],
                        kind="repl",
                        lsn=record.get("lsn"),
                        op=record.get("op"),
                    )
            self._activate_span(span)
            try:
                lsn = record.get("lsn", 0)
                if record.get("op") == "insert" and not applier.in_txn:
                    try:
                        db.redo_insert(record)
                    except (ConstraintViolationError, KeyError) as exc:
                        raise RecoveryError(
                            f"logged record lsn={lsn} was rejected on "
                            f"replay: {exc}"
                        ) from exc
                    applier.max_lsn = max(applier.max_lsn, lsn)
                    applier.report.records_replayed += 1
                    db.stats.wal_replayed_records += 1
                else:
                    applier.feed(record)
            finally:
                self._activate_span(None)
                if span is not None:
                    sink.export(span.end())
            if lsn > applied:
                applied = lsn
        self.applied_lsn = applied
        if db.schema is not schema_before:
            # A shipped merge record evolved the schema (the applier
            # replays it through apply_merge_online).
            self._refresh_schema_caches()
        self.db.sync_wal()
        self.repl_applied += len(records)
        self.primary_durable_lsn = max(self.primary_durable_lsn, durable_lsn)
        if self.metrics is not None and records:
            self.metrics.repl_applied.inc(len(records))

    def _check_shard(self, verb: str, frame: Mapping[str, Any]) -> None:
        """Reject single-shard requests whose primary key this worker
        does not own (:class:`WrongShardError` names the owner).

        Malformed parameters are left alone -- the normal decode path
        produces the right ``bad-request``/``not-found`` answer, and a
        row the engine would reject is rejected identically on every
        worker.
        """
        shard = self.shard
        if shard is None or shard.n_shards <= 1:
            return
        me, n = shard.worker_id, shard.n_shards
        if verb == "insert":
            owner = self._owner_of_row(frame.get("scheme"), frame.get("row"), n)
        elif verb in ("update", "delete", "get"):
            pk = frame.get("pk")
            if not isinstance(frame.get("scheme"), str) or not isinstance(
                pk, list
            ):
                return
            owner = shard_of(frame["scheme"], pk, n)
            if verb == "update" and owner == me:
                owner = self._owner_after_update(
                    frame["scheme"], pk, frame.get("updates"), n
                )
        elif verb == "insert_many":
            scheme = frame.get("scheme")
            rows = frame.get("rows")
            if not isinstance(rows, list):
                return
            for row in rows:
                owner = self._owner_of_row(scheme, row, n)
                if owner is not None and owner != me:
                    raise WrongShardError(owner)
            return
        elif verb in ("apply_batch", "batch_prepare"):
            ops = frame.get("ops")
            if not isinstance(ops, list):
                return
            for op in ops:
                owner = self._owner_of_op(op, n)
                if owner is not None and owner != me:
                    raise WrongShardError(owner)
            return
        else:
            return
        if owner is not None and owner != me:
            raise WrongShardError(owner)

    def _owner_after_update(
        self, scheme: str, pk: Any, updates: Any, n: int
    ) -> int | None:
        """Owning shard of the row an update would produce.  A key
        change that would hash the row onto another worker is rejected
        (rows never migrate between shards; model it as delete +
        insert)."""
        keys = self._key_names.get(scheme)
        if (
            not keys
            or not isinstance(updates, dict)
            or not isinstance(pk, list)
            or len(pk) != len(keys)
            or not any(k in updates for k in keys)
        ):
            return None
        new_pk = [updates.get(k, old) for k, old in zip(keys, pk)]
        return shard_of(scheme, new_pk, n)

    def _owner_of_row(self, scheme: Any, row: Any, n: int) -> int | None:
        if not isinstance(scheme, str) or not isinstance(row, dict):
            return None
        keys = self._key_names.get(scheme)
        if keys is None:
            return None
        try:
            pk_wire = [row[k] for k in keys]
        except KeyError:
            return None  # shape check rejects it identically everywhere
        return shard_of(scheme, pk_wire, n)

    def _owner_of_op(self, op: Any, n: int) -> int | None:
        if not isinstance(op, list) or len(op) < 3:
            return None
        kind, scheme = op[0], op[1]
        if kind == "insert":
            return self._owner_of_row(scheme, op[2], n)
        if kind in ("update", "delete") and isinstance(scheme, str):
            pk = op[2]
            if not isinstance(pk, list):
                pk = [pk]
            owner = shard_of(scheme, pk, n)
            if (
                kind == "update"
                and self.shard is not None
                and owner == self.shard.worker_id
                and len(op) > 3
            ):
                after = self._owner_after_update(scheme, pk, op[3], n)
                if after is not None:
                    return after
            return owner
        return None

    def _topology(self) -> dict[str, Any]:
        schema = self.db.schema
        referencing = {ind.lhs_scheme for ind in schema.inds}
        referenced = {ind.rhs_scheme for ind in schema.inds}
        schemes = {
            s.name: {
                "key": list(s.key_names),
                "refs_out": s.name in referencing,
                "refs_in": s.name in referenced,
            }
            for s in schema.schemes
        }
        shard = self.shard
        if shard is None:
            return {
                "workers": 1,
                "worker_id": 0,
                "host": "",
                "ports": [],
                "shared_port": None,
                "schemes": schemes,
            }
        return {
            "workers": shard.n_shards,
            "worker_id": shard.worker_id,
            "host": shard.host,
            "ports": list(shard.ports),
            "shared_port": shard.shared_port,
            "schemes": schemes,
        }

    # -- reads (inline, snapshot-consistent) ------------------------------

    def _execute_read(
        self, verb: str, frame: Mapping[str, Any], request_id: Any
    ) -> dict[str, Any]:
        try:
            if verb == "get":
                self._check_shard("get", frame)
                t = self.db.get(
                    _require(frame, "scheme", str),
                    decode_pk(_require(frame, "pk", list)),
                )
                return ok_frame(
                    request_id, encode_row(t.mapping) if t else None
                )
            if verb == "topology":
                return ok_frame(request_id, self._topology())
            if verb == "exists":
                scheme = _require(frame, "scheme", str)
                attrs = tuple(_require(frame, "attrs", list))
                value = decode_pk(_require(frame, "value", list))
                self.db.table(scheme)  # unknown scheme -> not-found
                return ok_frame(
                    request_id,
                    {"exists": self.db._referenced_exists(scheme, attrs, value)},
                )
            if verb == "join_to":
                return ok_frame(request_id, self._join_to(frame))
            if verb == "find_referencing":
                return ok_frame(request_id, self._find_referencing(frame))
            if verb == "check":
                from repro.constraints.checker import ConsistencyChecker

                violations = ConsistencyChecker(self.db.schema).violations(
                    self.db.state()
                )
                return ok_frame(
                    request_id,
                    {
                        "consistent": not violations,
                        "violations": [str(v) for v in violations],
                    },
                )
            if verb == "explain":
                return ok_frame(
                    request_id,
                    self.db.explain(
                        _require(frame, "op", str),
                        _require(frame, "scheme", str),
                    ),
                )
            if verb == "advise":
                from repro.advisor import advise as advise_db

                strategy = frame.get("strategy")
                if strategy is not None and not isinstance(strategy, str):
                    raise ProtocolError(
                        "parameter 'strategy' must be a string"
                    )
                return ok_frame(
                    request_id, advise_db(self.db, strategy=strategy)
                )
            if verb == "metrics":
                return ok_frame(request_id, self.render_metrics())
            if verb == "stats":
                snap = self.db.stats.snapshot()
                snap["server"] = self.server_stats()
                return ok_frame(request_id, snap)
            if verb == "spans":
                limit = frame.get("limit")
                if limit is not None and (
                    not isinstance(limit, int) or limit < 1
                ):
                    raise ProtocolError(
                        "parameter 'limit' must be a positive integer"
                    )
                sink = self.span_sink
                if sink is None:
                    return ok_frame(
                        request_id,
                        {
                            "spans": [],
                            "depth": 0,
                            "dropped": 0,
                            "exported": 0,
                            "sample": None,
                        },
                    )
                return ok_frame(
                    request_id,
                    {
                        "spans": sink.recent(limit),
                        "depth": sink.depth,
                        "dropped": sink.dropped,
                        "exported": sink.exported,
                        "sample": sink.sample,
                    },
                )
            raise ProtocolError(f"unhandled read verb {verb!r}")
        except WrongShardError as exc:
            return error_frame(
                request_id, "wrong-shard", str(exc), worker=exc.worker
            )
        except ProtocolError as exc:
            return error_frame(request_id, "bad-request", str(exc))
        except KeyError as exc:
            return error_frame(request_id, "not-found", str(exc))
        except ValueError as exc:
            return error_frame(request_id, "bad-request", str(exc))
        except Exception as exc:  # a read must never kill the connection
            return error_frame(request_id, "server-error", repr(exc))

    def render_metrics(self) -> str:
        """The full Prometheus text exposition: the engine's counters
        and latency histograms followed by the server-layer registry
        (the body of the ``metrics`` verb and the ``/metrics`` HTTP
        endpoint)."""
        text = self.db.stats.to_prometheus()
        if self.metrics is not None:
            text += self.metrics.registry.render()
        return text

    def server_stats(self) -> dict[str, Any]:
        """Live server-layer state for the ``stats`` verb: request and
        queue gauges plus (when enabled) the metric registry's JSON
        snapshot -- what ``python -m repro monitor`` polls."""
        out: dict[str, Any] = {
            "requests_served": self.requests_served,
            "connections": self.connections,
            "inflight": self.inflight,
            "queue_depth": self._queue.qsize(),
            "uptime_s": round(time() - self.started_at, 3),
            "poisoned": self.poisoned,
            "prepares": {
                "held": self._held_xid is not None,
                "prepared": self.prepares,
                "committed": self.prepare_commits,
                "aborted": self.prepare_aborts,
                "expired": self.prepare_expired,
            },
            "replication": {
                "role": self.role,
                "primary": self.primary,
                "replicas": len(self._replicas),
                "shipped": self.repl_shipped,
                "applied": self.repl_applied,
                "applied_lsn": self.applied_lsn,
                "lag": self.replication_lag(),
            },
        }
        if self.shard is not None:
            out["shard"] = {
                "worker_id": self.shard.worker_id,
                "workers": self.shard.n_shards,
            }
        if self.span_sink is not None:
            out["spans"] = {
                "depth": self.span_sink.depth,
                "dropped": self.span_sink.dropped,
                "exported": self.span_sink.exported,
                "sample": self.span_sink.sample,
            }
        if self.metrics is not None:
            out["metrics"] = self.metrics.registry.snapshot()
        return out

    def wal_size_bytes(self) -> int:
        """On-disk WAL size for the process gauge (0 when the WAL is
        memory-backed, detached, or unreadable)."""
        wal = self.db.wal
        if wal is None:
            return 0
        try:
            return int(wal.storage.size())
        except Exception:
            return 0

    def _source_row(self, frame: Mapping[str, Any]):
        scheme = _require(frame, "scheme", str)
        pk = decode_pk(_require(frame, "pk", list))
        t = self.db.get(scheme, pk)
        if t is None:
            raise KeyError(f"{scheme}: no row with key {pk!r}")
        return t

    def _join_to(self, frame: Mapping[str, Any]):
        source = self._source_row(frame)
        target_attrs = frame.get("target_attrs")
        if target_attrs is not None and not isinstance(target_attrs, list):
            raise ProtocolError("parameter 'target_attrs' must be a list")
        t = self.query.join_to(
            source,
            _require(frame, "via", list),
            _require(frame, "target_scheme", str),
            target_attrs,
        )
        return encode_row(t.mapping) if t else None

    def _find_referencing(self, frame: Mapping[str, Any]):
        target = self._source_row(frame)
        rows = self.query.find_referencing(
            target,
            _require(frame, "source_scheme", str),
            _require(frame, "via", list),
            _require(frame, "target_attrs", list),
        )
        return [encode_row(t.mapping) for t in rows]

    # -- the single-writer group-commit pipeline ---------------------------

    async def _write_loop(self) -> None:
        """Pop mutation batches off the queue forever (until sentinel).

        ``batch_prepare`` items never join a group: the writer handles
        each solo (:meth:`_run_prepare`), holding the open transaction
        until the router's decision arrives, so no other mutation can
        interleave with a half-decided cross-shard batch.
        """
        loop = asyncio.get_running_loop()
        while True:
            if self._deferred is not None:
                item, self._deferred = self._deferred, None
            else:
                item = await self._queue.get()
            if item is None:
                return
            if item[0] == "batch_prepare":
                await self._run_prepare(item)
                continue
            batch = [item]
            stop_after = False
            deadline = loop.time() + self.max_delay
            while len(batch) < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    # Wait only for plausible stragglers: mutations
                    # already submitted, or other connections that may
                    # be mid-request.  When the batch already covers
                    # them all, waiting cannot grow it -- commit
                    # immediately.
                    remaining = deadline - loop.time()
                    # Parked replication polls hold connections open
                    # but never submit mutations -- they are not
                    # stragglers worth waiting for.
                    peers = self.connections - len(self._repl_sessions)
                    expected = max(self.inflight, peers)
                    if expected <= len(batch) or remaining <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                if nxt is None:
                    stop_after = True
                    break
                if nxt[0] == "batch_prepare":
                    self._deferred = nxt  # solo, after this group commits
                    break
                batch.append(nxt)
            self._commit_group(batch)
            if stop_after:
                return

    async def _run_prepare(self, item: tuple) -> None:
        """Phase one of a sharded batch, run solo by the writer.

        Applies the ops in an open engine transaction, acks the prepare
        with the requirements only other shards can answer, then parks
        on the decision queue until ``batch_commit``/``batch_abort``
        arrives (or :attr:`prepare_timeout` expires, which aborts).  The
        commit path ends with the same :meth:`Database.sync_wal`
        durability barrier as a group commit -- results are never acked
        before the batch is durable.  The prepare itself is volatile:
        its WAL bracket has no commit marker until the decision, so a
        crash while holding aborts it on recovery.
        """
        _verb, frame, request_id, trace_id, span, future = item
        if self.poisoned is not None:
            self._ack_mutation(future, self._poisoned_frame(request_id))
            return
        if self._correlator is not None:
            self._correlator.trace_id = trace_id
        if span is not None:
            self._export_queue_wait(span)
        apply_span = (
            span.child("prepare", kind="engine") if span is not None else None
        )
        self._activate_span(apply_span)
        lsn_before = self.db.wal.next_lsn if self.db.wal is not None else 0
        prepared = None
        try:
            xid = _require(frame, "xid", str)
            self._check_shard("batch_prepare", frame)
            ops = _decode_batch_ops(_require(frame, "ops", list))
            prepared = self.db.apply_batch_prepare(ops)
        except ConstraintViolationError as exc:
            self._ack_mutation(future, violation_frame(request_id, exc))
        except WrongShardError as exc:
            self._ack_mutation(
                future,
                error_frame(
                    request_id, "wrong-shard", str(exc), worker=exc.worker
                ),
            )
        except ProtocolError as exc:
            self._ack_mutation(
                future, error_frame(request_id, "bad-request", str(exc))
            )
        except KeyError as exc:
            self._ack_mutation(
                future, error_frame(request_id, "not-found", str(exc))
            )
        except WalError as exc:
            self.poisoned = str(exc)
            self._ack_mutation(
                future, error_frame(request_id, "wal-error", str(exc))
            )
        except ValueError as exc:
            self._ack_mutation(
                future, error_frame(request_id, "bad-request", str(exc))
            )
        except Exception as exc:
            self._ack_mutation(
                future, error_frame(request_id, "server-error", repr(exc))
            )
        finally:
            self._activate_span(None)
            if apply_span is not None:
                self.span_sink.export(
                    apply_span.end(None if prepared is not None else "error")
                )
            if self._correlator is not None:
                self._correlator.trace_id = None
        if prepared is None:
            return
        self.prepares += 1
        self._held_xid = xid
        requirements = [
            {
                "kind": r["kind"],
                "scheme": r["scheme"],
                "attrs": r["attrs"],
                "value": encode_pk(tuple(r["value"])),
                "constraint": r["constraint"],
                **(
                    {
                        "child_scheme": r["child_scheme"],
                        "child_attrs": r["child_attrs"],
                    }
                    if r["kind"] == "restrict"
                    else {}
                ),
            }
            for r in prepared.requirements
        ]
        self._ack_mutation(
            future,
            ok_frame(request_id, {"xid": xid, "requirements": requirements}),
        )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.prepare_timeout
        try:
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    raise asyncio.TimeoutError
                (
                    dxid,
                    commit,
                    dfuture,
                    drequest_id,
                    dspan,
                ) = await asyncio.wait_for(self._decisions.get(), remaining)
                if dxid == "__drain__":
                    prepared.abort()
                    self.prepare_aborts += 1
                    self._observe_prepare("aborted")
                    return
                if dxid != xid:
                    # A stale decision (its hold already resolved).
                    if dfuture is not None and not dfuture.done():
                        dfuture.set_result(
                            error_frame(
                                drequest_id,
                                "no-prepared-batch",
                                f"no prepared batch {dxid!r} is held here",
                            )
                        )
                    continue
                break
        except asyncio.TimeoutError:
            prepared.abort()
            self.prepare_expired += 1
            self._expired_xids.append(xid)
            self._observe_prepare("expired")
            return
        finally:
            self._held_xid = None
        if not commit:
            prepared.abort()
            self.prepare_aborts += 1
            self._observe_prepare("aborted")
            if not dfuture.done():
                dfuture.set_result(ok_frame(drequest_id, None))
            return
        commit_parent = dspan if dspan is not None else span
        commit_span = (
            commit_parent.child("group-commit", kind="wal", xid=xid)
            if commit_parent is not None
            else None
        )
        if self._correlator is not None:
            # The decision's durability barrier belongs to this
            # prepare's trace, same as a group commit's (PR 10).
            self._correlator.trace_id = trace_id
        self._activate_span(commit_span)
        try:
            results = prepared.commit()
            self.db.sync_wal()
        except (WalError, OSError) as exc:
            self.poisoned = str(exc)
            outcome = self._poisoned_frame(drequest_id)
        except Exception as exc:
            outcome = error_frame(drequest_id, "server-error", repr(exc))
        else:
            self.prepare_commits += 1
            self._observe_prepare("committed")
            outcome = ok_frame(
                drequest_id,
                [
                    encode_row(t.mapping) if t is not None else None
                    for t in results
                ],
            )
            if self.db.wal is not None:
                outcome["lsn"] = self.db.wal.next_lsn - 1
                if span is not None:
                    ctx = span.context()
                    for lsn in range(lsn_before, self.db.wal.next_lsn):
                        self._remember_span_ctx(lsn, ctx)
                self._signal_commit()
        finally:
            self._activate_span(None)
            if self._correlator is not None:
                self._correlator.trace_id = None
            if commit_span is not None:
                self.span_sink.export(
                    commit_span.end(
                        None if self.poisoned is None else "wal-error"
                    )
                )
        if (
            outcome.get("ok")
            and self.db.wal is not None
            and self._replicas
            and not self._draining
        ):
            # Same semi-sync gate as a group commit: the decision ack
            # implies replica receipt.
            await self._await_replication(self.db.wal.durable_lsn)
        if not dfuture.done():
            dfuture.set_result(outcome)

    def _observe_prepare(self, outcome: str) -> None:
        if self.metrics is not None:
            self.metrics.prepares.labels(outcome=outcome).inc()

    def _ack_mutation(self, future: asyncio.Future, outcome: dict) -> None:
        """Resolve one queued mutation's future (inflight bookkeeping
        included -- every queued item must pass through exactly one
        ack)."""
        self.inflight -= 1
        if not future.done():
            future.set_result(outcome)

    def _activate_span(self, span: Span | None) -> None:
        """Route bridged engine events to ``span`` (``None`` detaches).

        When the tracer pipeline exists only for the span sink, the
        engine tracer is attached exactly while a sampled span is
        active -- everything here runs on the one event-loop thread, so
        the swap cannot race -- and unsampled requests never pay for
        trace-event construction.
        """
        self._active_span = span
        if self._span_only_tracing:
            self.db.set_tracer(
                self._correlator if span is not None else None
            )

    def _export_queue_wait(self, span: Span) -> None:
        """Export a back-dated ``queue-wait`` child covering the time a
        mutation sat on the writer's queue (server-span open to writer
        pickup -- the handler does no meaningful work in between)."""
        waited = perf_counter() - span._t0
        child = span.child("queue-wait", kind="server")
        child.start_s -= waited
        child._t0 -= waited
        self.span_sink.export(child.end())

    def _remember_span_ctx(self, lsn: int, ctx: str) -> None:
        """Map a committed WAL record's lsn to the span context that
        produced it, bounded so an idle replica can't leak memory (a
        trailing replica misses stamps, never records)."""
        self._span_ctx_by_lsn[lsn] = ctx
        while len(self._span_ctx_by_lsn) > 4096:
            self._span_ctx_by_lsn.pop(next(iter(self._span_ctx_by_lsn)))

    def _commit_group(self, batch: list[tuple]) -> None:
        """Apply one batch, issue the group-commit barrier, then ack.

        Runs synchronously (no awaits): the whole group is one
        scheduling step, so reads interleave between groups, never
        inside one.
        """
        outcomes: list[dict | None] = []
        for verb, frame, request_id, trace_id, span, _future in batch:
            if self.poisoned is not None:
                outcomes.append(self._poisoned_frame(request_id))
                continue
            if self._correlator is not None:
                self._correlator.trace_id = trace_id
            if span is not None:
                self._export_queue_wait(span)
            apply_span = (
                span.child("apply", kind="engine", verb=verb)
                if span is not None
                else None
            )
            self._activate_span(apply_span)
            lsn_before = (
                self.db.wal.next_lsn if self.db.wal is not None else 0
            )
            try:
                result = self._execute_mutation(verb, frame)
            except ConstraintViolationError as exc:
                outcomes.append(violation_frame(request_id, exc))
            except WrongShardError as exc:
                outcomes.append(
                    error_frame(
                        request_id, "wrong-shard", str(exc), worker=exc.worker
                    )
                )
            except ProtocolError as exc:
                outcomes.append(
                    error_frame(request_id, "bad-request", str(exc))
                )
            except KeyError as exc:
                outcomes.append(error_frame(request_id, "not-found", str(exc)))
            except WalError as exc:
                self.poisoned = str(exc)
                outcomes.append(
                    error_frame(request_id, "wal-error", str(exc))
                )
            except ValueError as exc:
                outcomes.append(
                    error_frame(request_id, "bad-request", str(exc))
                )
            except Exception as exc:
                outcomes.append(
                    error_frame(request_id, "server-error", repr(exc))
                )
            else:
                outcome = ok_frame(request_id, result)
                if self.db.wal is not None:
                    # The lsn of the mutation's last log record -- the
                    # client's read-your-writes watermark (a replica is
                    # caught up with this write once its applied_lsn
                    # reaches it).
                    outcome["lsn"] = self.db.wal.next_lsn - 1
                    if span is not None:
                        ctx = span.context()
                        for lsn in range(
                            lsn_before, self.db.wal.next_lsn
                        ):
                            self._remember_span_ctx(lsn, ctx)
                outcomes.append(outcome)
            finally:
                self._activate_span(None)
                if apply_span is not None:
                    last = outcomes[-1] if outcomes else None
                    status = None
                    if isinstance(last, dict) and not last.get("ok"):
                        status = str(
                            (last.get("error") or {}).get("type", "error")
                        )
                    self.span_sink.export(apply_span.end(status))
                # Clear before the next item (the barrier below is
                # re-stamped with the batch's leading trace id).
                if self._correlator is not None:
                    self._correlator.trace_id = None
        if self.poisoned is None:
            # The barrier covers the whole batch; attribute its trace
            # event to the batch's leading request (PR 5 left barrier
            # events unstamped) and hang its span under the first
            # sampled request's server span.
            batch_trace_id = next(
                (t for _, _, _, t, _, _ in batch if t is not None), None
            )
            span_parent = next(
                (s for _, _, _, _, s, _ in batch if s is not None), None
            )
            group_span = (
                span_parent.child("group-commit", kind="wal", batch=len(batch))
                if span_parent is not None
                else None
            )
            if group_span is not None and len(batch) > 1:
                group_span.attributes["trace_ids"] = [
                    t for _, _, _, t, _, _ in batch if t is not None
                ]
            if self._correlator is not None:
                self._correlator.trace_id = batch_trace_id
            self._activate_span(group_span)
            sync_started = perf_counter()
            try:
                self.db.sync_wal()
            except (WalError, OSError) as exc:
                # Nothing in this group is durable: poison the service
                # and turn every would-be ack into a wal-error frame.
                self.poisoned = str(exc)
                outcomes = [
                    self._poisoned_frame(request_id)
                    if outcome is not None and outcome.get("ok")
                    else outcome
                    for outcome, (_, _, request_id, _, _, _) in zip(
                        outcomes, batch
                    )
                ]
            else:
                if self.metrics is not None:
                    self.metrics.wal_sync_seconds.observe(
                        perf_counter() - sync_started
                    )
                # Wake parked replica polls: new durable records exist.
                self._signal_commit()
            finally:
                self._activate_span(None)
                if self._correlator is not None:
                    self._correlator.trace_id = None
                if group_span is not None:
                    self.span_sink.export(
                        group_span.end(
                            None if self.poisoned is None else "wal-error"
                        )
                    )
        if self.metrics is not None:
            self.metrics.batch_size.observe(len(batch))
        acked_lsn = (
            self.db.wal.durable_lsn
            if self.db.wal is not None and self.poisoned is None
            else 0
        )
        for _ in batch:
            self.inflight -= 1
        if self._replicas and acked_lsn and not self._draining:
            # Semi-synchronous shipping: the batch is durable here, but
            # acks wait until every sync replica confirms receipt --
            # otherwise a primary-host loss could lose acked records.
            asyncio.ensure_future(
                self._resolve_after_confirm(batch, outcomes, acked_lsn)
            )
            return
        for (_, _, _, _, _, future), outcome in zip(batch, outcomes):
            if not future.done():
                future.set_result(outcome)

    def _poisoned_frame(self, request_id: Any) -> dict[str, Any]:
        return error_frame(
            request_id,
            "wal-error",
            "write-ahead log is poisoned by an earlier storage fault "
            f"({self.poisoned}); restart the server through recovery",
        )

    def _execute_mutation(self, verb: str, frame: Mapping[str, Any]) -> Any:
        self._check_shard(verb, frame)
        if verb == "insert":
            t = self.db.insert(
                _require(frame, "scheme", str),
                decode_row(_require(frame, "row", dict)),
            )
            return encode_row(t.mapping)
        if verb == "update":
            t = self.db.update(
                _require(frame, "scheme", str),
                decode_pk(_require(frame, "pk", list)),
                decode_row(_require(frame, "updates", dict)),
            )
            return encode_row(t.mapping)
        if verb == "delete":
            self.db.delete(
                _require(frame, "scheme", str),
                decode_pk(_require(frame, "pk", list)),
            )
            return None
        if verb == "insert_many":
            raw_rows = _require(frame, "rows", list)
            if not all(isinstance(r, dict) for r in raw_rows):
                raise ProtocolError("every element of 'rows' must be a row")
            stored = self.db.insert_many(
                _require(frame, "scheme", str),
                [decode_row(r) for r in raw_rows],
            )
            return [encode_row(t.mapping) for t in stored]
        if verb == "apply_batch":
            results = self.db.apply_batch(
                _decode_batch_ops(_require(frame, "ops", list))
            )
            return [
                encode_row(t.mapping) if t is not None else None
                for t in results
            ]
        if verb == "apply_merge":
            return self._apply_merge(frame)
        raise ProtocolError(f"unhandled mutation verb {verb!r}")

    def _apply_merge(self, frame: Mapping[str, Any]) -> dict[str, Any]:
        """Execute one online merge on the single-writer path.

        Runs inside :meth:`_commit_group`, so every concurrent read
        observes either the old schema or the fully-merged one -- the
        group-commit loop *is* the quiesce point.  With no ``members``
        the advisor picks the best-scoring admissible family from the
        live mined counters.
        """
        if self.shard is not None and self.shard.n_shards > 1:
            raise ProtocolError(
                "apply_merge is not supported on a sharded fleet: the "
                "merged relation would span shard ownership; merge "
                "offline and re-shard instead"
            )
        members = frame.get("members")
        if members is None:
            from repro.advisor import advise as advise_db

            strategy = frame.get("strategy")
            if strategy is not None and not isinstance(strategy, str):
                raise ProtocolError("parameter 'strategy' must be a string")
            report = advise_db(self.db, strategy=strategy)
            recommendation = report.get("recommendation")
            if recommendation is None:
                raise ProtocolError(
                    "advisor has no recommendation: no admissible family "
                    "pays for itself on the observed workload"
                )
            members = recommendation["members"]
            key_relation = recommendation["key_relation"]
            merged_name = None
        else:
            if not isinstance(members, list) or not all(
                isinstance(m, str) for m in members
            ):
                raise ProtocolError(
                    "parameter 'members' must be a list of scheme names"
                )
            key_relation = frame.get("key_relation")
            merged_name = frame.get("merged_name")
        simplified = self.db.apply_merge_online(
            members, key_relation=key_relation, merged_name=merged_name
        )
        self._refresh_schema_caches()
        return {
            "merged_name": simplified.info.merged_name,
            "members": list(simplified.info.family),
            "key_relation": simplified.info.key_relation,
            "removed": [list(r.attrs) for r in simplified.removed],
            "schemes": list(self.db.schema.scheme_names),
        }

    def _refresh_schema_caches(self) -> None:
        """Rebuild schema-derived caches after an online merge swapped
        ``db.schema`` (the query engine's IND maps refresh themselves)."""
        self._key_names = {
            s.name: s.key_names for s in self.db.schema.schemes
        }
