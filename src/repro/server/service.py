"""Sessions, verb dispatch, and the single-writer transaction manager.

One :class:`DatabaseService` multiplexes every connection over one
:class:`~repro.engine.database.Database`:

* **Reads** (``get``/``join_to``/``find_referencing``/``check``/
  ``explain``/``metrics``/``stats``) execute inline in the connection's
  coroutine.  The event loop is single-threaded and the handlers never
  await while touching the database, so a read always sees a consistent
  snapshot between mutations; ``Database.scan``'s version guard would
  turn any future violation of that invariant into a loud
  ``RuntimeError`` rather than a silently torn read.

* **Mutations** (``insert``/``update``/``delete``/``insert_many``/
  ``apply_batch``) are funneled through a bounded queue to a single
  writer task -- the serialization point that makes "the server is the
  sole enforcer" true under concurrency.  The queue bound is the
  backpressure mechanism: when writers outrun the engine, connection
  handlers block on ``put`` (and stop reading their sockets) instead of
  buffering unboundedly.

* **Group commit**: the writer drains up to ``max_batch`` queued
  mutations (waiting at most ``max_delay`` seconds for stragglers after
  the first), applies them one by one -- each validated, WAL-appended
  *unflushed*, and stored -- then issues one
  :meth:`~repro.engine.database.Database.sync_wal` barrier and only then
  acknowledges the whole batch.  Concurrent writers' records thus share
  a single flush/fsync instead of paying one each; the
  ``wal_group_commits`` / ``wal_batched_records`` counters report the
  achieved batching factor.  A client is never acked before its record
  is durable, so a crash loses only unacknowledged mutations.

If the sync barrier itself fails, the log is poisoned (the WAL module's
standing discipline): every mutation in the batch -- and every later
one -- is answered with a ``wal-error`` frame, and the process must be
restarted through :meth:`Database.recover`, which drops whatever the
log cannot prove committed.
"""

from __future__ import annotations

import asyncio
import uuid
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Mapping

from repro.engine.database import ConstraintViolationError, Database
from repro.engine.query import QueryEngine
from repro.engine.wal import WalError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import CorrelatingTracer
from repro.server import protocol
from repro.server.protocol import (
    DECISION_VERBS,
    MUTATION_VERBS,
    VERBS,
    ProtocolError,
    decode_pk,
    decode_row,
    encode_pk,
    encode_row,
    error_frame,
    ok_frame,
    violation_frame,
)
from repro.server.router import shard_of


class WrongShardError(Exception):
    """A single-shard request landed on a worker that does not own its
    primary key; the error frame carries the owning worker index so a
    router-less client can still find its way."""

    def __init__(self, worker: int):
        super().__init__(f"row belongs to worker {worker}")
        self.worker = worker


@dataclass
class ShardInfo:
    """This worker's place in a sharded fleet (``None`` on a plain
    single-process server): its index, the fleet size, and where every
    worker listens -- what the ``topology`` verb reports."""

    worker_id: int = 0
    n_shards: int = 1
    host: str = "127.0.0.1"
    ports: list[int] = field(default_factory=list)
    shared_port: int | None = None


@dataclass
class Session:
    """One client connection's state and counters."""

    id: int
    peer: str = ""
    requests: int = 0
    mutations: int = 0
    rejections: int = 0
    opened_at: float = field(default_factory=perf_counter)


def _require(frame: Mapping[str, Any], key: str, kind: type) -> Any:
    """A typed parameter, or :class:`ProtocolError` naming what's wrong."""
    try:
        value = frame[key]
    except KeyError:
        raise ProtocolError(f"missing parameter {key!r}") from None
    if not isinstance(value, kind):
        raise ProtocolError(
            f"parameter {key!r} must be {kind.__name__}, not "
            f"{type(value).__name__}"
        )
    return value


def _decode_batch_ops(raw_ops: list) -> list[tuple]:
    """Wire-form ``apply_batch`` op arrays as engine op tuples."""
    ops: list[tuple] = []
    for i, raw in enumerate(raw_ops):
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(f"ops[{i}] must be a non-empty array")
        kind = raw[0]
        if kind == "insert" and len(raw) == 3 and isinstance(raw[2], dict):
            ops.append(("insert", raw[1], decode_row(raw[2])))
        elif (
            kind == "update"
            and len(raw) == 4
            and isinstance(raw[2], list)
            and isinstance(raw[3], dict)
        ):
            ops.append(
                ("update", raw[1], decode_pk(raw[2]), decode_row(raw[3]))
            )
        elif kind == "delete" and len(raw) == 3 and isinstance(raw[2], list):
            ops.append(("delete", raw[1], decode_pk(raw[2])))
        else:
            raise ProtocolError(
                f"ops[{i}] is not a valid insert/update/delete op array"
            )
    return ops


class ServerMetrics:
    """The server-layer metric families, on one shared registry.

    Counters and histograms are recorded by the request path; the three
    gauges are callback-backed, reading the live quantity (connections,
    in-flight mutations, queue depth) at scrape time so they can never
    drift.  The registry renders after the engine's own exposition in
    :meth:`DatabaseService.render_metrics` and snapshots into the
    ``stats`` verb's ``server.metrics`` key.
    """

    def __init__(self, service: "DatabaseService"):
        self.registry = MetricsRegistry()
        r = self.registry
        self.requests = r.counter(
            "repro_server_requests_total",
            "Requests handled, by verb (unknown verbs count as 'invalid').",
            labelnames=("verb",),
        )
        self.request_seconds = r.histogram(
            "repro_server_request_seconds",
            "End-to-end request latency by verb, queueing and group "
            "commit included.",
            labelnames=("verb",),
        )
        self.errors = r.counter(
            "repro_server_errors_total",
            "Error frames returned, by error type.",
            labelnames=("type",),
        )
        self.violations = r.counter(
            "repro_server_violations_total",
            "Constraint-violation rejections, by constraint kind and "
            "paper rule.",
            labelnames=("kind", "rule"),
        )
        self.sessions = r.counter(
            "repro_server_sessions_total", "Client sessions accepted."
        )
        self.rejected_connections = r.counter(
            "repro_server_rejected_connections_total",
            "Connections refused (overloaded or draining).",
        )
        connections = r.gauge(
            "repro_server_connections", "Open client connections."
        )
        connections.set_callback(lambda: service.connections)
        inflight = r.gauge(
            "repro_server_inflight_mutations",
            "Mutations submitted but not yet acknowledged.",
        )
        inflight.set_callback(lambda: service.inflight)
        depth = r.gauge(
            "repro_server_queue_depth",
            "Mutations queued for the single writer.",
        )
        depth.set_callback(lambda: service._queue.qsize())
        self.batch_size = r.histogram(
            "repro_server_commit_batch_size",
            "Mutations covered by one group-commit barrier.",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
        )
        self.wal_sync_seconds = r.histogram(
            "repro_server_wal_sync_seconds",
            "Latency of the group-commit WAL sync barrier.",
        )
        self.prepares = r.counter(
            "repro_server_prepares_total",
            "Cross-shard batch prepares, by final outcome "
            "(committed / aborted / expired).",
            labelnames=("outcome",),
        )


class DatabaseService:
    """Verb dispatch plus the single-writer group-commit pipeline."""

    def __init__(
        self,
        db: Database,
        max_batch: int = 64,
        max_delay: float = 0.002,
        queue_depth: int = 1024,
        metrics: bool = True,
        shard: ShardInfo | None = None,
        prepare_timeout: float = 30.0,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.db = db
        self.query = QueryEngine(db)
        self.max_batch = max_batch
        self.max_delay = max_delay
        #: This worker's place in a sharded fleet; ``None`` disables
        #: shard ownership enforcement and makes ``topology`` report a
        #: one-worker world.
        self.shard = shard
        #: How long the writer holds a prepared batch awaiting its
        #: commit/abort decision before aborting it unilaterally.
        self.prepare_timeout = prepare_timeout
        self._key_names: dict[str, tuple[str, ...]] = {
            s.name: s.key_names for s in db.schema.schemes
        }
        #: Why the WAL is unusable (``None`` = healthy).  Set on the
        #: first storage fault; every later mutation gets a
        #: ``wal-error`` frame until the process crash-recovers.
        self.poisoned: str | None = None
        self.requests_served = 0
        #: Mutations submitted whose future is not yet resolved.  The
        #: writer uses this to distinguish "everyone who wants into this
        #: group is already in it -- commit now" from "a straggler is
        #: mid-submission -- wait up to ``max_delay`` for it", so the
        #: delay is only ever paid when it can actually grow a batch.
        self.inflight = 0
        #: Open connections (maintained by the server's accept loop).
        #: The writer treats every connection as a potential straggler:
        #: under a write-heavy load it waits up to ``max_delay`` for
        #:  them to join the group, which is what turns near-simultaneous
        #: arrivals into one barrier instead of many.  Read-heavy
        #: deployments should run with ``max_delay=0``.
        self.connections = 0
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self._writer: asyncio.Task | None = None
        self._stopping = False
        #: Commit/abort decisions for a held prepare, routed around the
        #: mutation queue (the writer is parked on this queue while it
        #: holds one).
        self._decisions: asyncio.Queue = asyncio.Queue()
        #: A ``batch_prepare`` item pulled out of a forming group; the
        #: writer handles it solo on its next iteration.
        self._deferred: tuple | None = None
        #: The transfer id of the currently held prepare (``None`` when
        #: no prepare is in flight) and the last few ids whose holds
        #: timed out, so a late decision gets ``prepare-expired`` rather
        #: than the generic ``no-prepared-batch``.
        self._held_xid: str | None = None
        self._expired_xids: deque[str] = deque(maxlen=8)
        self.prepares = 0
        self.prepare_commits = 0
        self.prepare_aborts = 0
        self.prepare_expired = 0
        #: Server-layer metric families (``None`` disables the registry
        #: entirely -- the configuration ``bench_server --metrics``
        #: compares against).
        self.metrics: ServerMetrics | None = (
            ServerMetrics(self) if metrics else None
        )
        #: Stamps each request's trace id onto the engine's trace
        #: events; ``None`` when the database has no tracer attached.
        self._correlator: CorrelatingTracer | None = None
        if db.tracer is not None:
            self._correlator = CorrelatingTracer(db.tracer)
            db.set_tracer(self._correlator)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Spawn the single writer task."""
        if self._writer is None:
            self._writer = asyncio.ensure_future(self._write_loop())

    async def stop(self) -> None:
        """Drain the mutation queue and stop the writer.

        The caller (the server's drain path) guarantees no handler will
        enqueue after this: the sentinel is FIFO-ordered behind every
        already-queued mutation, so in-flight work completes first.
        """
        if self._writer is None:
            return
        self._stopping = True
        # A held prepare parks the writer on the decision queue; the
        # drain decision aborts it so the sentinel below can be reached.
        self._decisions.put_nowait(("__drain__", False, None, None))
        await self._queue.put(None)
        await self._writer
        self._writer = None

    # -- request dispatch ------------------------------------------------

    async def handle(
        self, session: Session, frame: Mapping[str, Any]
    ) -> dict[str, Any]:
        """One request frame in, one response frame out (never raises).

        Every response echoes a ``trace_id`` -- the client's, when the
        request carried one, otherwise a server-generated id -- and the
        same id is stamped onto every engine :class:`TraceEvent` the
        request causes (via the :class:`CorrelatingTracer`), so one
        grep of a JSONL trace sink reconstructs the decision path.
        """
        request_id = frame.get("id")
        verb = frame.get("verb")
        session.requests += 1
        self.requests_served += 1
        started = perf_counter()
        trace_id = frame.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            response = error_frame(
                request_id, "bad-request", "parameter 'trace_id' must be a string"
            )
            return self._finish(session, "invalid", None, started, response)
        if trace_id is None:
            trace_id = uuid.uuid4().hex[:16]
        if not isinstance(verb, str) or verb not in VERBS:
            response = error_frame(
                request_id,
                "bad-request",
                f"unknown verb {verb!r}; expected one of {', '.join(VERBS)}",
            )
            return self._finish(session, "invalid", trace_id, started, response)
        if verb in DECISION_VERBS:
            session.mutations += 1
            response = await self._handle_decision(verb, frame, request_id)
            return self._finish(session, verb, trace_id, started, response)
        if verb in MUTATION_VERBS:
            session.mutations += 1
            if self._stopping:
                response = error_frame(
                    request_id,
                    "shutting-down",
                    "server is draining; no further mutations accepted",
                )
                return self._finish(session, verb, trace_id, started, response)
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self.inflight += 1
            try:
                await self._queue.put(
                    (verb, frame, request_id, trace_id, future)
                )
            except BaseException:
                self.inflight -= 1
                raise
            response = await future
        else:
            if self._correlator is not None:
                self._correlator.trace_id = trace_id
            try:
                response = self._execute_read(verb, frame, request_id)
            finally:
                if self._correlator is not None:
                    self._correlator.trace_id = None
        return self._finish(session, verb, trace_id, started, response)

    def _finish(
        self,
        session: Session,
        verb: str,
        trace_id: str | None,
        started: float,
        response: dict[str, Any],
    ) -> dict[str, Any]:
        """Common response tail: echo the trace id (top-level and inside
        the error object, so client exceptions carry it), bump the
        session counters, and record the request metrics."""
        if trace_id is not None:
            response["trace_id"] = trace_id
            error = response.get("error")
            if isinstance(error, dict):
                error.setdefault("trace_id", trace_id)
        if not response.get("ok"):
            session.rejections += 1
        if self.metrics is not None:
            self.metrics.requests.labels(verb=verb).inc()
            self.metrics.request_seconds.labels(verb=verb).observe(
                perf_counter() - started
            )
            error = response.get("error")
            if isinstance(error, dict):
                self.metrics.errors.labels(
                    type=error.get("type", "server-error")
                ).inc()
                if error.get("type") == "constraint-violation":
                    self.metrics.violations.labels(
                        kind=error.get("kind", ""),
                        rule=error.get("rule", ""),
                    ).inc()
        return response

    # -- sharding ----------------------------------------------------------

    async def _handle_decision(
        self, verb: str, frame: Mapping[str, Any], request_id: Any
    ) -> dict[str, Any]:
        """Route a ``batch_commit``/``batch_abort`` to the writer
        holding the named prepare (decisions skip the mutation queue --
        the writer is parked on the decision queue, not draining
        mutations, while it holds one)."""
        xid = frame.get("xid")
        if not isinstance(xid, str):
            return error_frame(
                request_id, "bad-request", "parameter 'xid' must be a string"
            )
        if self._held_xid != xid:
            if xid in self._expired_xids:
                return error_frame(
                    request_id,
                    "prepare-expired",
                    f"prepared batch {xid!r} timed out and was aborted",
                )
            return error_frame(
                request_id,
                "no-prepared-batch",
                f"no prepared batch {xid!r} is held here",
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._decisions.put_nowait(
            (xid, verb == "batch_commit", future, request_id)
        )
        return await future

    def _check_shard(self, verb: str, frame: Mapping[str, Any]) -> None:
        """Reject single-shard requests whose primary key this worker
        does not own (:class:`WrongShardError` names the owner).

        Malformed parameters are left alone -- the normal decode path
        produces the right ``bad-request``/``not-found`` answer, and a
        row the engine would reject is rejected identically on every
        worker.
        """
        shard = self.shard
        if shard is None or shard.n_shards <= 1:
            return
        me, n = shard.worker_id, shard.n_shards
        if verb == "insert":
            owner = self._owner_of_row(frame.get("scheme"), frame.get("row"), n)
        elif verb in ("update", "delete", "get"):
            pk = frame.get("pk")
            if not isinstance(frame.get("scheme"), str) or not isinstance(
                pk, list
            ):
                return
            owner = shard_of(frame["scheme"], pk, n)
            if verb == "update" and owner == me:
                owner = self._owner_after_update(
                    frame["scheme"], pk, frame.get("updates"), n
                )
        elif verb == "insert_many":
            scheme = frame.get("scheme")
            rows = frame.get("rows")
            if not isinstance(rows, list):
                return
            for row in rows:
                owner = self._owner_of_row(scheme, row, n)
                if owner is not None and owner != me:
                    raise WrongShardError(owner)
            return
        elif verb in ("apply_batch", "batch_prepare"):
            ops = frame.get("ops")
            if not isinstance(ops, list):
                return
            for op in ops:
                owner = self._owner_of_op(op, n)
                if owner is not None and owner != me:
                    raise WrongShardError(owner)
            return
        else:
            return
        if owner is not None and owner != me:
            raise WrongShardError(owner)

    def _owner_after_update(
        self, scheme: str, pk: Any, updates: Any, n: int
    ) -> int | None:
        """Owning shard of the row an update would produce.  A key
        change that would hash the row onto another worker is rejected
        (rows never migrate between shards; model it as delete +
        insert)."""
        keys = self._key_names.get(scheme)
        if (
            not keys
            or not isinstance(updates, dict)
            or not isinstance(pk, list)
            or len(pk) != len(keys)
            or not any(k in updates for k in keys)
        ):
            return None
        new_pk = [updates.get(k, old) for k, old in zip(keys, pk)]
        return shard_of(scheme, new_pk, n)

    def _owner_of_row(self, scheme: Any, row: Any, n: int) -> int | None:
        if not isinstance(scheme, str) or not isinstance(row, dict):
            return None
        keys = self._key_names.get(scheme)
        if keys is None:
            return None
        try:
            pk_wire = [row[k] for k in keys]
        except KeyError:
            return None  # shape check rejects it identically everywhere
        return shard_of(scheme, pk_wire, n)

    def _owner_of_op(self, op: Any, n: int) -> int | None:
        if not isinstance(op, list) or len(op) < 3:
            return None
        kind, scheme = op[0], op[1]
        if kind == "insert":
            return self._owner_of_row(scheme, op[2], n)
        if kind in ("update", "delete") and isinstance(scheme, str):
            pk = op[2]
            if not isinstance(pk, list):
                pk = [pk]
            owner = shard_of(scheme, pk, n)
            if (
                kind == "update"
                and self.shard is not None
                and owner == self.shard.worker_id
                and len(op) > 3
            ):
                after = self._owner_after_update(scheme, pk, op[3], n)
                if after is not None:
                    return after
            return owner
        return None

    def _topology(self) -> dict[str, Any]:
        schema = self.db.schema
        referencing = {ind.lhs_scheme for ind in schema.inds}
        referenced = {ind.rhs_scheme for ind in schema.inds}
        schemes = {
            s.name: {
                "key": list(s.key_names),
                "refs_out": s.name in referencing,
                "refs_in": s.name in referenced,
            }
            for s in schema.schemes
        }
        shard = self.shard
        if shard is None:
            return {
                "workers": 1,
                "worker_id": 0,
                "host": "",
                "ports": [],
                "shared_port": None,
                "schemes": schemes,
            }
        return {
            "workers": shard.n_shards,
            "worker_id": shard.worker_id,
            "host": shard.host,
            "ports": list(shard.ports),
            "shared_port": shard.shared_port,
            "schemes": schemes,
        }

    # -- reads (inline, snapshot-consistent) ------------------------------

    def _execute_read(
        self, verb: str, frame: Mapping[str, Any], request_id: Any
    ) -> dict[str, Any]:
        try:
            if verb == "get":
                self._check_shard("get", frame)
                t = self.db.get(
                    _require(frame, "scheme", str),
                    decode_pk(_require(frame, "pk", list)),
                )
                return ok_frame(
                    request_id, encode_row(t.mapping) if t else None
                )
            if verb == "topology":
                return ok_frame(request_id, self._topology())
            if verb == "exists":
                scheme = _require(frame, "scheme", str)
                attrs = tuple(_require(frame, "attrs", list))
                value = decode_pk(_require(frame, "value", list))
                self.db.table(scheme)  # unknown scheme -> not-found
                return ok_frame(
                    request_id,
                    {"exists": self.db._referenced_exists(scheme, attrs, value)},
                )
            if verb == "join_to":
                return ok_frame(request_id, self._join_to(frame))
            if verb == "find_referencing":
                return ok_frame(request_id, self._find_referencing(frame))
            if verb == "check":
                from repro.constraints.checker import ConsistencyChecker

                violations = ConsistencyChecker(self.db.schema).violations(
                    self.db.state()
                )
                return ok_frame(
                    request_id,
                    {
                        "consistent": not violations,
                        "violations": [str(v) for v in violations],
                    },
                )
            if verb == "explain":
                return ok_frame(
                    request_id,
                    self.db.explain(
                        _require(frame, "op", str),
                        _require(frame, "scheme", str),
                    ),
                )
            if verb == "metrics":
                return ok_frame(request_id, self.render_metrics())
            if verb == "stats":
                snap = self.db.stats.snapshot()
                snap["server"] = self.server_stats()
                return ok_frame(request_id, snap)
            raise ProtocolError(f"unhandled read verb {verb!r}")
        except WrongShardError as exc:
            return error_frame(
                request_id, "wrong-shard", str(exc), worker=exc.worker
            )
        except ProtocolError as exc:
            return error_frame(request_id, "bad-request", str(exc))
        except KeyError as exc:
            return error_frame(request_id, "not-found", str(exc))
        except ValueError as exc:
            return error_frame(request_id, "bad-request", str(exc))
        except Exception as exc:  # a read must never kill the connection
            return error_frame(request_id, "server-error", repr(exc))

    def render_metrics(self) -> str:
        """The full Prometheus text exposition: the engine's counters
        and latency histograms followed by the server-layer registry
        (the body of the ``metrics`` verb and the ``/metrics`` HTTP
        endpoint)."""
        text = self.db.stats.to_prometheus()
        if self.metrics is not None:
            text += self.metrics.registry.render()
        return text

    def server_stats(self) -> dict[str, Any]:
        """Live server-layer state for the ``stats`` verb: request and
        queue gauges plus (when enabled) the metric registry's JSON
        snapshot -- what ``python -m repro monitor`` polls."""
        out: dict[str, Any] = {
            "requests_served": self.requests_served,
            "connections": self.connections,
            "inflight": self.inflight,
            "queue_depth": self._queue.qsize(),
            "poisoned": self.poisoned,
            "prepares": {
                "held": self._held_xid is not None,
                "prepared": self.prepares,
                "committed": self.prepare_commits,
                "aborted": self.prepare_aborts,
                "expired": self.prepare_expired,
            },
        }
        if self.shard is not None:
            out["shard"] = {
                "worker_id": self.shard.worker_id,
                "workers": self.shard.n_shards,
            }
        if self.metrics is not None:
            out["metrics"] = self.metrics.registry.snapshot()
        return out

    def _source_row(self, frame: Mapping[str, Any]):
        scheme = _require(frame, "scheme", str)
        pk = decode_pk(_require(frame, "pk", list))
        t = self.db.get(scheme, pk)
        if t is None:
            raise KeyError(f"{scheme}: no row with key {pk!r}")
        return t

    def _join_to(self, frame: Mapping[str, Any]):
        source = self._source_row(frame)
        target_attrs = frame.get("target_attrs")
        if target_attrs is not None and not isinstance(target_attrs, list):
            raise ProtocolError("parameter 'target_attrs' must be a list")
        t = self.query.join_to(
            source,
            _require(frame, "via", list),
            _require(frame, "target_scheme", str),
            target_attrs,
        )
        return encode_row(t.mapping) if t else None

    def _find_referencing(self, frame: Mapping[str, Any]):
        target = self._source_row(frame)
        rows = self.query.find_referencing(
            target,
            _require(frame, "source_scheme", str),
            _require(frame, "via", list),
            _require(frame, "target_attrs", list),
        )
        return [encode_row(t.mapping) for t in rows]

    # -- the single-writer group-commit pipeline ---------------------------

    async def _write_loop(self) -> None:
        """Pop mutation batches off the queue forever (until sentinel).

        ``batch_prepare`` items never join a group: the writer handles
        each solo (:meth:`_run_prepare`), holding the open transaction
        until the router's decision arrives, so no other mutation can
        interleave with a half-decided cross-shard batch.
        """
        loop = asyncio.get_running_loop()
        while True:
            if self._deferred is not None:
                item, self._deferred = self._deferred, None
            else:
                item = await self._queue.get()
            if item is None:
                return
            if item[0] == "batch_prepare":
                await self._run_prepare(item)
                continue
            batch = [item]
            stop_after = False
            deadline = loop.time() + self.max_delay
            while len(batch) < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    # Wait only for plausible stragglers: mutations
                    # already submitted, or other connections that may
                    # be mid-request.  When the batch already covers
                    # them all, waiting cannot grow it -- commit
                    # immediately.
                    remaining = deadline - loop.time()
                    expected = max(self.inflight, self.connections)
                    if expected <= len(batch) or remaining <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                if nxt is None:
                    stop_after = True
                    break
                if nxt[0] == "batch_prepare":
                    self._deferred = nxt  # solo, after this group commits
                    break
                batch.append(nxt)
            self._commit_group(batch)
            if stop_after:
                return

    async def _run_prepare(self, item: tuple) -> None:
        """Phase one of a sharded batch, run solo by the writer.

        Applies the ops in an open engine transaction, acks the prepare
        with the requirements only other shards can answer, then parks
        on the decision queue until ``batch_commit``/``batch_abort``
        arrives (or :attr:`prepare_timeout` expires, which aborts).  The
        commit path ends with the same :meth:`Database.sync_wal`
        durability barrier as a group commit -- results are never acked
        before the batch is durable.  The prepare itself is volatile:
        its WAL bracket has no commit marker until the decision, so a
        crash while holding aborts it on recovery.
        """
        _verb, frame, request_id, trace_id, future = item
        if self.poisoned is not None:
            self._ack_mutation(future, self._poisoned_frame(request_id))
            return
        if self._correlator is not None:
            self._correlator.trace_id = trace_id
        prepared = None
        try:
            xid = _require(frame, "xid", str)
            self._check_shard("batch_prepare", frame)
            ops = _decode_batch_ops(_require(frame, "ops", list))
            prepared = self.db.apply_batch_prepare(ops)
        except ConstraintViolationError as exc:
            self._ack_mutation(future, violation_frame(request_id, exc))
        except WrongShardError as exc:
            self._ack_mutation(
                future,
                error_frame(
                    request_id, "wrong-shard", str(exc), worker=exc.worker
                ),
            )
        except ProtocolError as exc:
            self._ack_mutation(
                future, error_frame(request_id, "bad-request", str(exc))
            )
        except KeyError as exc:
            self._ack_mutation(
                future, error_frame(request_id, "not-found", str(exc))
            )
        except WalError as exc:
            self.poisoned = str(exc)
            self._ack_mutation(
                future, error_frame(request_id, "wal-error", str(exc))
            )
        except ValueError as exc:
            self._ack_mutation(
                future, error_frame(request_id, "bad-request", str(exc))
            )
        except Exception as exc:
            self._ack_mutation(
                future, error_frame(request_id, "server-error", repr(exc))
            )
        finally:
            if self._correlator is not None:
                self._correlator.trace_id = None
        if prepared is None:
            return
        self.prepares += 1
        self._held_xid = xid
        requirements = [
            {
                "kind": r["kind"],
                "scheme": r["scheme"],
                "attrs": r["attrs"],
                "value": encode_pk(tuple(r["value"])),
                "constraint": r["constraint"],
                **(
                    {
                        "child_scheme": r["child_scheme"],
                        "child_attrs": r["child_attrs"],
                    }
                    if r["kind"] == "restrict"
                    else {}
                ),
            }
            for r in prepared.requirements
        ]
        self._ack_mutation(
            future,
            ok_frame(request_id, {"xid": xid, "requirements": requirements}),
        )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.prepare_timeout
        try:
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    raise asyncio.TimeoutError
                dxid, commit, dfuture, drequest_id = await asyncio.wait_for(
                    self._decisions.get(), remaining
                )
                if dxid == "__drain__":
                    prepared.abort()
                    self.prepare_aborts += 1
                    self._observe_prepare("aborted")
                    return
                if dxid != xid:
                    # A stale decision (its hold already resolved).
                    if dfuture is not None and not dfuture.done():
                        dfuture.set_result(
                            error_frame(
                                drequest_id,
                                "no-prepared-batch",
                                f"no prepared batch {dxid!r} is held here",
                            )
                        )
                    continue
                break
        except asyncio.TimeoutError:
            prepared.abort()
            self.prepare_expired += 1
            self._expired_xids.append(xid)
            self._observe_prepare("expired")
            return
        finally:
            self._held_xid = None
        if not commit:
            prepared.abort()
            self.prepare_aborts += 1
            self._observe_prepare("aborted")
            if not dfuture.done():
                dfuture.set_result(ok_frame(drequest_id, None))
            return
        try:
            results = prepared.commit()
            self.db.sync_wal()
        except (WalError, OSError) as exc:
            self.poisoned = str(exc)
            outcome = self._poisoned_frame(drequest_id)
        except Exception as exc:
            outcome = error_frame(drequest_id, "server-error", repr(exc))
        else:
            self.prepare_commits += 1
            self._observe_prepare("committed")
            outcome = ok_frame(
                drequest_id,
                [
                    encode_row(t.mapping) if t is not None else None
                    for t in results
                ],
            )
        if not dfuture.done():
            dfuture.set_result(outcome)

    def _observe_prepare(self, outcome: str) -> None:
        if self.metrics is not None:
            self.metrics.prepares.labels(outcome=outcome).inc()

    def _ack_mutation(self, future: asyncio.Future, outcome: dict) -> None:
        """Resolve one queued mutation's future (inflight bookkeeping
        included -- every queued item must pass through exactly one
        ack)."""
        self.inflight -= 1
        if not future.done():
            future.set_result(outcome)

    def _commit_group(self, batch: list[tuple]) -> None:
        """Apply one batch, issue the group-commit barrier, then ack.

        Runs synchronously (no awaits): the whole group is one
        scheduling step, so reads interleave between groups, never
        inside one.
        """
        outcomes: list[dict | None] = []
        for verb, frame, request_id, trace_id, _future in batch:
            if self.poisoned is not None:
                outcomes.append(self._poisoned_frame(request_id))
                continue
            if self._correlator is not None:
                self._correlator.trace_id = trace_id
            try:
                result = self._execute_mutation(verb, frame)
            except ConstraintViolationError as exc:
                outcomes.append(violation_frame(request_id, exc))
            except WrongShardError as exc:
                outcomes.append(
                    error_frame(
                        request_id, "wrong-shard", str(exc), worker=exc.worker
                    )
                )
            except ProtocolError as exc:
                outcomes.append(
                    error_frame(request_id, "bad-request", str(exc))
                )
            except KeyError as exc:
                outcomes.append(error_frame(request_id, "not-found", str(exc)))
            except WalError as exc:
                self.poisoned = str(exc)
                outcomes.append(
                    error_frame(request_id, "wal-error", str(exc))
                )
            except ValueError as exc:
                outcomes.append(
                    error_frame(request_id, "bad-request", str(exc))
                )
            except Exception as exc:
                outcomes.append(
                    error_frame(request_id, "server-error", repr(exc))
                )
            else:
                outcomes.append(ok_frame(request_id, result))
            finally:
                # Clear before the next item -- and before the barrier,
                # so the group-commit trace event (which covers the
                # whole batch) is never attributed to one request.
                if self._correlator is not None:
                    self._correlator.trace_id = None
        if self.poisoned is None:
            sync_started = perf_counter()
            try:
                self.db.sync_wal()
            except (WalError, OSError) as exc:
                # Nothing in this group is durable: poison the service
                # and turn every would-be ack into a wal-error frame.
                self.poisoned = str(exc)
                outcomes = [
                    self._poisoned_frame(request_id)
                    if outcome is not None and outcome.get("ok")
                    else outcome
                    for outcome, (_, _, request_id, _, _) in zip(
                        outcomes, batch
                    )
                ]
            else:
                if self.metrics is not None:
                    self.metrics.wal_sync_seconds.observe(
                        perf_counter() - sync_started
                    )
        if self.metrics is not None:
            self.metrics.batch_size.observe(len(batch))
        for (_, _, _, _, future), outcome in zip(batch, outcomes):
            self.inflight -= 1
            if not future.done():
                future.set_result(outcome)

    def _poisoned_frame(self, request_id: Any) -> dict[str, Any]:
        return error_frame(
            request_id,
            "wal-error",
            "write-ahead log is poisoned by an earlier storage fault "
            f"({self.poisoned}); restart the server through recovery",
        )

    def _execute_mutation(self, verb: str, frame: Mapping[str, Any]) -> Any:
        self._check_shard(verb, frame)
        if verb == "insert":
            t = self.db.insert(
                _require(frame, "scheme", str),
                decode_row(_require(frame, "row", dict)),
            )
            return encode_row(t.mapping)
        if verb == "update":
            t = self.db.update(
                _require(frame, "scheme", str),
                decode_pk(_require(frame, "pk", list)),
                decode_row(_require(frame, "updates", dict)),
            )
            return encode_row(t.mapping)
        if verb == "delete":
            self.db.delete(
                _require(frame, "scheme", str),
                decode_pk(_require(frame, "pk", list)),
            )
            return None
        if verb == "insert_many":
            raw_rows = _require(frame, "rows", list)
            if not all(isinstance(r, dict) for r in raw_rows):
                raise ProtocolError("every element of 'rows' must be a row")
            stored = self.db.insert_many(
                _require(frame, "scheme", str),
                [decode_row(r) for r in raw_rows],
            )
            return [encode_row(t.mapping) for t in stored]
        if verb == "apply_batch":
            results = self.db.apply_batch(
                _decode_batch_ops(_require(frame, "ops", list))
            )
            return [
                encode_row(t.mapping) if t is not None else None
                for t in results
            ]
        raise ProtocolError(f"unhandled mutation verb {verb!r}")
