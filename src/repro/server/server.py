"""The asyncio accept loop: connection limits, backpressure, drain.

:class:`ReproServer` owns one :class:`~repro.server.service.DatabaseService`
and speaks the JSON-lines protocol to any number of clients.  Each
connection is one coroutine reading frames off its socket; flow control
is end-to-end: a handler does not read the next request until the
previous response is written (``writer.drain()``), and mutations block
on the service's bounded queue, so a flood of writers slows clients
down instead of growing server memory.

Graceful drain (``SIGTERM`` under ``python -m repro serve``, or
:meth:`ReproServer.drain`) follows the sequence the paper's durability
story requires: stop accepting connections, let every in-flight request
finish and be acknowledged, flush the mutation queue through the final
group commit, checkpoint the write-ahead log, and close it.  Idle
connections are closed immediately; a connection mid-request gets its
response first.

:class:`ServerThread` hosts a server on a private event loop in a
background thread -- the harness both the test suite and
``benchmarks/bench_server.py`` use, since the repository's toolchain has
no async test runner.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import socket
import sys
import threading
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.engine.recovery import RecoveryError
from repro.engine.wal import WalError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    RemoteError,
    decode_frame,
    encode_frame,
    error_frame,
    raise_error,
    request_frame,
)
from repro.obs.spans import SpanSink
from repro.server.service import DatabaseService, Session, ShardInfo


@dataclass
class ServerConfig:
    """Tunables for one server instance."""

    host: str = "127.0.0.1"
    #: Port to bind; 0 asks the OS for a free one (read the bound port
    #: back from :attr:`ReproServer.port`).
    port: int = 0
    #: Connections beyond this are answered with an ``overloaded``
    #: error frame and closed.
    max_connections: int = 64
    #: Most mutations one group commit may cover.
    max_batch: int = 64
    #: Longest the writer waits (seconds) for stragglers to join a
    #: group after its first mutation arrives.  0 = commit whatever is
    #: already queued, never wait.
    max_delay: float = 0.002
    #: Bound on queued-but-uncommitted mutations (the backpressure
    #: threshold).
    queue_depth: int = 1024
    #: Compact the WAL into a snapshot as part of graceful drain.
    checkpoint_on_drain: bool = True
    #: Record server-layer metrics (the :class:`ServerMetrics`
    #: registry).  Off is the baseline configuration
    #: ``bench_server --metrics`` measures overhead against.
    metrics: bool = True
    #: Port for the sidecar HTTP endpoint serving ``/metrics``,
    #: ``/healthz`` and ``/readyz``; 0 asks the OS for a free one
    #: (read it back from :attr:`ReproServer.metrics_port`), ``None``
    #: disables the listener.
    metrics_port: int | None = None
    #: Already-bound listening sockets to serve on instead of binding
    #: ``host:port`` -- how a supervisor worker serves its own direct
    #: port plus the fleet's shared port from parent-bound, fd-passed
    #: sockets (:mod:`repro.server.supervisor`).  The first socket's
    #: port is reported as :attr:`ReproServer.port`.
    sockets: list[socket.socket] = field(default_factory=list)
    #: This worker's place in a sharded fleet; ``None`` on a plain
    #: single-process server.
    shard: ShardInfo | None = None
    #: How long the writer holds a cross-shard prepare before aborting
    #: it unilaterally.
    prepare_timeout: float = 30.0
    #: ``host:port`` of a primary to replicate from.  Set, the server
    #: starts as a read-only replica: it snapshots the primary, tails
    #: its WAL over the normal protocol, and serves consistent reads
    #: until the ``promote`` verb turns it into a primary.  See
    #: ``docs/REPLICATION.md``.
    replicate_from: str | None = None
    #: Long-poll hold (seconds) of each ``repl_poll`` when the replica
    #: is caught up -- the idle heartbeat cadence.
    repl_poll_wait: float = 10.0
    #: Primary side: how long a mutation ack may wait on synchronous
    #: replica receipt before stalled replicas are detached.
    repl_ack_timeout: float = 5.0
    #: JSONL file finished spans are exported to (``repro trace`` reads
    #: these); ``None`` disables span tracing entirely.  See
    #: :mod:`repro.obs.spans` and docs/OBSERVABILITY.md.
    span_sink: str | None = None
    #: Head-sampling rate in [0, 1] for traces *rooted* at this
    #: process; requests arriving with a span context follow the
    #: context's sampled flag instead.
    span_sample: float = 1.0
    #: Spans the sink's ring buffer holds for the ``spans`` verb.
    span_capacity: int = 2048
    #: Dump an ASCII waterfall to stderr for any request whose server
    #: span runs at least this many milliseconds (requires
    #: ``span_sink``; ``None`` disables the slow-request log).
    slow_ms: float | None = None
    #: Process label stamped on exported spans (defaults to ``w<id>``
    #: for fleet workers, ``replica`` for replicas, else ``server``).
    span_process: str | None = None


class ReproServer:
    """One database served to many JSON-lines TCP clients."""

    def __init__(self, db: Database, config: ServerConfig | None = None):
        self.db = db
        self.config = config or ServerConfig()
        #: This process's span sink (``None`` unless configured); owned
        #: here -- closed at the end of drain, after the final spans.
        self.span_sink: SpanSink | None = None
        if self.config.span_sink is not None:
            process = self.config.span_process
            if process is None:
                if self.config.shard is not None:
                    process = f"w{self.config.shard.worker_id}"
                    if self.config.replicate_from:
                        process += "-replica"
                elif self.config.replicate_from:
                    process = "replica"
                else:
                    process = "server"
            self.span_sink = SpanSink(
                path=self.config.span_sink,
                capacity=self.config.span_capacity,
                sample=self.config.span_sample,
                process=process,
            )
        self.service = DatabaseService(
            db,
            max_batch=self.config.max_batch,
            max_delay=self.config.max_delay,
            queue_depth=self.config.queue_depth,
            metrics=self.config.metrics,
            shard=self.config.shard,
            prepare_timeout=self.config.prepare_timeout,
            role="replica" if self.config.replicate_from else "primary",
            primary=self.config.replicate_from,
            repl_ack_timeout=self.config.repl_ack_timeout,
            span_sink=self.span_sink,
            slow_ms=self.config.slow_ms,
        )
        #: The WAL-tailing task (replicas only).
        self._replica_task: asyncio.Task | None = None
        self.host = self.config.host
        self.port: int | None = None
        #: Bound port of the sidecar metrics endpoint (``None`` until
        #: started, or when :attr:`ServerConfig.metrics_port` is unset).
        self.metrics_port: int | None = None
        self.sessions_opened = 0
        self.rejected_connections = 0
        #: True once startup (including WAL recovery, done before
        #: construction) is complete and the listener is bound -- the
        #: ``/readyz`` signal.
        self._ready = False
        self._metrics_server: asyncio.base_events.Server | None = None
        #: Error (if any) raised while checkpointing/closing the WAL
        #: during drain; drain itself never raises.
        self.drain_error: Exception | None = None
        self._servers: list[asyncio.base_events.Server] = []
        self._connections: set[asyncio.Task] = set()
        self._draining = asyncio.Event()
        self._drained = asyncio.Event()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the listeners and start the writer task."""
        await self.service.start()
        if self.config.sockets:
            # Parent-bound, fd-passed listeners (the supervisor's
            # workers): one direct socket for routed traffic, plus the
            # fleet-shared socket every worker accepts from.
            self._servers = [
                await asyncio.start_server(
                    self._on_client, sock=s, limit=MAX_FRAME_BYTES
                )
                for s in self.config.sockets
            ]
        else:
            self._servers = [
                await asyncio.start_server(
                    self._on_client,
                    self.host,
                    self.config.port,
                    limit=MAX_FRAME_BYTES,
                )
            ]
        self.port = self._servers[0].sockets[0].getsockname()[1]
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._on_metrics_client,
                self.host,
                self.config.metrics_port,
            )
            self.metrics_port = (
                self._metrics_server.sockets[0].getsockname()[1]
            )
        if self.config.replicate_from:
            self.service.on_promote = self._on_promote
            self._replica_task = asyncio.ensure_future(self._replica_loop())
        self._ready = True

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight requests,
        run the final group commit, checkpoint, close the WAL.

        Idempotent; concurrent callers all wait for the one drain.
        """
        if self._draining.is_set():
            await self._drained.wait()
            return
        self._draining.set()
        # Release parked replica polls and deferred semi-sync acks so
        # the connection gather below cannot wait out their timeouts.
        self.service.begin_drain()
        await self._stop_replica_task()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        if self._connections:
            await asyncio.gather(
                *list(self._connections), return_exceptions=True
            )
        await self.service.stop()
        try:
            if self.db.wal is not None:
                if (
                    self.config.checkpoint_on_drain
                    and self.service.poisoned is None
                ):
                    self.db.checkpoint()
                self.db.wal.close()
        except (WalError, OSError) as exc:
            self.drain_error = exc
        # The metrics listener outlives the client listener so a final
        # scrape (and /readyz flipping to 503) is observable during the
        # drain itself; it closes only once the WAL is safe.
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        if self.span_sink is not None:
            self.span_sink.close()
        self._drained.set()

    async def wait_drained(self) -> None:
        """Block until a drain (triggered elsewhere) completes."""
        await self._drained.wait()

    # -- per-connection handler ------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        if (
            len(self._connections) >= self.config.max_connections
            or self._draining.is_set()
        ):
            self.rejected_connections += 1
            if self.service.metrics is not None:
                self.service.metrics.rejected_connections.inc()
            kind = (
                "shutting-down" if self._draining.is_set() else "overloaded"
            )
            with contextlib.suppress(ConnectionError, OSError):
                writer.write(
                    encode_frame(
                        error_frame(None, kind, "connection refused")
                    )
                )
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            return
        self._connections.add(task)
        self.service.connections += 1
        self.sessions_opened += 1
        if self.service.metrics is not None:
            self.service.metrics.sessions.inc()
        peername = writer.get_extra_info("peername")
        session = Session(
            id=self.sessions_opened,
            peer=f"{peername[0]}:{peername[1]}" if peername else "",
        )
        try:
            await self._serve_session(session, reader, writer)
        finally:
            self._connections.discard(task)
            self.service.connections -= 1
            # A vanished replica must stop gating mutation acks.
            self.service.forget_replica(session)
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    async def _serve_session(
        self,
        session: Session,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            line = await self._read_or_drain(reader)
            if line is None:  # drain fired while the connection was idle
                return
            if isinstance(line, dict):  # oversized/broken framing
                writer.write(encode_frame(line))
                await writer.drain()
                return
            if not line:  # EOF: client hung up
                return
            try:
                frame = decode_frame(line)
            except ProtocolError as exc:
                # Framing never resyncs mid-stream; answer and close.
                writer.write(
                    encode_frame(error_frame(None, "bad-request", str(exc)))
                )
                await writer.drain()
                return
            response = await self.service.handle(session, frame)
            writer.write(encode_frame(response))
            await writer.drain()
            if self._draining.is_set():
                return

    # -- the replica loop (WAL tailing; see docs/REPLICATION.md) -----------

    async def _stop_replica_task(self) -> None:
        task, self._replica_task = self._replica_task, None
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task

    async def _on_promote(self) -> None:
        """Service callback after ``promote`` flips the role: stop
        tailing the (dead) primary; this server now accepts writes."""
        await self._stop_replica_task()
        # Operational chatter goes to stderr: an embedding process
        # (the bench harness, a pipeline) owns stdout for its own
        # output, and ``ServerProcess`` merges the two streams anyway.
        print("promoted to primary", file=sys.stderr, flush=True)

    async def _replica_loop(self) -> None:
        """Tail the primary's WAL forever (until drain or promotion).

        Each (re)connection bootstraps with a ``repl_snapshot`` -- the
        local state may predate records a checkpoint on the primary
        already compacted away, so catch-up always starts from a fresh
        base image -- then streams ``repl_poll`` batches.  The poll
        cycle is pipelined for the primary's sake: the *next* poll
        frame (which doubles as the receipt confirmation for the batch
        just read) is written to the socket *before* the batch is
        applied, so the primary's semi-synchronous ack waits one round
        trip, never a replica replay.  Apply itself is synchronous (no
        awaits), so a concurrent ``promote`` can never observe half a
        batch.

        Divergence (a record the primary committed but this state
        rejects) is fatal -- retrying could only promote a wrong state.
        Connection failures retry with capped exponential backoff; the
        replica keeps serving reads from its last-applied state
        throughout.
        """
        assert self.config.replicate_from is not None
        host, _, port_s = self.config.replicate_from.rpartition(":")
        service = self.service
        backoff = 0.2
        while not self._draining.is_set() and service.role == "replica":
            writer = None
            try:
                reader, writer = await asyncio.open_connection(
                    host or "127.0.0.1", int(port_s), limit=MAX_FRAME_BYTES
                )
                rpc_id = 0

                def send(verb: str, **params) -> None:
                    nonlocal rpc_id
                    rpc_id += 1
                    writer.write(
                        encode_frame(request_frame(rpc_id, verb, **params))
                    )

                async def recv() -> dict:
                    line = await reader.readline()
                    if not line:
                        raise ConnectionError(
                            "primary closed the replication connection"
                        )
                    frame = decode_frame(line)
                    if not frame.get("ok"):
                        raise_error(frame)
                    return frame["result"]

                while True:
                    send("repl_snapshot")
                    await writer.drain()
                    try:
                        snapshot = await recv()
                        break
                    except RemoteError as exc:
                        if exc.type != "busy":
                            raise
                        await asyncio.sleep(0.05)
                service.load_replica_snapshot(snapshot)
                after = service.applied_lsn
                print(
                    f"replica caught up to lsn {after} via snapshot",
                    file=sys.stderr,
                    flush=True,
                )
                backoff = 0.2
                wait = self.config.repl_poll_wait
                send("repl_poll", after=after, wait=wait, sync=True)
                await writer.drain()
                while not self._draining.is_set():
                    result = await recv()
                    records = result["records"]
                    if records:
                        after = max(after, records[-1].get("lsn", 0))
                        # Confirm receipt *before* applying: once these
                        # bytes are queued, the replica owns the
                        # records, and the synchronous apply below
                        # finishes before any await could let a
                        # promote (or crash handler) observe a gap.
                        send("repl_poll", after=after, wait=wait, sync=True)
                        service.apply_replicated(
                            records, result["durable_lsn"]
                        )
                        await writer.drain()
                    else:
                        service.primary_durable_lsn = max(
                            service.primary_durable_lsn,
                            result["durable_lsn"],
                        )
                        send("repl_poll", after=after, wait=wait, sync=True)
                        await writer.drain()
            except asyncio.CancelledError:
                raise
            except RecoveryError as exc:
                print(
                    f"replica diverged from primary: {exc}",
                    file=sys.stderr,
                    flush=True,
                )
                raise
            except (
                ConnectionError,
                OSError,
                RemoteError,
                ProtocolError,
                ValueError,
            ) as exc:
                if self._draining.is_set() or service.role != "replica":
                    return
                print(
                    f"replica: primary unreachable ({exc}); retrying in "
                    f"{backoff:.1f}s",
                    file=sys.stderr,
                    flush=True,
                )
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 2.0)
            finally:
                if writer is not None:
                    with contextlib.suppress(ConnectionError, OSError):
                        writer.close()
                        await writer.wait_closed()

    # -- the sidecar metrics endpoint --------------------------------------

    async def _on_metrics_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One scrape: a minimal HTTP/1.0-style exchange (GET/HEAD,
        ``Connection: close``) -- enough for Prometheus, curl, and
        orchestrator probes without an HTTP dependency."""
        try:
            request_line = await reader.readline()
            while True:  # drain request headers up to the blank line
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1].split("?", 1)[0] if len(parts) > 1 else ""
            status, body, ctype = self._http_response(method, path)
            head = method == "HEAD" and status != 405
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
            )
            if not head:
                writer.write(payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # a broken scrape must never disturb the server
        finally:
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    def _http_response(self, method: str, path: str) -> tuple[str, str, str]:
        """``(status line, body, content type)`` for one probe path."""
        text = "text/plain; charset=utf-8"
        if method not in ("GET", "HEAD"):
            return "405 Method Not Allowed", "method not allowed\n", text
        if path == "/metrics":
            return (
                "200 OK",
                self.service.render_metrics(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/healthz":
            # Liveness: the event loop is serving this very request.
            return "200 OK", "ok\n", text
        if path == "/readyz":
            if self._draining.is_set():
                return "503 Service Unavailable", "draining\n", text
            if not self._ready:
                return "503 Service Unavailable", "starting\n", text
            return "200 OK", "ready\n", text
        return "404 Not Found", "not found\n", text

    async def _read_or_drain(self, reader: asyncio.StreamReader):
        """The next request line, ``None`` if drain interrupts the idle
        wait, or an error frame (dict) when framing breaks."""
        read = asyncio.ensure_future(reader.readline())
        drain = asyncio.ensure_future(self._draining.wait())
        try:
            done, _ = await asyncio.wait(
                {read, drain}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            drain.cancel()
        if read not in done:
            read.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await read
            return None
        try:
            return read.result()
        except ValueError:
            # StreamReader's limit tripped: the line exceeds the frame cap.
            return error_frame(
                None,
                "bad-request",
                f"frame exceeds the {MAX_FRAME_BYTES}-byte limit",
            )
        except (ConnectionError, OSError):
            return b""


def drain_summary(server: ReproServer) -> dict:
    """The final telemetry snapshot of a drained server, JSON-ready.

    ``python -m repro serve`` prints this to stderr after a graceful
    drain so scripts can assert on exact counts instead of parsing the
    human-readable ``drained:`` line.
    """
    stats = server.db.stats
    return {
        "event": "drained",
        "sessions": server.sessions_opened,
        "rejected_connections": server.rejected_connections,
        "requests": server.service.requests_served,
        "group_commits": stats.wal_group_commits,
        "batched_records": stats.wal_batched_records,
        "checkpoints": stats.checkpoints,
        "poisoned": server.service.poisoned,
        "engine": stats.snapshot(),
        "server": server.service.server_stats(),
    }


async def serve(
    db: Database,
    config: ServerConfig | None = None,
    *,
    install_signal_handlers: bool = True,
) -> ReproServer:
    """Run a server until drained (the ``python -m repro serve`` body).

    Prints ``listening on <host>:<port>`` once the socket is bound --
    the readiness line scripts and tests wait for -- then ``metrics on
    <host>:<port>`` when the sidecar HTTP endpoint is enabled, and
    installs ``SIGTERM``/``SIGINT`` handlers that trigger a graceful
    drain.
    """
    server = ReproServer(db, config)
    await server.start()
    # Handlers must be live before the readiness line: the supervisor
    # (and scripts) treat that line as "safe to SIGTERM", and a worker
    # descheduled between the print and the installation would die with
    # the default disposition instead of draining.
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(
                    sig,
                    lambda: asyncio.ensure_future(server.drain()),
                )
    print(f"listening on {server.host}:{server.port}", flush=True)
    if server.metrics_port is not None:
        print(f"metrics on {server.host}:{server.metrics_port}", flush=True)
    if server.span_sink is not None:
        print(
            f"spans to {server.config.span_sink} "
            f"(sample {server.span_sink.sample:g})",
            flush=True,
        )
    if server.config.replicate_from:
        print(
            f"replicating from {server.config.replicate_from}", flush=True
        )
    await server.wait_drained()
    return server


class ServerThread:
    """Host a :class:`ReproServer` on a private event loop in a
    background thread.

    For tests and benchmarks: the caller keeps the blocking side of the
    conversation (e.g. :class:`repro.client.Client`) while the server
    runs here.  ``stop()`` performs a full graceful drain.  After
    ``stop()`` returns, the database may be inspected from the calling
    thread -- the server thread has exited, so there is no sharing.
    """

    def __init__(self, db: Database, config: ServerConfig | None = None):
        self.db = db
        self.config = config or ServerConfig()
        self.server: ReproServer | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.metrics_port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: Exception | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "ServerThread":
        """Start the thread and block until the listener is bound
        (re-raising any startup failure here, in the caller)."""
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Drain the server and join the thread."""
        loop, server = self._loop, self.server
        if loop is not None and server is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(server.drain())
            )
        self._thread.join(timeout=60)
        if self._thread.is_alive():
            raise RuntimeError("server thread failed to drain in time")

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:  # surface startup failures to start()
            if self._startup_error is None:
                self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = ReproServer(self.db, self.config)
        try:
            await self.server.start()
        except Exception as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.host, self.port = self.server.host, self.server.port
        self.metrics_port = self.server.metrics_port
        self._ready.set()
        await self.server.wait_drained()
