"""Synthesis normalization (Bernstein [1]), the historical origin of
relation merging.

Given a universe of attributes and a set of functional dependencies, the
algorithm:

1. computes a minimal cover;
2. groups dependencies by left-hand side;
3. **merges groups with equivalent keys** (left-hand sides that determine
   each other) -- this is the merge step Section 1 discusses: TEACH
   (COURSE, FACULTY) and OFFER (COURSE, DEPARTMENT), both keyed by
   COURSE, fuse into ASSIGN (COURSE, FACULTY, DEPARTMENT);
4. emits one relation-scheme per group, adding a key scheme if no group
   contains a candidate key of the universe.

The paper's point is that step 3 is capacity-lossy unless null
constraints are added: ``synthesize`` optionally emits the part-null
constraint the example needs (``with_null_constraints=True``), so the
``synthesis`` benchmark can demonstrate both the defect and the repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.constraints.functional import (
    FunctionalDependency,
    attribute_closure,
    candidate_keys,
    minimal_cover,
)
from repro.constraints.nulls import (
    NullConstraint,
    PartNullConstraint,
    nulls_not_allowed,
)
from repro.relational.attributes import Attribute, Domain
from repro.relational.schema import RelationScheme


@dataclass(frozen=True)
class SynthesisResult:
    """Output of :func:`synthesize`.

    Synthesis produces schemes that *share* attribute names (the
    universal-relation style), so the result holds the schemes and
    constraints directly rather than a :class:`RelationalSchema` (whose
    globally-unique-names invariant belongs to the merging technique's
    schema class).  ``merged_groups`` records which left-hand-side groups
    were fused by the equivalent-keys step -- the capacity-sensitive
    merges the paper's Section 1 example targets.
    """

    schemes: tuple[RelationScheme, ...]
    null_constraints: tuple[NullConstraint, ...]
    merged_groups: tuple[tuple[frozenset[str], ...], ...]

    def scheme(self, name: str) -> RelationScheme:
        """Look up a synthesized scheme by name."""
        for s in self.schemes:
            if s.name == name:
                return s
        raise KeyError(name)


def _group_by_equivalent_lhs(
    cover: Sequence[FunctionalDependency],
) -> list[list[FunctionalDependency]]:
    """Group a minimal cover by equivalent left-hand sides."""
    groups: list[list[FunctionalDependency]] = []
    for fd in cover:
        placed = False
        for group in groups:
            lhs = group[0].lhs
            forward = group[0].rhs and fd.lhs <= attribute_closure(lhs, cover)
            backward = lhs <= attribute_closure(fd.lhs, cover)
            if forward and backward:
                group.append(fd)
                placed = True
                break
        if not placed:
            groups.append([fd])
    return groups


def synthesize(
    attributes: Mapping[str, Domain],
    fds: Sequence[FunctionalDependency],
    with_null_constraints: bool = False,
    scheme_prefix: str = "S",
) -> SynthesisResult:
    """Run synthesis normalization over one universal attribute set.

    ``attributes`` maps attribute names to domains; ``fds`` are stated
    over an implicit universal scheme (their ``scheme_name`` is ignored).
    With ``with_null_constraints`` the schema carries, per merged group,
    the part-null constraint over the fused right-hand sides plus
    nulls-not-allowed keys -- the repair the paper's Section 1 example
    needs for information-capacity equivalence.
    """
    universe = tuple(attributes)
    normalized = [
        FunctionalDependency("U", fd.lhs, fd.rhs) for fd in fds
    ]
    cover = minimal_cover(normalized)
    groups = _group_by_equivalent_lhs(cover)

    schemes: list[RelationScheme] = []
    null_constraints: list[NullConstraint] = []
    merged_groups: list[tuple[frozenset[str], ...]] = []
    covered_key = False

    for i, group in enumerate(groups):
        lhs_variants = tuple(dict.fromkeys(fd.lhs for fd in group))
        key = sorted(lhs_variants[0])
        scheme_attr_names = list(
            dict.fromkeys(
                key
                + sorted(
                    a for fd in group for a in fd.rhs if a not in set(key)
                )
            )
        )
        attrs = tuple(
            Attribute(name, attributes[name]) for name in scheme_attr_names
        )
        key_attrs = tuple(a for a in attrs if a.name in set(key))
        name = f"{scheme_prefix}{i + 1}"
        schemes.append(RelationScheme(name, attrs, key_attrs))
        if len(lhs_variants) > 1 or len(group) > 1:
            merged_groups.append(tuple(fd.rhs for fd in group))
        if with_null_constraints:
            null_constraints.append(
                nulls_not_allowed(name, [a.name for a in key_attrs])
            )
            rhs_groups = tuple(
                frozenset(fd.rhs) for fd in group if fd.rhs - set(key)
            )
            if len(rhs_groups) > 1:
                null_constraints.append(PartNullConstraint(name, rhs_groups))
        if set(universe) <= attribute_closure(key, cover):
            covered_key = True

    if not covered_key:
        keys = candidate_keys(universe, cover)
        key = sorted(sorted(keys, key=sorted)[0]) if keys else list(universe)
        attrs = tuple(Attribute(name, attributes[name]) for name in key)
        name = f"{scheme_prefix}{len(groups) + 1}"
        schemes.append(RelationScheme(name, attrs, attrs))
        if with_null_constraints:
            null_constraints.append(nulls_not_allowed(name, key))

    return SynthesisResult(
        tuple(schemes), tuple(null_constraints), tuple(merged_groups)
    )
