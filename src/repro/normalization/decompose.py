"""Lossless BCNF decomposition -- the converse baseline.

Normalization "tends to increase the number of relations by splitting
unnormalized relations into smaller, normalized, relations" (Section 1).
This module implements the classical split: while some scheme violates
BCNF for a declared dependency ``Y -> Z``, replace it by ``(Y u Z)`` and
``(X - Z)``.  The benchmarks use it to show the two directions of the
design trade-off the paper opens with: decomposition grows scheme counts
(and join work), merging shrinks them (and adds null constraints).
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints.functional import (
    FunctionalDependency,
    attribute_closure,
    candidate_keys,
    is_superkey,
)
from repro.relational.attributes import Attribute
from repro.relational.schema import RelationScheme


def _violating_fd(
    scheme: RelationScheme, fds: Sequence[FunctionalDependency]
) -> FunctionalDependency | None:
    attr_names = set(scheme.attribute_names)
    local = [
        FunctionalDependency(
            scheme.name, fd.lhs & attr_names, fd.rhs & attr_names
        )
        for fd in fds
        if fd.lhs <= attr_names
    ]
    for fd in local:
        if fd.is_trivial() or not fd.rhs:
            continue
        if not is_superkey(fd.lhs, attr_names, local):
            return fd
    return None


def bcnf_decompose(
    scheme: RelationScheme, fds: Sequence[FunctionalDependency]
) -> tuple[RelationScheme, ...]:
    """Losslessly decompose ``scheme`` into BCNF fragments under ``fds``.

    Dependencies are projected onto each fragment by closure; fragment
    names are derived from the parent (``R``, ``R_1``, ``R_2``, ...).
    """
    result: list[RelationScheme] = []
    pending = [scheme]
    counter = 0
    while pending:
        current = pending.pop()
        violation = _violating_fd(current, fds)
        if violation is None:
            result.append(current)
            continue
        attr_names = list(current.attribute_names)
        lhs_closure = attribute_closure(
            violation.lhs,
            [fd for fd in fds if fd.lhs <= set(attr_names)],
        ) & set(attr_names)
        left_names = [a for a in attr_names if a in lhs_closure]
        right_names = [
            a
            for a in attr_names
            if a in violation.lhs or a not in lhs_closure
        ]
        by_name = {a.name: a for a in current.attributes}

        def fragment(names: list[str]) -> RelationScheme:
            nonlocal counter
            counter += 1
            attrs: tuple[Attribute, ...] = tuple(by_name[n] for n in names)
            projected = [
                FunctionalDependency(
                    scheme.name, fd.lhs & set(names), fd.rhs & set(names)
                )
                for fd in fds
                if fd.lhs <= set(names)
            ]
            keys = candidate_keys(tuple(names), projected)
            key_names = (
                sorted(sorted(keys, key=sorted)[0]) if keys else list(names)
            )
            key = tuple(a for a in attrs if a.name in set(key_names))
            return RelationScheme(f"{scheme.name}_{counter}", attrs, key)

        pending.append(fragment(left_names))
        pending.append(fragment(right_names))
    return tuple(sorted(result, key=lambda s: s.name))
