"""Normalization baselines (Section 1).

Relation merging "was first used in synthesis normalization algorithms"
[1]; :mod:`repro.normalization.synthesis` implements a Bernstein-style
synthesis algorithm including its merge-equivalent-keys step, so the
paper's opening example (TEACH/OFFER merged into ASSIGN without null
constraints, losing information capacity) can be reproduced and repaired.
:mod:`repro.normalization.decompose` provides the converse baseline --
lossless BCNF decomposition by splitting.
"""

from repro.normalization.synthesis import SynthesisResult, synthesize
from repro.normalization.decompose import bcnf_decompose

__all__ = ["SynthesisResult", "synthesize", "bcnf_decompose"]
