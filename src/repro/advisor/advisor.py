"""The online merge advisor: mined workload -> ranked merge recommendation.

Ties the three pieces the rest of the package provides into one
decision pipeline:

1. a :class:`~repro.advisor.profile.WorkloadProfile` snapshots the
   engine's mined per-IND join counters and per-scheme mutation rates;
2. a workload-aware :class:`~repro.core.planner.MergePlanner` filters
   candidate families through the Section 5 admissibility conditions
   (Propositions 5.1/5.2, the Figure 8 amenability classes) and ranks
   the admissible ones by observed join traffic saved minus mutation
   overhead added;
3. the winning family's merge executes online through
   :meth:`Database.apply_merge_online` -- one WAL transaction, Merge +
   Remove state mappings, Definition 2.1 re-verification -- so recovery
   lands fully-merged or fully-unmerged, never in between.

Steps 1-2 are pure reads (:func:`advise`); step 3 is the single mutation
(:func:`apply_recommendation`).
"""

from __future__ import annotations

from typing import Mapping

from repro.advisor.profile import WorkloadProfile
from repro.core.planner import MergePlanner, MergeStrategy
from repro.obs.trace import Tracer


#: Strategy the advisor uses unless told otherwise: Proposition 5.1's
#: conditions (key-based referential integrity, non-null merged keys)
#: keep the merged schema enforceable on any DBMS with declarative
#: key-based RI -- the paper's Section 5.1 recommendation.
DEFAULT_STRATEGY = MergeStrategy.KEY_BASED


def resolve_strategy(name: str | MergeStrategy | None) -> MergeStrategy:
    """``None``/name/enum -> :class:`MergeStrategy` (advisor default)."""
    if name is None:
        return DEFAULT_STRATEGY
    if isinstance(name, MergeStrategy):
        return name
    return MergeStrategy(name)


class MergeAdvisor:
    """Recommend (and optionally apply) the best workload-backed merge."""

    def __init__(
        self,
        schema,
        profile: WorkloadProfile,
        strategy: str | MergeStrategy | None = None,
        tracer: Tracer | None = None,
    ):
        self.schema = schema
        self.profile = profile
        self.strategy = resolve_strategy(strategy)
        self.planner = MergePlanner(
            schema, self.strategy, tracer=tracer, workload=profile
        )

    def recommend(self) -> dict:
        """The full advisory report.

        ``recommendation`` is the best-scoring admissible family (or
        ``None`` when no family both passes the Section 5 filter and
        pays for itself on the observed workload); ``families`` carries
        every candidate's verdicts, reasons and observed counts --
        the same EXPLAIN structure ``repro explain --merge`` prints.
        """
        explanation = self.planner.explain()
        by_key = {f["key_relation"]: f for f in explanation["families"]}
        selected = explanation["selected"]
        recommendation = None
        if selected:
            best = by_key[selected[0]]
            recommendation = {
                "key_relation": best["key_relation"],
                "members": list(best["members"]),
                "reason": best["reason"],
                "rule": best["rule"],
                "workload": best.get("workload"),
            }
        return {
            "strategy": self.strategy.value,
            "workload": {
                "joins_observed": self.profile.total_joins,
                "mutations_observed": self.profile.total_mutations,
                "ind_joins": dict(self.profile.ind_joins),
            },
            "families": explanation["families"],
            "selected": selected,
            "recommendation": recommendation,
            "explain_text": self.planner.explain_text(),
        }


def advise(
    db,
    strategy: str | MergeStrategy | None = None,
    tracer: Tracer | None = None,
) -> dict:
    """Advisory report for a live :class:`Database` from its own mined
    counters (a pure read)."""
    advisor = MergeAdvisor(
        db.schema,
        WorkloadProfile.from_stats(db.stats),
        strategy=strategy,
        tracer=tracer if tracer is not None else db.tracer,
    )
    return advisor.recommend()


def advise_snapshot(
    schema,
    snapshot: Mapping,
    strategy: str | MergeStrategy | None = None,
) -> dict:
    """Advisory report from a ``stats`` snapshot dict (for clients that
    only hold the wire-form counters, e.g. the monitor)."""
    advisor = MergeAdvisor(
        schema, WorkloadProfile.from_snapshot(snapshot), strategy=strategy
    )
    return advisor.recommend()


def apply_recommendation(db, report: dict | None = None, strategy=None):
    """Apply the report's recommended merge online; returns the
    :class:`~repro.core.remove.SimplifyResult`.

    Computes a fresh report when none is passed.  Raises ``ValueError``
    when the advisor has nothing to recommend (no admissible family
    pays for itself on the observed workload).
    """
    if report is None:
        report = advise(db, strategy=strategy)
    recommendation = report.get("recommendation")
    if recommendation is None:
        raise ValueError(
            "advisor has no recommendation: no admissible family pays "
            "for itself on the observed workload"
        )
    return db.apply_merge_online(
        recommendation["members"],
        key_relation=recommendation["key_relation"],
    )
