"""Workload profiles: the observed traffic a merge decision weighs.

A profile is a snapshot of the two per-object counter families the
engine mines while serving requests (:class:`repro.engine.stats.EngineStats`):

* ``ind_joins`` -- per inclusion dependency, how many join navigations
  (``join_to`` / ``find_referencing`` probes) traversed it, keyed by the
  IND's string form (``"OFFER[O.C.NR] <= COURSE[C.NR]"``);
* ``scheme_mutations`` -- per relation-scheme, how many rows were
  inserted/updated/deleted.

Scoring a candidate family reads both: every observed traversal of an
IND *internal* to the family (both endpoints are members) would have
been answered by the merged relation without a join -- that is the
benefit the paper's Section 6 measurements quantify -- while every
observed mutation of a member becomes a mutation of the wider merged
relation (more attributes, null constraints to re-check) -- a linear
proxy for the overhead.  The net score is ``joins_saved -
mutation_overhead``; a family only pays for itself when positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.relational.schema import RelationalSchema


@dataclass(frozen=True)
class WorkloadProfile:
    """Observed join/mutation traffic, as mined by the engine."""

    ind_joins: Mapping[str, int] = field(default_factory=dict)
    scheme_mutations: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def from_stats(cls, stats) -> "WorkloadProfile":
        """Profile the live counters of an :class:`EngineStats`."""
        return cls(dict(stats.ind_joins), dict(stats.scheme_mutations))

    @classmethod
    def from_snapshot(cls, snapshot: Mapping) -> "WorkloadProfile":
        """Profile a ``stats``/``server_stats`` snapshot dict."""
        return cls(
            dict(snapshot.get("ind_joins") or {}),
            dict(snapshot.get("scheme_mutations") or {}),
        )

    @property
    def total_joins(self) -> int:
        """All observed IND-backed join navigations."""
        return sum(self.ind_joins.values())

    @property
    def total_mutations(self) -> int:
        """All observed row mutations."""
        return sum(self.scheme_mutations.values())

    def family_ind_counts(
        self, schema: RelationalSchema, members
    ) -> dict[str, int]:
        """Observed traversal count for every IND internal to the family
        (both endpoints are members), including never-traversed ones at
        zero -- the EXPLAIN output cites these verbatim."""
        member_set = set(members)
        return {
            str(ind): self.ind_joins.get(str(ind), 0)
            for ind in schema.inds
            if ind.lhs_scheme in member_set and ind.rhs_scheme in member_set
        }

    def score_family(self, schema: RelationalSchema, members) -> dict:
        """Score one candidate family against the observed workload.

        Returns ``{"observed_ind_joins", "joins_saved",
        "mutation_overhead", "score"}`` where ``score = joins_saved -
        mutation_overhead``.
        """
        counts = self.family_ind_counts(schema, members)
        saved = sum(counts.values())
        overhead = sum(
            self.scheme_mutations.get(m, 0) for m in members
        )
        return {
            "observed_ind_joins": counts,
            "joins_saved": saved,
            "mutation_overhead": overhead,
            "score": saved - overhead,
        }
