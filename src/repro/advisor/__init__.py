"""Workload-driven online merge advisor (Sections 5/6 made live).

The paper's SDT tool decides merges statically, from the schema alone.
This package closes the loop with the running engine: mine the actual
workload (which inclusion dependencies the application joins across,
which schemes it mutates), score every mergeable family's saved join
traffic against its added mutation overhead, filter through the
Section 5 DBMS-compatibility conditions, and apply the winner online
inside one WAL transaction.

* :mod:`repro.advisor.profile` -- :class:`WorkloadProfile`, the mined
  counters and the per-family scoring model;
* :mod:`repro.advisor.advisor` -- :class:`MergeAdvisor` plus the
  :func:`advise` / :func:`apply_recommendation` entry points the server
  verbs and the CLI call.
"""

from repro.advisor.advisor import (
    DEFAULT_STRATEGY,
    MergeAdvisor,
    advise,
    advise_snapshot,
    apply_recommendation,
    resolve_strategy,
)
from repro.advisor.profile import WorkloadProfile

__all__ = [
    "DEFAULT_STRATEGY",
    "MergeAdvisor",
    "WorkloadProfile",
    "advise",
    "advise_snapshot",
    "apply_recommendation",
    "resolve_strategy",
]
