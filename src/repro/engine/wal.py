"""Append-only, checksummed write-ahead log for the storage engine.

Definition 2.1's bijection between consistent states makes durability a
correctness property, not just an operational one: a crash must never
leave the database in a state outside the consistent-state family, and
recovery must restore *exactly* the pre-crash consistent state.  This
module provides the log; :mod:`repro.engine.recovery` provides the
replay and :mod:`repro.engine.faults` the deterministic fault injection
the crash-point test matrix is built on.

Wire format
-----------

The log is a sequence of length-prefixed, CRC-checksummed JSON records,
one per line::

    llllllll cccccccc {"lsn":1,"op":"header","version":1}\\n

where ``llllllll`` is the payload length in bytes (lowercase hex, zero
padded), ``cccccccc`` the payload's ``zlib.crc32`` (same formatting),
and the payload compact JSON with sorted keys.  A record whose payload
is shorter than its declared length (a torn write), fails its checksum,
or has a malformed header ends the readable log: recovery truncates the
file there and never applies a partial record.  ``NULL`` attribute
values use the same ``{"$null": true}`` marker as
:mod:`repro.io.state_json`, so a recovered tuple re-enters the same
null-synchronization/part-null equivalence class it left.

Record kinds (the ``op`` field): ``header``, ``insert``, ``update``,
``delete``, ``load_state``, ``begin``/``commit``/``abort``/``rollback``
(transaction markers) and ``snapshot`` (the checkpoint image, in the
:func:`repro.io.state_json.state_to_dict` format).  Every record
carries a monotonically increasing ``lsn``.

Write-ahead discipline
----------------------

The engine appends a mutation's record *after* constraint validation
but *before* touching any table, so the log never holds a constraint-
violating mutation and the in-memory state never holds a mutation the
log lost.  Mutations outside a transaction are committed the moment
their record is durable; mutations inside one are bracketed by
``begin``/``commit`` markers and are rolled back at recovery when the
``commit`` is missing.  A failed append poisons the log (every later
append raises :class:`WalError`): after a storage fault the process
must crash and recover, exactly like the DBMSs of Section 5.1 after a
failed ``ROLLBACK TRANSACTION``.

The file layer is abstracted behind the :class:`Storage` protocol so
tests can inject :class:`repro.engine.faults.FaultyStorage` and crash
the log at every write deterministically.

Group commit
------------

:class:`FileStorage` flushes per record by default; with
``buffered=True`` appends stay in the userspace buffer and only
:meth:`WriteAheadLog.sync` makes them durable, so many concurrent
writers' records share a single flush/fsync (the group-commit path the
server's single-writer task drives -- see ``docs/SERVER.md``).  Nothing
is acknowledged durable until the sync returns; a crash between append
and sync loses only unacknowledged records, which recovery's torn-tail
truncation already tolerates.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Any, Mapping, Protocol, Sequence

from repro.io.state_json import decode_value, encode_value

#: Format version stamped into every ``header`` record.
WAL_VERSION = 1

#: Bytes of the ``llllllll cccccccc `` record prefix.
_PREFIX_LEN = 18


class WalError(RuntimeError):
    """The log cannot be used: broken framing, misuse (commit without a
    transaction, checkpoint inside one), or a handle poisoned by an
    earlier storage fault."""


# -- the storage protocol and its stock implementations -----------------------


class Storage(Protocol):
    """A byte sink/source the log appends to.

    Implementations must make :meth:`append` atomic-or-detectable: a
    partial append is acceptable only because every record carries its
    length and checksum, letting recovery truncate the torn tail.
    :meth:`replace` (used by checkpoints) should be atomic where the
    medium allows it.
    """

    def append(self, data: bytes) -> None:
        """Append ``data`` at the end."""
        ...  # pragma: no cover - protocol

    def read(self) -> bytes:
        """The full current contents."""
        ...  # pragma: no cover - protocol

    def truncate(self, size: int) -> None:
        """Drop everything beyond ``size`` bytes."""
        ...  # pragma: no cover - protocol

    def replace(self, data: bytes) -> None:
        """Atomically swap the full contents for ``data``."""
        ...  # pragma: no cover - protocol

    def size(self) -> int:
        """Current length in bytes."""
        ...  # pragma: no cover - protocol

    def sync(self) -> None:
        """Make every appended byte durable (group-commit barrier).

        Storage that flushes per :meth:`append` may make this a no-op;
        buffered storage flushes (and optionally fsyncs) here, so many
        appends share one durability point.
        """
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""
        ...  # pragma: no cover - protocol


class MemoryStorage:
    """In-memory :class:`Storage`; the unit tests' default medium."""

    def __init__(self, data: bytes = b""):
        self._data = bytearray(data)

    def append(self, data: bytes) -> None:
        """Append ``data`` at the end."""
        self._data.extend(data)

    def read(self) -> bytes:
        """The full current contents."""
        return bytes(self._data)

    def read_from(self, offset: int) -> bytes:
        """The contents from ``offset`` to the end (replication tail)."""
        return bytes(self._data[offset:])

    def truncate(self, size: int) -> None:
        """Drop everything beyond ``size`` bytes."""
        del self._data[size:]

    def replace(self, data: bytes) -> None:
        """Swap the full contents for ``data``."""
        self._data = bytearray(data)

    def size(self) -> int:
        """Current length in bytes."""
        return len(self._data)

    def sync(self) -> None:
        """No-op; memory appends are already "durable"."""

    def close(self) -> None:
        """No-op; memory needs no release."""


class FileStorage:
    """File-backed :class:`Storage`.

    Appends go through a persistent ``'ab'`` handle.  In the default
    (unbuffered) mode every append is flushed immediately (``fsync=True``
    additionally syncs the OS buffers, trading throughput for power-loss
    durability).  With ``buffered=True`` appends land in the handle's
    userspace buffer and only :meth:`sync` flushes (and optionally
    fsyncs) them -- the group-commit mode, where many records share one
    flush and nothing is promised durable until the sync returns.

    :meth:`replace` writes a sibling temporary file and ``os.replace``\\ s
    it over the log, so a checkpoint is atomic: a crash leaves either
    the old log or the new snapshot, never a mix.

    :meth:`close` is idempotent; appending (or syncing) after close
    raises :class:`WalError` instead of the raw ``ValueError`` a closed
    file handle would.
    """

    def __init__(self, path: str, fsync: bool = False, buffered: bool = False):
        self.path = str(path)
        self.fsync = fsync
        self.buffered = buffered
        self._fh = open(self.path, "ab")
        self._closed = False

    def _handle(self):
        if self._closed:
            raise WalError(
                f"storage for {self.path!r} is closed; open a fresh "
                "FileStorage (or recover) before appending further"
            )
        return self._fh

    def append(self, data: bytes) -> None:
        """Append ``data``; unbuffered mode flushes (and optionally
        fsyncs) it immediately, buffered mode defers to :meth:`sync`."""
        fh = self._handle()
        fh.write(data)
        if not self.buffered:
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())

    def sync(self) -> None:
        """Flush buffered appends to the OS (and fsync when asked) --
        the single durability point a group commit shares."""
        fh = self._handle()
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())

    def read(self) -> bytes:
        """The full current file contents."""
        self._handle().flush()
        with open(self.path, "rb") as f:
            return f.read()

    def read_from(self, offset: int) -> bytes:
        """The contents from ``offset`` to the end, without rereading
        the (potentially large) prefix a replication cursor already
        shipped."""
        self._handle().flush()
        with open(self.path, "rb") as f:
            f.seek(offset)
            return f.read()

    def truncate(self, size: int) -> None:
        """Drop everything beyond ``size`` bytes (O_APPEND writes keep
        landing at the new end)."""
        self._handle().flush()
        os.truncate(self.path, size)

    def replace(self, data: bytes) -> None:
        """Atomically swap the file contents via a temp file + rename."""
        self._handle()  # refuse after close, before touching the file
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            if self.fsync:
                os.fsync(f.fileno())
        os.replace(tmp, self.path)
        self._fh.close()
        self._fh = open(self.path, "ab")

    def size(self) -> int:
        """Current file length in bytes."""
        self._handle().flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        """Close the append handle (safe to call more than once)."""
        if self._closed:
            return
        self._closed = True
        self._fh.close()


# -- record encoding ----------------------------------------------------------


def encode_record(payload: Mapping[str, Any]) -> bytes:
    """One wire-format line: ``llllllll cccccccc <compact json>\\n``."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    return b"%08x %08x " % (len(body), zlib.crc32(body)) + body + b"\n"


@dataclass
class ParsedWal:
    """The readable prefix of a log: records, where it ends, and why."""

    records: list[dict]
    valid_bytes: int
    total_bytes: int
    #: Why parsing stopped before ``total_bytes`` (``None`` = clean log).
    error: str | None

    @property
    def torn(self) -> bool:
        """Whether the log carries unreadable trailing bytes."""
        return self.valid_bytes < self.total_bytes


def _parse_one(
    data: bytes, offset: int
) -> tuple[dict | None, int, str | None]:
    """Parse the single record starting at ``offset``.

    Returns ``(record, next_offset, None)`` on success and
    ``(None, offset, error)`` when the bytes at ``offset`` are torn,
    corrupt, or malformed (the offset never advances past an unreadable
    record)."""
    newline = data.find(b"\n", offset)
    if newline < 0:
        return None, offset, "torn record (no terminating newline)"
    line = data[offset:newline]
    if (
        len(line) < _PREFIX_LEN
        or line[8:9] != b" "
        or line[17:18] != b" "
    ):
        return None, offset, "malformed record prefix"
    try:
        length = int(line[:8], 16)
        crc = int(line[9:17], 16)
    except ValueError:
        return None, offset, "malformed record prefix"
    body = line[_PREFIX_LEN:]
    if len(body) != length:
        return None, offset, (
            f"record length mismatch (declared {length}, found "
            f"{len(body)}; torn write)"
        )
    if zlib.crc32(body) != crc:
        return None, offset, "record checksum mismatch"
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        return None, offset, "record payload is not valid JSON"
    if not isinstance(payload, dict) or "op" not in payload:
        return None, offset, "record payload is not an op object"
    return payload, newline + 1, None


def parse_wal(data: bytes) -> ParsedWal:
    """Parse a log image, stopping (never resyncing) at the first torn,
    corrupt, or malformed record -- everything after an unreadable
    record is untrustworthy and gets truncated by recovery."""
    records: list[dict] = []
    offset = 0
    total = len(data)
    error: str | None = None
    while offset < total:
        record, offset, error = _parse_one(data, offset)
        if record is None:
            break
        records.append(record)
    return ParsedWal(records, offset, total, error)


# -- mutation-record constructors ---------------------------------------------


def insert_record(scheme: str, row: Mapping[str, Any]) -> dict:
    """The log payload of one accepted insert."""
    return {
        "op": "insert",
        "scheme": scheme,
        "row": {k: encode_value(v) for k, v in row.items()},
    }


def update_record(
    scheme: str, pk: tuple[Any, ...], updates: Mapping[str, Any]
) -> dict:
    """The log payload of one accepted update."""
    return {
        "op": "update",
        "scheme": scheme,
        "pk": [encode_value(v) for v in pk],
        "updates": {k: encode_value(v) for k, v in updates.items()},
    }


def delete_record(scheme: str, pk: tuple[Any, ...]) -> dict:
    """The log payload of one accepted delete."""
    return {
        "op": "delete",
        "scheme": scheme,
        "pk": [encode_value(v) for v in pk],
    }


def merge_record(
    members: Sequence[str],
    key_relation: str | None = None,
    merged_name: str | None = None,
) -> dict:
    """The log payload of one online schema merge (see
    :meth:`repro.engine.database.Database.apply_merge_online`).

    Only the family *spec* is logged -- ``Merge`` (Definition 4.1), the
    ``Remove`` cleanup and the eta state mapping are deterministic given
    the pre-merge schema, so recovery recomputes them instead of
    trusting a logged image.  The record always travels inside a
    ``begin``/``commit`` bracket: a crash before the commit marker
    recovers the unmerged schema, after it the merged one -- never a
    torn hybrid.
    """
    return {
        "op": "merge",
        "members": list(members),
        "key_relation": key_relation,
        "merged_name": merged_name,
        "remove": True,
    }


def decode_batch_op(record: Mapping[str, Any]) -> tuple:
    """A mutation record as the ``apply_batch`` op tuple it replays as."""
    op = record["op"]
    if op == "insert":
        return (
            "insert",
            record["scheme"],
            {k: decode_value(v) for k, v in record["row"].items()},
        )
    if op == "update":
        return (
            "update",
            record["scheme"],
            tuple(decode_value(v) for v in record["pk"]),
            {k: decode_value(v) for k, v in record["updates"].items()},
        )
    if op == "delete":
        return (
            "delete",
            record["scheme"],
            tuple(decode_value(v) for v in record["pk"]),
        )
    raise WalError(f"record op {op!r} is not a mutation")


# -- the log itself -----------------------------------------------------------


class WriteAheadLog:
    """The engine's append-only mutation log over one :class:`Storage`.

    A fresh log stamps a ``header`` record; attaching to storage that
    already holds mutations raises :class:`WalError` -- go through
    :meth:`repro.engine.database.Database.recover`, which replays the
    log and resumes it with continuous ``lsn``/transaction counters.

    ``stats`` (set by the owning database) receives ``wal_records`` /
    ``wal_bytes`` increments per durable record.
    """

    def __init__(self, storage: Storage, stats=None):
        self.storage = storage
        #: The owning engine's :class:`~repro.engine.stats.EngineStats`.
        self.stats = stats
        self._broken = False
        self._txn: int | None = None
        self._txn_failed = False
        self._next_lsn = 1
        self._next_txn = 1
        self.records_appended = 0
        self.bytes_appended = 0
        #: Records appended since the last :meth:`sync` (what one group
        #: commit will make durable).
        self.unsynced_records = 0
        if storage.size() == 0:
            self.append({"op": "header", "version": WAL_VERSION})
            # The bootstrap header is not a client mutation: it should
            # never count toward a group commit's batch (the first
            # barrier's flush still covers its bytes).
            self.unsynced_records = 0
        else:
            parsed = parse_wal(storage.read())
            if parsed.torn:
                raise WalError(
                    f"log has an unreadable tail ({parsed.error}); "
                    "recover it with Database.recover"
                )
            if any(r["op"] != "header" for r in parsed.records):
                raise WalError(
                    "log already holds mutations; replay it with "
                    "Database.recover instead of attaching a fresh engine"
                )
            if parsed.records:
                self._next_lsn = (
                    max(r.get("lsn", 0) for r in parsed.records) + 1
                )

    @classmethod
    def open(
        cls, path: str, fsync: bool = False, buffered: bool = False
    ) -> "WriteAheadLog":
        """A log over :class:`FileStorage` at ``path``; ``buffered``
        selects the group-commit mode (appends become durable only at
        :meth:`sync`)."""
        return cls(FileStorage(path, fsync=fsync, buffered=buffered))

    @classmethod
    def _resume(
        cls, storage: Storage, next_lsn: int, next_txn: int, stats=None
    ) -> "WriteAheadLog":
        """Recovery's constructor: continue an existing, repaired log."""
        log = cls.__new__(cls)
        log.storage = storage
        log.stats = stats
        log._broken = False
        log._txn = None
        log._txn_failed = False
        log._next_lsn = next_lsn
        log._next_txn = next_txn
        log.records_appended = 0
        log.bytes_appended = 0
        log.unsynced_records = 0
        return log

    # -- introspection ---------------------------------------------------

    @property
    def next_lsn(self) -> int:
        """The ``lsn`` the next record will carry."""
        return self._next_lsn

    @property
    def in_txn(self) -> bool:
        """Whether a ``begin`` marker is awaiting its ``commit``."""
        return self._txn is not None

    @property
    def broken(self) -> bool:
        """Whether a storage fault poisoned this handle."""
        return self._broken

    @property
    def durable_lsn(self) -> int:
        """The highest ``lsn`` known durable (appended *and* synced).

        Records past this point may still be sitting in the userspace
        buffer; a crash would tear them off, so replication must never
        ship them (a replica could otherwise hold records its primary
        loses).  Because the server's group-commit barrier always syncs
        at transaction-group boundaries, this never splits a
        ``begin``..``commit`` group."""
        return self._next_lsn - 1 - self.unsynced_records

    # -- appends ---------------------------------------------------------

    def append(self, payload: Mapping[str, Any]) -> int:
        """Durably append one record (stamping its ``lsn``); returns the
        ``lsn``.  A storage fault poisons the log and re-raises."""
        if self._broken:
            raise WalError(
                "write-ahead log is poisoned by an earlier storage fault; "
                "crash-recover before mutating further"
            )
        lsn = self._next_lsn
        record = dict(payload)
        record["lsn"] = lsn
        data = encode_record(record)
        try:
            self.storage.append(data)
        except Exception:
            self._broken = True
            if self._txn is not None:
                self._txn_failed = True
            raise
        self._next_lsn = lsn + 1
        self.records_appended += 1
        self.bytes_appended += len(data)
        self.unsynced_records += 1
        if self.stats is not None:
            self.stats.wal_records += 1
            self.stats.wal_bytes += len(data)
        return lsn

    def sync(self) -> int:
        """Group-commit barrier: make every record appended since the
        last sync durable in one storage flush; returns how many records
        the barrier covered.  Counts one ``wal_group_commits`` (and the
        batch size into ``wal_batched_records``) when records were
        pending.  A storage fault poisons the log and re-raises -- the
        batch is not durable and its mutations must not be acked."""
        if self._broken:
            raise WalError(
                "write-ahead log is poisoned by an earlier storage fault; "
                "crash-recover before syncing further"
            )
        batched = self.unsynced_records
        try:
            self.storage.sync()
        except Exception:
            self._broken = True
            raise
        self.unsynced_records = 0
        if batched and self.stats is not None:
            self.stats.wal_group_commits += 1
            self.stats.wal_batched_records += batched
        return batched

    # -- transaction markers ---------------------------------------------

    def begin(self) -> int:
        """Open a transaction group; returns its id."""
        if self._txn is not None:
            raise WalError("a log transaction is already open")
        txn = self._next_txn
        self.append({"op": "begin", "txn": txn})
        self._next_txn = txn + 1
        self._txn = txn
        self._txn_failed = False
        return txn

    def commit(self) -> None:
        """Close the open group with a ``commit`` marker.  Raises
        :class:`WalError` (without writing the marker) when the group
        lost a record to a storage fault -- the caller must then undo
        the in-memory transaction, keeping memory and log agreed that
        the group never committed."""
        if self._txn is None:
            raise WalError("no log transaction to commit")
        txn = self._txn
        if self._txn_failed or self._broken:
            self._txn = None
            raise WalError(
                f"log transaction {txn} lost records to a storage fault; "
                "it cannot commit"
            )
        try:
            self.append({"op": "commit", "txn": txn})
        finally:
            self._txn = None

    def abort(self) -> None:
        """Close the open group with an ``abort`` marker (best effort:
        recovery drops an unterminated group anyway, so a failure to
        write the marker is swallowed)."""
        if self._txn is None:
            return
        txn = self._txn
        self._txn = None
        if self._broken:
            return
        try:
            self.append({"op": "abort", "txn": txn})
        except Exception:
            pass  # the group has no commit marker; recovery drops it

    def rollback(self, to_lsn: int) -> None:
        """Cancel the open group's records with ``lsn >= to_lsn`` (an
        inner transaction block unwound without aborting the outer one).
        Best effort: a failed append poisons the group, so its commit
        will refuse and recovery drops the whole group."""
        if self._txn is None:
            return
        if self._broken:
            self._txn_failed = True
            return
        try:
            self.append(
                {"op": "rollback", "txn": self._txn, "to_lsn": to_lsn}
            )
        except Exception:
            pass  # append() already marked the transaction failed

    # -- checkpointing ---------------------------------------------------

    def write_snapshot(
        self,
        state_dict: Mapping[str, Any],
        schema_dict: Mapping[str, Any] | None = None,
    ) -> int:
        """Compact the log to ``header`` + one ``snapshot`` record
        holding ``state_dict`` (the :func:`repro.io.state_json` image);
        returns the snapshot's ``lsn``.  The swap is atomic under
        :class:`FileStorage`.

        ``schema_dict`` (the :func:`repro.io.relational_json` image)
        embeds the schema the snapshot is an instance of.  A database
        whose schema evolved online (:func:`merge_record`) must pass it,
        or a later recovery would interpret the compacted image against
        the schema file it was booted from; without it the record is
        byte-identical to the pre-advisor format.
        """
        if self._txn is not None:
            raise WalError("cannot checkpoint inside a transaction")
        if self._broken:
            raise WalError(
                "write-ahead log is poisoned by an earlier storage fault; "
                "crash-recover before checkpointing"
            )
        header_lsn = self._next_lsn
        snapshot_lsn = header_lsn + 1
        snapshot: dict[str, Any] = {
            "op": "snapshot",
            "state": dict(state_dict),
            "lsn": snapshot_lsn,
        }
        if schema_dict is not None:
            snapshot["schema"] = dict(schema_dict)
        data = encode_record(
            {"op": "header", "version": WAL_VERSION, "lsn": header_lsn}
        ) + encode_record(snapshot)
        try:
            self.storage.replace(data)
        except Exception:
            self._broken = True
            raise
        self._next_lsn = snapshot_lsn + 1
        self.unsynced_records = 0  # the replace persisted everything
        self.records_appended += 2
        self.bytes_appended += len(data)
        if self.stats is not None:
            self.stats.wal_records += 2
            self.stats.wal_bytes += len(data)
        return snapshot_lsn

    def close(self) -> None:
        """Close the underlying storage, flushing any buffered records
        first (best effort -- a poisoned log skips the flush)."""
        if not self._broken and self.unsynced_records:
            try:
                self.sync()
            except (WalError, OSError):
                pass  # unsynced records were never acked durable
        self.storage.close()


# -- replication cursor --------------------------------------------------------


class WalCursor:
    """An incremental reader over a live log's storage, for WAL shipping.

    One cursor per replication session: :meth:`read_after` parses from
    the byte offset the previous call stopped at, so a busy primary
    never re-parses the prefix it already shipped.  Three live-log
    hazards are handled here rather than by the caller:

    - **Unsynced tails.**  The offset only advances past records with
      ``lsn <= up_to_lsn`` (the primary's :attr:`WriteAheadLog.durable_lsn`).
      Buffered-but-unsynced records are visible in the file yet could
      still be torn off by a crash; skipping the offset past them would
      lose them forever once they *do* sync.
    - **Torn bytes.**  A partially flushed record parses as torn; the
      cursor stops before it without advancing, and simply retries on
      the next poll once the rest of the bytes land.
    - **Checkpoint compaction.**  :meth:`WriteAheadLog.write_snapshot`
      replaces the file with a shorter one; ``storage.size()`` dropping
      below the cursor's offset detects that, the cursor resets to byte
      0, and the snapshot record (whose ``lsn`` exceeds anything
      shipped before the compaction) flows to the replica as a fresh
      base image.
    """

    def __init__(self, storage: Storage):
        self.storage = storage
        self._offset = 0

    @property
    def offset(self) -> int:
        """The byte offset the next read parses from."""
        return self._offset

    def read_after(
        self, after_lsn: int, up_to_lsn: int, max_records: int = 512
    ) -> list[dict]:
        """Up to ``max_records`` records with
        ``after_lsn < lsn <= up_to_lsn``, in log order.

        ``header`` records (no replayable content) are filtered out.
        Returns ``[]`` when the replica is caught up."""
        if self.storage.size() < self._offset:
            self._offset = 0  # the log was compacted under us
        reader = getattr(self.storage, "read_from", None)
        if reader is not None:
            data = reader(self._offset)
            base = self._offset
        else:
            data = self.storage.read()[self._offset:]
            base = self._offset
        records: list[dict] = []
        offset = 0
        while offset < len(data) and len(records) < max_records:
            record, next_offset, _error = _parse_one(data, offset)
            if record is None:
                break  # torn or unsynced tail; retry next poll
            lsn = record.get("lsn", 0)
            if lsn > up_to_lsn:
                break  # not durable yet; do not advance past it
            offset = next_offset
            self._offset = base + offset
            if record["op"] == "header":
                continue
            if lsn > after_lsn:
                records.append(record)
        return records
