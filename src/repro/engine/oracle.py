"""A scan-based reference implementation of the storage engine.

:class:`OracleDatabase` enforces exactly the same constraints, in the
same order, with the same constraint labels as
:class:`~repro.engine.database.Database` -- but with *no* reference
indexes: every candidate-key, inclusion-dependency and restrict check is
a full scan (the seed engine's fallback path, made total).  It exists
for two jobs:

* it is the **oracle** the differential property tests run the indexed
  engine against: any divergence in accept/reject decisions or in the
  resulting states is a bug in the index maintenance;
* it is the **baseline** the benchmark harness measures the indexed
  engine's restrict-delete and ``find_referencing`` speedups against
  (the "seed scan path" of ``benchmarks/bench_engine.py``).

It is deliberately simple and slow; never use it for real workloads.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.engine.database import ConstraintViolationError
from repro.relational.relation import Relation
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.state import DatabaseState
from repro.relational.tuples import NULL, Tuple


class OracleDatabase:
    """Scan-based twin of :class:`~repro.engine.database.Database`.

    Supports the same mutation surface (``insert`` / ``update`` /
    ``delete`` / ``load_state`` / ``state``) under both null-semantics
    modes; raises :class:`ConstraintViolationError` with the same
    ``constraint`` labels and ``KeyError`` for missing rows, in the same
    check order as the indexed engine.
    """

    def __init__(self, schema: RelationalSchema, null_semantics: str = "distinct"):
        if null_semantics not in ("distinct", "identical"):
            raise ValueError(
                "null_semantics must be 'distinct' or 'identical'"
            )
        self.schema = schema
        self.null_semantics = null_semantics
        self._rows: dict[str, dict[tuple[Any, ...], Tuple]] = {
            s.name: {} for s in schema.schemes
        }
        self._schemes: dict[str, RelationScheme] = {
            s.name: s for s in schema.schemes
        }
        self._null = {
            s.name: list(schema.null_constraints_of(s.name))
            for s in schema.schemes
        }
        self._outgoing = {
            s.name: [i for i in schema.inds if i.lhs_scheme == s.name]
            for s in schema.schemes
        }
        self._incoming = {
            s.name: [i for i in schema.inds if i.rhs_scheme == s.name]
            for s in schema.schemes
        }
        # Non-primary candidate keys, in the same iteration order the
        # engine builds its key indexes from.
        self._candidate_keys = {
            s.name: [
                tuple(a.name for a in key)
                for key in s.candidate_keys
                if tuple(a.name for a in key) != s.key_names
            ]
            for s in schema.schemes
        }

    # -- access ----------------------------------------------------------

    def _scheme(self, name: str) -> RelationScheme:
        try:
            return self._schemes[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r}") from None

    def _table_rows(self, name: str) -> dict[tuple[Any, ...], Tuple]:
        self._scheme(name)
        return self._rows[name]

    def get(self, scheme_name: str, pk: tuple[Any, ...] | Any) -> Tuple | None:
        """Primary-key lookup (no stats are kept on the oracle)."""
        if not isinstance(pk, tuple):
            pk = (pk,)
        return self._table_rows(scheme_name).get(pk)

    def count(self, scheme_name: str) -> int:
        """Current row count of one relation."""
        return len(self._table_rows(scheme_name))

    def state(self) -> DatabaseState:
        """An immutable snapshot of the current contents."""
        return DatabaseState(
            {
                name: Relation(self._schemes[name].attributes, rows.values())
                for name, rows in self._rows.items()
            }
        )

    def load_state(self, state: DatabaseState) -> None:
        """Bulk-load a (trusted) state, unchecked."""
        for name, relation in state.items():
            scheme = self._scheme(name)
            key_names = scheme.key_names
            self._rows[name] = {
                tuple(t[a] for a in key_names): t for t in relation
            }

    # -- scan-based checks ------------------------------------------------

    def _check_shape(self, scheme: RelationScheme, row: Mapping[str, Any]) -> Tuple:
        expected = set(scheme.attribute_names)
        given = set(row)
        if given != expected:
            missing = expected - given
            extra = given - expected
            raise ConstraintViolationError(
                "structure",
                f"{scheme.name}: row attributes mismatch "
                f"(missing {sorted(missing)}, unexpected {sorted(extra)})",
            )
        return Tuple(row)

    def _check_null_constraints(self, scheme_name: str, t: Tuple) -> None:
        for constraint in self._null[scheme_name]:
            if not constraint.holds_for(t):
                raise ConstraintViolationError(str(constraint), f"row {t!r}")

    def _check_keys(
        self,
        scheme: RelationScheme,
        t: Tuple,
        replacing: tuple[Any, ...] | None,
    ) -> tuple[Any, ...]:
        pk = tuple(t[a] for a in scheme.key_names)
        if any(v is NULL for v in pk):
            raise ConstraintViolationError(
                "primary-key",
                f"{scheme.name}: primary key contains nulls: {pk!r}",
            )
        rows = self._rows[scheme.name]
        if pk in rows and pk != replacing:
            raise ConstraintViolationError(
                "primary-key",
                f"{scheme.name}: duplicate primary key {pk!r}",
            )
        for key_names in self._candidate_keys[scheme.name]:
            value = tuple(t[a] for a in key_names)
            value_has_null = any(v is NULL for v in value)
            if value_has_null and self.null_semantics == "distinct":
                continue  # binds only when total
            for other_pk, other in rows.items():
                if other_pk == replacing:
                    continue
                other_value = tuple(other[a] for a in key_names)
                if self.null_semantics == "distinct" and any(
                    v is NULL for v in other_value
                ):
                    continue  # an unbound stored key cannot clash
                if other_value == value:
                    raise ConstraintViolationError(
                        "candidate-key",
                        f"{scheme.name}: duplicate candidate key "
                        f"{dict(zip(key_names, value))!r} "
                        f"({self.null_semantics} null semantics)",
                    )
        return pk

    def _check_references_out(self, scheme_name: str, t: Tuple) -> None:
        for ind in self._outgoing[scheme_name]:
            value = tuple(t[a] for a in ind.lhs_attrs)
            if any(v is NULL for v in value):
                continue
            rhs_rows = self._rows[ind.rhs_scheme]
            if not any(
                tuple(row[a] for a in ind.rhs_attrs) == value
                for row in rhs_rows.values()
            ):
                raise ConstraintViolationError(
                    str(ind),
                    f"no {ind.rhs_scheme} row with "
                    f"{dict(zip(ind.rhs_attrs, value))!r}",
                )

    def _scan_referencing(
        self,
        scheme_name: str,
        old: Tuple,
        ignore_self_pk: tuple[Any, ...] | None = None,
    ) -> str | None:
        """The seed engine's O(n) restrict check: scan every child."""
        for ind in self._incoming[scheme_name]:
            target_value = tuple(old[a] for a in ind.rhs_attrs)
            if any(v is NULL for v in target_value):
                continue
            for pk, row in self._rows[ind.lhs_scheme].items():
                if (
                    ind.lhs_scheme == scheme_name
                    and ignore_self_pk is not None
                    and pk == ignore_self_pk
                ):
                    continue
                if tuple(row[a] for a in ind.lhs_attrs) == target_value:
                    return f"{ind} (row {pk!r} of {ind.lhs_scheme})"
        return None

    # -- mutations ---------------------------------------------------------

    def insert(self, scheme_name: str, row: Mapping[str, Any]) -> Tuple:
        """Insert one row, scanning for every check."""
        scheme = self._scheme(scheme_name)
        t = self._check_shape(scheme, row)
        self._check_null_constraints(scheme_name, t)
        pk = self._check_keys(scheme, t, replacing=None)
        self._check_references_out(scheme_name, t)
        self._rows[scheme_name][pk] = t
        return t

    def delete(self, scheme_name: str, pk: tuple[Any, ...] | Any) -> None:
        """Delete by primary key, restricting when referenced (by scan)."""
        if not isinstance(pk, tuple):
            pk = (pk,)
        rows = self._table_rows(scheme_name)
        old = rows.get(pk)
        if old is None:
            raise KeyError(f"{scheme_name}: no row with key {pk!r}")
        blocker = self._scan_referencing(scheme_name, old)
        if blocker is not None:
            raise ConstraintViolationError(
                "restrict-delete",
                f"{scheme_name} row {pk!r} referenced via {blocker}",
            )
        del rows[pk]

    def update(
        self, scheme_name: str, pk: tuple[Any, ...] | Any, updates: Mapping[str, Any]
    ) -> Tuple:
        """Update one row by primary key, scanning for every check."""
        if not isinstance(pk, tuple):
            pk = (pk,)
        scheme = self._scheme(scheme_name)
        rows = self._rows[scheme_name]
        old = rows.get(pk)
        if old is None:
            raise KeyError(f"{scheme_name}: no row with key {pk!r}")
        t = old.with_values(dict(updates))
        self._check_null_constraints(scheme_name, t)
        new_pk = self._check_keys(scheme, t, replacing=pk)
        self._check_references_out(scheme_name, t)
        changed = {name for name in updates if old[name] != t[name]}
        for ind in self._incoming[scheme_name]:
            if changed & set(ind.rhs_attrs):
                blocker = self._scan_referencing(
                    scheme_name, old, ignore_self_pk=pk
                )
                if blocker is not None:
                    raise ConstraintViolationError(
                        "restrict-update",
                        f"{scheme_name} row {pk!r} referenced via {blocker}",
                    )
                break
        del rows[pk]
        rows[new_pk] = t
        return t

    # -- navigation (bench baseline) ---------------------------------------

    def find_referencing(
        self,
        target: Tuple,
        source_scheme: str,
        via: Sequence[str],
        target_attrs: Sequence[str],
    ) -> list[Tuple]:
        """All rows of ``source_scheme`` referencing ``target``, by full
        scan -- the navigation the reverse-reference indexes replace."""
        value = tuple(target[a] for a in target_attrs)
        return [
            row
            for row in self._table_rows(source_scheme).values()
            if tuple(row[a] for a in via) == value
        ]
