"""Query navigation with operation counting.

The primitives mirror what a 1992 application would do against the
schemas the paper compares: primary-key lookups, foreign-key
navigations (joins), and object reconstruction from merged relations by
total projection.  Every navigation increments the shared
:class:`~repro.engine.stats.EngineStats`, which is what the
join-reduction benchmarks report.

Navigations are index-backed where the storage engine keeps an index:
a navigation landing on the target's primary key costs one ``lookup``
(counted -- a navigation is never cheaper than a point query), one
landing on a reverse-reference index costs an ``index_hit``, and only
the residual cases scan (``tuples_scanned``).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.merge import MergedSchemeInfo
from repro.engine.database import Database
from repro.relational.tuples import NULL, Tuple, is_null


class QueryEngine:
    """Point queries and join navigation over a :class:`Database`."""

    def __init__(self, db: Database):
        self.db = db
        self.stats = db.stats
        self._ind_cache: tuple[Any, dict, dict] | None = None

    def _ind_maps(self) -> tuple[dict, dict]:
        """Per-IND lookup maps for the workload profile, rebuilt when the
        database's schema object changes (an online merge swaps it).

        The forward map keys a ``join_to`` call shape
        ``(via, target_scheme, target_attrs)`` to the matching IND's
        string form; the reverse map keys a ``find_referencing`` shape
        ``(source_scheme, via, target_attrs)``.
        """
        schema = self.db.schema
        cache = self._ind_cache
        if cache is not None and cache[0] is schema:
            return cache[1], cache[2]
        forward: dict[tuple, str] = {}
        reverse: dict[tuple, str] = {}
        for ind in schema.inds:
            label = str(ind)
            forward.setdefault(
                (ind.lhs_attrs, ind.rhs_scheme, ind.rhs_attrs), label
            )
            # The same IND navigated backwards (referenced key -> the
            # referencing rows) -- the Figure 3 profile-query shape.
            forward.setdefault(
                (ind.rhs_attrs, ind.lhs_scheme, ind.lhs_attrs), label
            )
            reverse.setdefault(
                (ind.lhs_scheme, ind.lhs_attrs, ind.rhs_attrs), label
            )
        self._ind_cache = (schema, forward, reverse)
        return forward, reverse

    # -- primitives ---------------------------------------------------------

    def get(self, scheme_name: str, pk: tuple[Any, ...] | Any) -> Tuple | None:
        """Primary-key lookup (1 lookup)."""
        return self.db.get(scheme_name, pk)

    def join_to(
        self,
        source: Tuple,
        via: Sequence[str],
        target_scheme: str,
        target_attrs: Sequence[str] | None = None,
    ) -> Tuple | None:
        """Navigate from one tuple to the referenced row (1 join).

        ``via`` names the foreign-key attributes of ``source``;
        ``target_attrs`` defaults to the target's primary key.  Returns
        ``None`` when the foreign key is null (no referenced object).
        The primary-key probe inside the navigation counts as one
        lookup, exactly as the equivalent :meth:`Database.get` would.
        """
        via_t = tuple(via)
        value = tuple(source[a] for a in via_t)
        self.stats.joins_performed += 1
        if any(is_null(v) for v in value):
            return None
        table = self.db.table(target_scheme)
        targets = (
            tuple(target_attrs)
            if target_attrs is not None
            else table.scheme.key_names
        )
        ind = self._ind_maps()[0].get((via_t, target_scheme, targets))
        if ind is not None:
            self.stats.count_ind_join(ind)
        if targets == table.scheme.key_names:
            self.stats.lookups += 1
            return table.rows.get(value)
        index = table.group_indexes.get(targets)
        if index is not None:
            self.stats.index_hits += 1
            referencers = index.get(value)
            if referencers:
                return table.rows[next(iter(referencers))]
            return None
        self.stats.index_misses += 1
        self.stats.tuples_scanned += len(table.rows)
        for row in table.rows.values():
            if tuple(row[a] for a in targets) == value:
                return row
        return None

    def find_referencing(
        self,
        target: Tuple,
        source_scheme: str,
        via: Sequence[str],
        target_attrs: Sequence[str],
    ) -> list[Tuple]:
        """All rows of ``source_scheme`` referencing ``target`` (1 join).

        Answered from the source's reverse-reference index in O(k) when
        the ``via`` group is indexed (it is for every inclusion-
        dependency side); only unindexed or null-valued probes scan.
        Results come back in row insertion order, as a scan would
        produce them.

        Every probe (pk or reverse-index) counts one ``lookup`` besides
        the join, mirroring ``join_to``'s pk probe -- a navigation is
        never cheaper than a point query in either direction.
        """
        self.stats.joins_performed += 1
        value = tuple(target[a] for a in target_attrs)
        table = self.db.table(source_scheme)
        via_t = tuple(via)
        targets_t = tuple(target_attrs)
        ind = self._ind_maps()[1].get((source_scheme, via_t, targets_t))
        if ind is not None:
            self.stats.count_ind_join(ind)
        if not any(v is NULL for v in value):
            if via_t == table.scheme.key_names:
                self.stats.lookups += 1
                row = table.rows.get(value)
                return [row] if row is not None else []
            index = table.group_indexes.get(via_t)
            if index is not None:
                self.stats.index_hits += 1
                self.stats.lookups += 1
                referencers = index.get(value)
                if not referencers:
                    return []
                rows = table.rows
                return [rows[pk] for pk in referencers]
            self.stats.index_misses += 1
        self.stats.tuples_scanned += len(table.rows)
        return [
            row
            for row in table.rows.values()
            if tuple(row[a] for a in via_t) == value
        ]

    # -- merged-relation reconstruction ---------------------------------------

    def object_view(
        self, info: MergedSchemeInfo, member: str, merged_row: Tuple
    ) -> Tuple | None:
        """The ``member`` object held in one merged tuple, or ``None`` when
        absent (its required attributes are null) -- the per-tuple form of
        the total projection ``eta'`` uses (0 joins)."""
        required = info.required_remaining(member)
        if not merged_row.is_total_on(required):
            return None
        return merged_row.subtuple(info.family_attrs[member])

    def profile(
        self,
        scheme_name: str,
        pk: tuple[Any, ...] | Any,
        navigations: Sequence[tuple[Sequence[str], str, Sequence[str] | None]],
    ) -> dict[str, Tuple | None]:
        """A point query assembling one object with its related rows.

        ``navigations`` is a list of ``(via_attrs, target_scheme,
        target_attrs)``; the result maps the target scheme name to the
        joined row.  On a merged schema the same information comes from
        the single ``get`` with an empty navigation list -- the benchmarks
        compare exactly these two call shapes.
        """
        root = self.get(scheme_name, pk)
        result: dict[str, Tuple | None] = {scheme_name: root}
        if root is None:
            return result
        for via, target, target_attrs in navigations:
            result[target] = self.join_to(root, via, target, target_attrs)
        return result


def row_counts(db: Database) -> Mapping[str, int]:
    """Row count per relation (for reports)."""
    return {name: db.count(name) for name in db.schema.scheme_names}
