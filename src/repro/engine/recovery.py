"""Crash recovery: rebuild the committed state from a write-ahead log.

Recovery is where Definition 2.1 earns its keep: the pre- and
post-crash states must be the *same* consistent state, not merely two
states satisfying the same constraints.  The procedure is the textbook
redo pass specialised to this engine's logging discipline (only
validated mutations are ever logged, see :mod:`repro.engine.wal`):

1. **Truncate** the unreadable tail.  :func:`~repro.engine.wal.parse_wal`
   stops at the first torn, checksum-corrupt, or malformed record; every
   byte from there on is discarded, so a partial mutation is never
   applied.
2. **Load** the snapshot (``snapshot``/``load_state`` records) through
   ``Database.load_state`` -- without per-record validation, since the
   image was consistent when written.
3. **Replay** the committed records in log order.  Bare mutation
   records (written outside a transaction) re-apply directly; a
   ``begin``..``commit`` group replays through ``apply_batch``, whose
   deferred reference checking accepts exactly the groups the original
   transaction accepted.  A group with no ``commit`` (trailing or
   ``abort``-ed) is rolled back: its records are dropped, and a
   trailing group is sealed with an ``abort`` marker in the repaired
   log so later appends cannot fall inside it.  ``rollback`` markers
   cancel the inner-block records they name.
4. **Verify**: the recovered state is re-checked against the schema's
   full ``F ∪ I ∪ N`` constraint set by
   :class:`~repro.constraints.checker.ConsistencyChecker`; a violation
   means the log itself is inconsistent and recovery refuses to hand
   over the database.

Every step emits ``event="recovery"`` trace events through the normal
:mod:`repro.obs` tracer and counts into
:class:`~repro.engine.stats.EngineStats` (``wal_replayed_records``,
``wal_rolled_back_records``, ``wal_truncated_bytes``), so a recovery is
as observable as any other enforcement decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.stats import EngineStats
from repro.engine.wal import (
    FileStorage,
    Storage,
    WalError,
    WriteAheadLog,
    decode_batch_op,
    parse_wal,
)
from repro.obs.rules import paper_rule
from repro.obs.trace import TraceEvent, Tracer
from repro.relational.schema import RelationalSchema


class RecoveryError(RuntimeError):
    """The log cannot be replayed into a consistent state (a record the
    log claims committed was rejected, or the recovered state fails the
    consistency re-check)."""


@dataclass
class RecoveryReport:
    """What one recovery pass found and did."""

    #: Records readable from the log (after truncation).
    records_read: int = 0
    #: Mutation records re-applied to the database.
    records_replayed: int = 0
    #: Committed transaction groups replayed.
    transactions_replayed: int = 0
    #: Uncommitted/aborted transaction groups dropped.
    transactions_rolled_back: int = 0
    #: Mutation records dropped with their transactions.
    records_rolled_back: int = 0
    #: Bytes cut off the unreadable log tail.
    truncated_bytes: int = 0
    #: Parser's reason for the truncation (``None`` = clean log).
    truncate_reason: str | None = None
    #: Whether a snapshot/load_state image seeded the state.
    snapshot_loaded: bool = False
    #: Whether the consistency re-check ran (and passed).
    verified: bool = False

    def to_dict(self) -> dict:
        """JSON-ready copy (the CLI prints this)."""
        return dict(self.__dict__)


@dataclass
class RecoveryResult:
    """A recovered database plus the report describing how it got there."""

    database: object
    report: RecoveryReport = field(default_factory=RecoveryReport)


def _emit(tracer: Tracer | None, **kw) -> None:
    if tracer is not None:
        tracer.emit(TraceEvent(event="recovery", **kw))


class WalApplier:
    """Record-by-record replay of a log into a live database.

    The redo pass of :func:`recover_database` (step 2 + 3 of the module
    docstring), factored so it can also run *incrementally*: a replica
    feeds records as they arrive off the wire, one
    :meth:`feed` per record, applying each committed group the moment
    its ``commit`` marker lands.  Semantics are identical either way --
    snapshot/``load_state`` images seed the state, bare mutations apply
    directly, ``begin``..``commit`` groups buffer and replay atomically
    through ``apply_batch``, ``abort``/``rollback`` drop what they
    cancel.

    :meth:`seal` ends the stream: a trailing group with no ``commit``
    (the crash took it) is dropped, and its transaction id is returned
    so the caller can seal it in the repaired log too.
    """

    def __init__(
        self,
        db,
        report: RecoveryReport | None = None,
        tracer: Tracer | None = None,
    ):
        self.db = db
        self.report = report if report is not None else RecoveryReport()
        self.tracer = tracer
        #: Highest ``lsn`` seen (fed records, applied or not).
        self.max_lsn = 0
        #: Highest transaction id seen.
        self.max_txn = 0
        self._open_txn: int | None = None
        self._buffered: list[dict] = []

    @property
    def in_txn(self) -> bool:
        """Whether a ``begin`` marker is awaiting its ``commit``."""
        return self._open_txn is not None

    def feed(self, record: dict) -> None:
        """Replay one log record (buffering it if inside a group)."""
        db, report, tracer = self.db, self.report, self.tracer
        self.max_lsn = max(self.max_lsn, record.get("lsn", 0))
        op = record["op"]
        if op == "header":
            return
        if op in ("snapshot", "load_state"):
            _load_image(db, record, report)
            return
        if op == "begin":
            if self._open_txn is not None:
                raise RecoveryError(
                    f"log transaction {record.get('txn')} begins inside "
                    f"transaction {self._open_txn}"
                )
            self._open_txn = record.get("txn", 0)
            self.max_txn = max(self.max_txn, self._open_txn)
            self._buffered = []
            return
        if op == "rollback":
            to_lsn = record.get("to_lsn", 0)
            kept = [r for r in self._buffered if r.get("lsn", 0) < to_lsn]
            dropped = len(self._buffered) - len(kept)
            self._buffered = kept
            report.records_rolled_back += dropped
            db.stats.wal_rolled_back_records += dropped
            return
        if op == "abort":
            _drop_group(db, report, tracer, self._open_txn, len(self._buffered))
            self._open_txn, self._buffered = None, []
            return
        if op == "commit":
            _replay_group(db, report, tracer, self._open_txn, self._buffered)
            self._open_txn, self._buffered = None, []
            return
        # A mutation (or schema-merge) record.
        if self._open_txn is not None:
            self._buffered.append(record)
        elif op == "merge":
            _replay_merge(db, report, record)
        else:
            _replay_bare(db, report, record)

    def seal(self) -> int | None:
        """Drop a dangling (commit-less) trailing group; returns its
        transaction id when one was dropped."""
        if self._open_txn is None:
            return None
        dangling = self._open_txn
        _drop_group(
            self.db, self.report, self.tracer, dangling, len(self._buffered)
        )
        self._open_txn, self._buffered = None, []
        return dangling


def recover_database(
    schema: RelationalSchema,
    wal_path: str | None = None,
    *,
    storage: Storage | None = None,
    null_semantics: str = "distinct",
    stats: EngineStats | None = None,
    tracer: Tracer | None = None,
    record_latencies: bool = False,
    verify: bool = True,
) -> RecoveryResult:
    """Replay the log at ``wal_path`` (or over ``storage``) into a fresh
    :class:`~repro.engine.database.Database`; see the module docstring
    for the procedure.  The returned database owns the repaired log and
    continues appending to it."""
    from repro.engine.database import Database

    if (wal_path is None) == (storage is None):
        raise ValueError("pass exactly one of wal_path or storage")
    if storage is None:
        storage = FileStorage(wal_path)
    report = RecoveryReport()
    parsed = parse_wal(storage.read())

    # 1. Truncate the unreadable tail -- a torn record must never be
    # half-applied, and nothing after it can be trusted.
    if parsed.torn:
        storage.truncate(parsed.valid_bytes)
        report.truncated_bytes = parsed.total_bytes - parsed.valid_bytes
        report.truncate_reason = parsed.error
        _emit(
            tracer,
            op="truncate",
            kind="wal-truncate",
            rule=paper_rule("wal-truncate"),
            outcome="truncated",
            rows=report.truncated_bytes,
            detail=parsed.error,
        )
    report.records_read = len(parsed.records)

    db = Database(
        schema,
        stats=stats,
        null_semantics=null_semantics,
        tracer=tracer,
        record_latencies=record_latencies,
    )

    # 2 + 3. Replay in log order, buffering transaction groups until
    # their commit marker proves them durable.
    applier = WalApplier(db, report=report, tracer=tracer)
    for record in parsed.records:
        applier.feed(record)

    # A trailing group with no commit marker died with the crash.
    dangling_txn = applier.seal()

    # Re-attach a resumed log with continuous lsn/transaction counters.
    db.wal = WriteAheadLog._resume(
        storage, applier.max_lsn + 1, applier.max_txn + 1, stats=db.stats
    )
    if dangling_txn is not None:
        # Seal the dropped group in the log itself: without an abort
        # marker the group stays open on disk, and the *next* recovery
        # would fold post-crash appends into the dead group.
        db.wal.append({"op": "abort", "txn": dangling_txn})
    db.stats.wal_truncated_bytes += report.truncated_bytes
    db.recovery_report = report

    # 4. The recovered state must still satisfy F ∪ I ∪ N -- Definition
    # 2.1 demands the *same consistent state*, so an inconsistent replay
    # is a hard error, not a warning.
    if verify:
        from repro.constraints.checker import ConsistencyChecker

        # db.schema, not the schema argument: a replayed online merge
        # leaves the database on the evolved schema.
        checker = ConsistencyChecker(db.schema, tracer=tracer)
        violations = checker.violations(db.state())
        _emit(
            tracer,
            op="verify",
            kind="recovery-check",
            rule=paper_rule("recovery-check"),
            outcome="consistent" if not violations else "inconsistent",
            rows=sum(db.count(s.name) for s in db.schema.schemes),
            detail=(
                "; ".join(str(v) for v in violations[:5])
                if violations
                else None
            ),
        )
        if violations:
            raise RecoveryError(
                "recovered state violates the schema constraints: "
                + "; ".join(str(v) for v in violations[:5])
            )
        report.verified = True

    _emit(
        tracer,
        op="replay",
        kind="wal-replay",
        rule=paper_rule("wal-replay"),
        outcome="recovered",
        rows=report.records_replayed,
        detail=(
            f"{report.transactions_replayed} transactions replayed, "
            f"{report.transactions_rolled_back} rolled back"
        ),
    )
    return RecoveryResult(db, report)


def _load_image(db, record: dict, report: RecoveryReport) -> None:
    """Seed the state from a ``snapshot``/``load_state`` record.

    A snapshot written after an online schema merge embeds the evolved
    schema (:meth:`~repro.engine.wal.WriteAheadLog.write_snapshot`); the
    database is swapped onto it before its state image is interpreted,
    so a post-merge checkpoint recovers against the merged schema and
    not the schema file the recovery was booted from.
    """
    from repro.io.state_json import state_from_dict

    schema_dict = record.get("schema")
    if schema_dict is not None:
        from repro.io.relational_json import relational_schema_from_dict

        schema = relational_schema_from_dict(schema_dict)
        db._adopt_schema(schema, state_from_dict(record["state"], schema))
    else:
        state = state_from_dict(record["state"], db.schema)
        db.load_state(state, validate=False)
    report.snapshot_loaded = True
    report.records_replayed += 1
    db.stats.wal_replayed_records += 1


def _replay_merge(db, report: RecoveryReport, record: dict) -> None:
    """Re-apply one committed ``merge`` record (online schema merge).

    The record carries only the family spec; ``Merge`` + ``Remove`` and
    the eta state mapping are recomputed against the database's current
    schema (they are deterministic, see
    :func:`repro.engine.wal.merge_record`).  With a live log attached
    (a replica redoing its primary's merge) the replay re-logs through
    :meth:`~repro.engine.database.Database.apply_merge_online`, so the
    replica's own log stays recoverable; during crash recovery the
    database has no log yet and the swap applies directly, leaving the
    wholesale re-verification to recovery's final consistency check.
    """
    from repro.core.merge import MergeError
    from repro.engine.database import ConstraintViolationError

    members = record["members"]
    key_relation = record.get("key_relation")
    merged_name = record.get("merged_name")
    try:
        if db.wal is not None:
            db.apply_merge_online(members, key_relation, merged_name)
        else:
            db.redo_merge(members, key_relation, merged_name)
    except (MergeError, ConstraintViolationError, KeyError) as exc:
        raise RecoveryError(
            f"logged merge of {members} was rejected on replay: {exc}"
        ) from exc
    report.records_replayed += 1
    db.stats.wal_replayed_records += 1


def _replay_bare(db, report: RecoveryReport, record: dict) -> None:
    """Re-apply one auto-committed mutation record.

    Only validated mutations are logged, and replay walks the same
    state trajectory the original run did, so a rejection here means
    the log is corrupt in a way the checksums could not see.
    """
    from repro.engine.database import ConstraintViolationError

    op = decode_batch_op(record)
    try:
        if op[0] == "insert":
            db.insert(op[1], op[2])
        elif op[0] == "update":
            db.update(op[1], op[2], op[3])
        else:
            db.delete(op[1], op[2])
    except (ConstraintViolationError, KeyError) as exc:
        raise RecoveryError(
            f"logged record lsn={record.get('lsn')} was rejected on "
            f"replay: {exc}"
        ) from exc
    report.records_replayed += 1
    db.stats.wal_replayed_records += 1


def _replay_group(
    db,
    report: RecoveryReport,
    tracer: Tracer | None,
    txn: int | None,
    buffered: list[dict],
) -> None:
    """Re-apply one committed transaction group atomically.

    ``apply_batch`` defers reference checks to the group's final state,
    matching the acceptance semantics of ``insert_many``/``apply_batch``
    /``transaction()`` that produced the group.
    """
    from repro.engine.database import ConstraintViolationError

    if txn is None:
        raise RecoveryError("commit marker outside a transaction")
    if any(r.get("op") == "merge" for r in buffered):
        # An online schema merge travels alone inside its bracket
        # (Database.apply_merge_online quiesces the writer first).
        if len(buffered) != 1:
            raise RecoveryError(
                f"transaction {txn} mixes a merge record with mutations"
            )
        _replay_merge(db, report, buffered[0])
        report.transactions_replayed += 1
        return
    if buffered:
        try:
            db.apply_batch([decode_batch_op(r) for r in buffered])
        except (ConstraintViolationError, KeyError) as exc:
            raise RecoveryError(
                f"committed transaction {txn} was rejected on replay: "
                f"{exc}"
            ) from exc
    report.records_replayed += len(buffered)
    report.transactions_replayed += 1
    db.stats.wal_replayed_records += len(buffered)


def _drop_group(
    db,
    report: RecoveryReport,
    tracer: Tracer | None,
    txn: int | None,
    n_records: int,
) -> None:
    """Roll an uncommitted/aborted group back (drop its records)."""
    report.transactions_rolled_back += 1
    report.records_rolled_back += n_records
    db.stats.wal_rolled_back_records += n_records
    _emit(
        tracer,
        op="rollback",
        kind="wal-rollback",
        rule=paper_rule("wal-rollback"),
        outcome="rolled-back",
        rows=n_records,
        detail=f"transaction {txn}",
    )
