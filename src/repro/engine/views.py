"""Object-level views over merged relations.

After a migration, applications still think in the original object-sets
(COURSE, OFFER, TEACH...).  :class:`MergedViewResolver` keeps that API
working against the merged database: member-level lookups, scans and
existence tests are answered from the single wide relation using the
provenance metadata (:class:`~repro.core.merge.MergedSchemeInfo`), so a
"virtual TEACH table" costs a primary-key probe, not a join.

Key translation: a member's primary-key value corresponds positionally
to the merged key ``Km`` (the total-equality correspondence of
Definition 4.1), so ``member_get("OFFER", ("crs-1",))`` probes
``Rm[Km = ("crs-1",)]`` and projects the OFFER attributes -- returning
``None`` when the member's required attributes are null there (the
object is absent).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.merge import MergedSchemeInfo
from repro.engine.database import Database
from repro.relational.tuples import Tuple


class MergedViewResolver:
    """Answers member-level queries against one merged relation."""

    def __init__(self, db: Database, info: MergedSchemeInfo):
        if not db.schema.has_scheme(info.merged_name):
            raise KeyError(
                f"database schema has no merged scheme {info.merged_name!r}"
            )
        self.db = db
        self.info = info

    def members(self) -> tuple[str, ...]:
        """The original object-set names this view can resolve."""
        return self.info.family

    def _project_member(self, member: str, row: Tuple) -> Tuple | None:
        required = self.info.required_remaining(member)
        if not row.is_total_on(required):
            return None
        present = [
            a
            for a in self.info.family_attrs[member]
            if a in row
        ]
        return row.subtuple(present)

    def member_get(
        self, member: str, key: tuple[Any, ...] | Any
    ) -> Tuple | None:
        """The ``member`` row keyed by its original primary-key value, or
        ``None`` when that object does not exist (one lookup, no join)."""
        if member not in self.info.family:
            raise KeyError(f"{member!r} is not part of {self.info.merged_name}")
        if not isinstance(key, tuple):
            key = (key,)
        row = self.db.get(self.info.merged_name, key)
        if row is None:
            return None
        return self._project_member(member, row)

    def member_scan(self, member: str) -> Iterator[Tuple]:
        """All present ``member`` rows (one scan of the merged relation)."""
        if member not in self.info.family:
            raise KeyError(f"{member!r} is not part of {self.info.merged_name}")
        for row in self.db.scan(self.info.merged_name):
            projected = self._project_member(member, row)
            if projected is not None:
                yield projected

    def member_count(self, member: str) -> int:
        """Number of present ``member`` objects."""
        return sum(1 for _ in self.member_scan(member))

    def object_profile(
        self, key: tuple[Any, ...] | Any
    ) -> dict[str, Tuple | None]:
        """Every member's row for one key value -- the whole-object read
        that costs three joins on the unmerged schema and one lookup
        here."""
        if not isinstance(key, tuple):
            key = (key,)
        row = self.db.get(self.info.merged_name, key)
        if row is None:
            return {member: None for member in self.info.family}
        return {
            member: self._project_member(member, row)
            for member in self.info.family
        }
