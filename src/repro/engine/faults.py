"""Deterministic fault injection for the write-ahead log's storage.

The crash-point test matrix (``tests/engine/test_recovery.py``) needs
to crash the engine at *every* log write a workload performs and prove
recovery restores a consistent state each time.  :class:`FaultyStorage`
wraps any :class:`~repro.engine.wal.Storage` and fires exactly one
fault at the Nth write -- deterministically, so a failing site number
is a reproducible test case, not a flake.

Three fault kinds model the three ways a crashing disk loses a record:

``fail``
    The write raises before a single byte lands (process died before
    the syscall).
``short``
    A prefix of the data lands, then the write raises (power loss mid
    write; the classic torn record).
``corrupt``
    The full length lands but one byte near the end is flipped, and the
    write *succeeds silently* (firmware lied; only the checksum can
    tell).

``append`` and ``replace`` share one write-site counter, so checkpoint
writes are crash sites like any other.
"""

from __future__ import annotations

from repro.engine.wal import MemoryStorage, Storage


class InjectedFault(OSError):
    """The deliberate storage failure raised by :class:`FaultyStorage`.

    Subclasses :class:`OSError` so engine code cannot tell it from a
    genuine disk error.
    """

    def __init__(self, site: int, kind: str):
        super().__init__(f"injected {kind} fault at write site {site}")
        #: Zero-based index of the write that faulted.
        self.site = site
        #: ``"fail"`` or ``"short"`` (``corrupt`` never raises).
        self.kind = kind


def _corrupt(data: bytes) -> bytes:
    """``data`` with one byte near the end flipped (inside the JSON
    body of the final record, past its length/crc prefix, so the
    checksum -- not the framing -- must catch it)."""
    if not data:
        return data
    index = len(data) - 2 if len(data) >= 2 else 0
    return data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1 :]


class FaultyStorage:
    """A :class:`~repro.engine.wal.Storage` decorator that fires one
    deterministic fault at the Nth write.

    Exactly one of ``fail_at`` / ``short_write_at`` / ``corrupt_at``
    is normally set (they may be combined; each fires at its own site).
    Sites count every ``append`` *and* ``replace``, in call order,
    starting at 0.  Reads, truncates, and all writes at other sites
    pass through untouched.
    """

    def __init__(
        self,
        base: Storage | None = None,
        *,
        fail_at: int | None = None,
        short_write_at: int | None = None,
        corrupt_at: int | None = None,
    ):
        self.base: Storage = base if base is not None else MemoryStorage()
        self.fail_at = fail_at
        self.short_write_at = short_write_at
        self.corrupt_at = corrupt_at
        #: Writes seen so far; the next write is site ``writes``.
        self.writes = 0
        #: ``(site, kind)`` pairs of faults that have fired.
        self.faults_fired: list[tuple[int, str]] = []

    def _filter(self, data: bytes) -> bytes:
        """Apply this site's fault (if any) to ``data``; raises for the
        raising kinds, returns possibly corrupted bytes otherwise."""
        site = self.writes
        self.writes += 1
        if site == self.fail_at:
            self.faults_fired.append((site, "fail"))
            raise InjectedFault(site, "fail")
        if site == self.short_write_at:
            self.faults_fired.append((site, "short"))
            self.base.append(data[: max(1, len(data) // 2)])
            raise InjectedFault(site, "short")
        if site == self.corrupt_at:
            self.faults_fired.append((site, "corrupt"))
            return _corrupt(data)
        return data

    def append(self, data: bytes) -> None:
        """Append through the base storage, faulting at this site if
        one is scheduled."""
        self.base.append(self._filter(data))

    def replace(self, data: bytes) -> None:
        """Replace through the base storage, faulting at this site if
        one is scheduled.  A ``short`` fault here models a crash before
        the atomic rename: the original contents survive untouched."""
        site = self.writes
        self.writes += 1
        if site == self.fail_at:
            self.faults_fired.append((site, "fail"))
            raise InjectedFault(site, "fail")
        if site == self.short_write_at:
            self.faults_fired.append((site, "short"))
            raise InjectedFault(site, "short")
        if site == self.corrupt_at:
            self.faults_fired.append((site, "corrupt"))
            data = _corrupt(data)
        self.base.replace(data)

    def read(self) -> bytes:
        """Pass through to the base storage."""
        return self.base.read()

    def truncate(self, size: int) -> None:
        """Pass through to the base storage."""
        self.base.truncate(size)

    def size(self) -> int:
        """Pass through to the base storage."""
        return self.base.size()

    def sync(self) -> None:
        """Pass through to the base storage (a sync moves no record
        bytes, so it is not a fault site of its own)."""
        self.base.sync()

    def close(self) -> None:
        """Pass through to the base storage."""
        self.base.close()
