"""Operation counters and latency histograms for the access benchmarks."""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields

from repro.obs.histogram import LatencyHistogram


@dataclass
class EngineStats:
    """Counts (and latency distributions) of the work a database/query-
    engine pair performed.

    ``joins_performed`` counts relation-to-relation navigations (the
    quantity merging is supposed to reduce); ``lookups`` counts primary-
    key accesses (including the primary-key probe inside a navigation);
    ``tuples_scanned`` counts tuples touched by scans and fallback
    constraint checks.  ``index_hits`` / ``index_misses`` count reference
    and navigation checks answered by (resp. falling through) the
    engine's key and reverse-reference indexes, and ``bulk_rows`` counts
    rows that moved through a bulk path (``load_state``, ``insert_many``,
    ``apply_batch``).

    The ``wal_*`` counters track the durability subsystem
    (:mod:`repro.engine.wal`): records and bytes appended to the log,
    records replayed and transactions' records rolled back during
    :meth:`~repro.engine.database.Database.recover`, bytes truncated
    off a torn log tail, and ``checkpoints`` taken.
    ``wal_group_commits`` / ``wal_batched_records`` count group-commit
    sync barriers and the records they made durable (see
    :meth:`repro.engine.wal.WriteAheadLog.sync`); their ratio is the
    achieved batching factor.

    ``latencies`` maps an operation name to a
    :class:`~repro.obs.histogram.LatencyHistogram`; it stays empty
    unless something calls :meth:`observe` (the engine does when
    constructed with ``record_latencies=True``, and the benchmark
    harness does around every measured op).

    ``ind_joins`` and ``scheme_mutations`` are the merge advisor's
    workload profile (see ``docs/ADVISOR.md``): navigations along one
    inclusion dependency -- both directions, ``join_to`` pk-probes and
    ``find_referencing`` reverse probes alike -- keyed by the IND's
    string form, and mutations (insert/update/delete) keyed by scheme
    name.  Their ratio per candidate family is what
    :class:`~repro.core.planner.MergePlanner`'s workload-aware mode
    scores.

    ``reset`` and ``snapshot`` are driven by ``dataclasses.fields`` so a
    newly added counter can never be silently missed by either; fields
    with factory defaults (like ``latencies``) reset through their
    factory.
    """

    inserts: int = 0
    deletes: int = 0
    updates: int = 0
    lookups: int = 0
    joins_performed: int = 0
    tuples_scanned: int = 0
    constraint_checks: int = 0
    index_hits: int = 0
    index_misses: int = 0
    bulk_rows: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    wal_replayed_records: int = 0
    wal_rolled_back_records: int = 0
    wal_truncated_bytes: int = 0
    wal_group_commits: int = 0
    wal_batched_records: int = 0
    checkpoints: int = 0
    ind_joins: dict[str, int] = field(default_factory=dict)
    scheme_mutations: dict[str, int] = field(default_factory=dict)
    latencies: dict[str, LatencyHistogram] = field(default_factory=dict)

    def observe(self, op: str, seconds: float) -> None:
        """Record one operation latency into the ``op`` histogram."""
        hist = self.latencies.get(op)
        if hist is None:
            hist = self.latencies[op] = LatencyHistogram()
        hist.record(seconds)

    def count_ind_join(self, ind: str) -> None:
        """Record one navigation along the inclusion dependency ``ind``."""
        self.ind_joins[ind] = self.ind_joins.get(ind, 0) + 1

    def count_scheme_mutation(self, scheme: str) -> None:
        """Record one mutation (insert/update/delete) of ``scheme``."""
        self.scheme_mutations[scheme] = (
            self.scheme_mutations.get(scheme, 0) + 1
        )

    def reset(self) -> None:
        """Zero every counter (every dataclass field, by construction).

        A field with a factory default is re-created through
        ``default_factory`` -- using ``f.default`` there would assign the
        ``MISSING`` sentinel.
        """
        for f in fields(self):
            if f.default_factory is not MISSING:
                setattr(self, f.name, f.default_factory())
            else:
                setattr(self, f.name, f.default)

    def snapshot(self) -> dict[str, object]:
        """A plain-dict copy of every field, for reporting; histograms
        appear as their JSON-ready summaries.

        Safe against concurrent :meth:`observe` calls from cooperative
        tasks (the server's handlers observe into the same stats object
        a ``stats`` verb is snapshotting): the ``latencies`` dict is
        copied via ``list(...)`` before iteration, so a histogram added
        -- or the dict swapped by a reentrant :meth:`reset` -- mid-walk
        cannot raise ``RuntimeError: dict changed size``.
        """
        out: dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "latencies":
                value = {op: hist.to_dict() for op, hist in list(value.items())}
            elif isinstance(value, dict):
                value = dict(value)
            out[f.name] = value
        return out

    def to_json(self) -> dict[str, object]:
        """Alias of :meth:`snapshot` (the JSON-ready export)."""
        return self.snapshot()

    def to_prometheus(self, prefix: str = "repro_engine") -> str:
        """The counters and latency histograms in Prometheus text
        exposition format (counters plus cumulative ``le`` buckets)."""
        lines: list[str] = []
        labeled = {"ind_joins": "ind", "scheme_mutations": "scheme"}
        for f in fields(self):
            if f.name == "latencies":
                continue
            if f.name in labeled:
                label = labeled[f.name]
                series = getattr(self, f.name)
                if not series:
                    continue
                lines.append(f"# TYPE {prefix}_{f.name} counter")
                for key in sorted(series):
                    escaped = (
                        str(key)
                        .replace("\\", "\\\\")
                        .replace('"', '\\"')
                        .replace("\n", "\\n")
                    )
                    lines.append(
                        f'{prefix}_{f.name}{{{label}="{escaped}"}} '
                        f"{series[key]}"
                    )
                continue
            lines.append(f"# TYPE {prefix}_{f.name} counter")
            lines.append(f"{prefix}_{f.name} {getattr(self, f.name)}")
        if self.latencies:
            metric = f"{prefix}_op_latency_seconds"
            lines.append(f"# TYPE {metric} histogram")
            for op in sorted(self.latencies):
                hist = self.latencies[op]
                lines.append(
                    hist.to_prometheus(metric, labels={"op": op}).rstrip("\n")
                )
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"EngineStats({parts})"
