"""Operation counters for the access-performance benchmarks."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EngineStats:
    """Counts of the work a database/query-engine pair performed.

    ``joins_performed`` counts relation-to-relation navigations (the
    quantity merging is supposed to reduce); ``lookups`` counts primary-
    key accesses; ``tuples_scanned`` counts tuples touched by scans and
    constraint checks.
    """

    inserts: int = 0
    deletes: int = 0
    updates: int = 0
    lookups: int = 0
    joins_performed: int = 0
    tuples_scanned: int = 0
    constraint_checks: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.inserts = 0
        self.deletes = 0
        self.updates = 0
        self.lookups = 0
        self.joins_performed = 0
        self.tuples_scanned = 0
        self.constraint_checks = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy, for reporting."""
        return {
            "inserts": self.inserts,
            "deletes": self.deletes,
            "updates": self.updates,
            "lookups": self.lookups,
            "joins_performed": self.joins_performed,
            "tuples_scanned": self.tuples_scanned,
            "constraint_checks": self.constraint_checks,
        }

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"EngineStats({parts})"
