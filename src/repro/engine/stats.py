"""Operation counters for the access-performance benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class EngineStats:
    """Counts of the work a database/query-engine pair performed.

    ``joins_performed`` counts relation-to-relation navigations (the
    quantity merging is supposed to reduce); ``lookups`` counts primary-
    key accesses (including the primary-key probe inside a navigation);
    ``tuples_scanned`` counts tuples touched by scans and fallback
    constraint checks.  ``index_hits`` / ``index_misses`` count reference
    and navigation checks answered by (resp. falling through) the
    engine's key and reverse-reference indexes, and ``bulk_rows`` counts
    rows that moved through a bulk path (``load_state``, ``insert_many``,
    ``apply_batch``).

    ``reset`` and ``snapshot`` are driven by ``dataclasses.fields`` so a
    newly added counter can never be silently missed by either.
    """

    inserts: int = 0
    deletes: int = 0
    updates: int = 0
    lookups: int = 0
    joins_performed: int = 0
    tuples_scanned: int = 0
    constraint_checks: int = 0
    index_hits: int = 0
    index_misses: int = 0
    bulk_rows: int = 0

    def reset(self) -> None:
        """Zero every counter (every dataclass field, by construction)."""
        for f in fields(self):
            setattr(self, f.name, f.default)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of every counter, for reporting."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"EngineStats({parts})"
