"""A mutable, constraint-enforcing database over one relational schema.

Rows are indexed by primary key; every mutation enforces:

* per-tuple null constraints of the affected scheme (the single-tuple
  semantics of Section 3 makes them checkable on the new row alone);
* primary/candidate key uniqueness (candidate keys with nulls follow the
  total-left-hand-side FD semantics of Section 5.1);
* inclusion dependencies: on insert/update, referenced values must exist;
  on delete/update, referencing rows restrict the mutation.

This is the behaviour the paper expects triggers (SYBASE), rules
(INGRES) or validprocs (DB2) to implement; having it natively lets the
benchmarks run merged and unmerged schemas under identical enforcement.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.constraints.nulls import NullConstraint
from repro.relational.relation import Relation
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.state import DatabaseState
from repro.relational.tuples import Tuple, is_null
from repro.engine.stats import EngineStats


class ConstraintViolationError(ValueError):
    """A mutation was rejected; carries which constraint failed."""

    def __init__(self, constraint: str, detail: str):
        self.constraint = constraint
        self.detail = detail
        super().__init__(f"{constraint}: {detail}")


class _Table:
    """One stored relation: primary-key index, candidate-key indexes, and
    value-count indexes for the column groups inclusion dependencies
    touch (so reference checks are O(1) instead of scans)."""

    def __init__(self, scheme: RelationScheme):
        self.scheme = scheme
        self.rows: dict[tuple[Any, ...], Tuple] = {}
        self.key_indexes: dict[tuple[str, ...], dict[tuple[Any, ...], tuple[Any, ...]]] = {
            tuple(a.name for a in key): {}
            for key in scheme.candidate_keys
            if tuple(a.name for a in key) != scheme.key_names
        }
        #: value tuple -> number of rows carrying it, per indexed group.
        self.group_indexes: dict[tuple[str, ...], dict[tuple[Any, ...], int]] = {}

    def add_group_index(self, attrs: tuple[str, ...]) -> None:
        """Register a value-count index over a column group."""
        if attrs != self.scheme.key_names:
            self.group_indexes.setdefault(attrs, {})

    def pk_of(self, t: Tuple) -> tuple[Any, ...]:
        """The primary-key value tuple of a stored row."""
        return tuple(t[name] for name in self.scheme.key_names)

    def __len__(self) -> int:
        return len(self.rows)


class Database:
    """A mutable database state with incremental constraint enforcement.

    ``null_semantics`` selects how candidate keys treat nulls:

    * ``"distinct"`` (default): a nullable candidate key binds only when
      total -- the formal semantics the merged schemas need;
    * ``"identical"``: all null values are considered identical, as in
      SYBASE 4.0 and INGRES 6.3 (Section 5.1) -- two rows with a null
      candidate key then *clash*, which is exactly why such systems
      "cannot maintain keys that are allowed to be null" and why
      Proposition 5.1(ii) matters.
    """

    def __init__(
        self,
        schema: RelationalSchema,
        stats: EngineStats | None = None,
        null_semantics: str = "distinct",
    ):
        if null_semantics not in ("distinct", "identical"):
            raise ValueError(
                "null_semantics must be 'distinct' or 'identical'"
            )
        self.null_semantics = null_semantics
        self.schema = schema
        self.stats = stats if stats is not None else EngineStats()
        self._tables: dict[str, _Table] = {
            s.name: _Table(s) for s in schema.schemes
        }
        self._null_constraints: dict[str, list[NullConstraint]] = {
            s.name: list(schema.null_constraints_of(s.name))
            for s in schema.schemes
        }
        self._outgoing = {
            s.name: [
                ind
                for ind in schema.inds
                if ind.lhs_scheme == s.name
            ]
            for s in schema.schemes
        }
        self._incoming = {
            s.name: [
                ind
                for ind in schema.inds
                if ind.rhs_scheme == s.name
            ]
            for s in schema.schemes
        }
        # Index every column group an inclusion dependency touches:
        # right-hand sides for existence checks, left-hand sides for
        # restrict checks on delete/update.
        for ind in schema.inds:
            self._tables[ind.rhs_scheme].add_group_index(tuple(ind.rhs_attrs))
            self._tables[ind.lhs_scheme].add_group_index(tuple(ind.lhs_attrs))
        #: Undo log of the innermost open transaction (None outside one).
        self._undo_log: list[tuple[str, _Table, tuple[Any, ...], Tuple | None]] | None = None

    # -- access ----------------------------------------------------------

    def table(self, scheme_name: str) -> _Table:
        """The stored table for one relation-scheme."""
        try:
            return self._tables[scheme_name]
        except KeyError:
            raise KeyError(f"no relation named {scheme_name!r}") from None

    def get(self, scheme_name: str, pk: tuple[Any, ...] | Any) -> Tuple | None:
        """Primary-key lookup; counts as one lookup."""
        if not isinstance(pk, tuple):
            pk = (pk,)
        self.stats.lookups += 1
        return self.table(scheme_name).rows.get(pk)

    def scan(self, scheme_name: str) -> Iterable[Tuple]:
        """Full scan; counts every tuple touched."""
        table = self.table(scheme_name)
        self.stats.tuples_scanned += len(table.rows)
        return list(table.rows.values())

    def count(self, scheme_name: str) -> int:
        """Current row count of one relation."""
        return len(self.table(scheme_name))

    def state(self) -> DatabaseState:
        """An immutable snapshot of the current contents."""
        return DatabaseState(
            {
                name: Relation(table.scheme.attributes, table.rows.values())
                for name, table in self._tables.items()
            }
        )

    # -- validation helpers -----------------------------------------------

    def _check_shape(self, table: _Table, row: Mapping[str, Any]) -> Tuple:
        expected = set(table.scheme.attribute_names)
        given = set(row)
        if given != expected:
            missing = expected - given
            extra = given - expected
            raise ConstraintViolationError(
                "structure",
                f"{table.scheme.name}: row attributes mismatch "
                f"(missing {sorted(missing)}, unexpected {sorted(extra)})",
            )
        return Tuple(row)

    def _check_null_constraints(self, scheme_name: str, t: Tuple) -> None:
        for constraint in self._null_constraints[scheme_name]:
            self.stats.constraint_checks += 1
            if not constraint.holds_for(t):
                raise ConstraintViolationError(str(constraint), f"row {t!r}")

    def _check_keys(
        self, table: _Table, t: Tuple, replacing: tuple[Any, ...] | None
    ) -> None:
        pk = table.pk_of(t)
        if any(is_null(v) for v in pk):
            raise ConstraintViolationError(
                "primary-key",
                f"{table.scheme.name}: primary key contains nulls: {pk!r}",
            )
        self.stats.constraint_checks += 1
        if pk in table.rows and pk != replacing:
            raise ConstraintViolationError(
                "primary-key",
                f"{table.scheme.name}: duplicate primary key {pk!r}",
            )
        for key_names, index in table.key_indexes.items():
            value = tuple(t[name] for name in key_names)
            if any(is_null(v) for v in value):
                if self.null_semantics == "distinct":
                    continue  # binds only when total
                # 'identical' semantics (SYBASE/INGRES, Section 5.1):
                # nulls compare equal, so a partially-null key value
                # occupies an index slot like any other.
            self.stats.constraint_checks += 1
            owner = index.get(value)
            if owner is not None and owner != replacing:
                raise ConstraintViolationError(
                    "candidate-key",
                    f"{table.scheme.name}: duplicate candidate key "
                    f"{dict(zip(key_names, value))!r} "
                    f"({self.null_semantics} null semantics)",
                )

    def _check_references_out(self, scheme_name: str, t: Tuple) -> None:
        for ind in self._outgoing[scheme_name]:
            value = tuple(t[a] for a in ind.lhs_attrs)
            if any(is_null(v) for v in value):
                continue
            self.stats.constraint_checks += 1
            if not self._referenced_exists(ind.rhs_scheme, ind.rhs_attrs, value):
                raise ConstraintViolationError(
                    str(ind),
                    f"no {ind.rhs_scheme} row with "
                    f"{dict(zip(ind.rhs_attrs, value))!r}",
                )

    def _referenced_exists(
        self, scheme_name: str, attrs: tuple[str, ...], value: tuple[Any, ...]
    ) -> bool:
        table = self.table(scheme_name)
        if tuple(attrs) == table.scheme.key_names:
            return value in table.rows
        index = table.group_indexes.get(tuple(attrs))
        if index is not None:
            return index.get(value, 0) > 0
        self.stats.tuples_scanned += len(table.rows)
        return any(
            tuple(row[a] for a in attrs) == value
            for row in table.rows.values()
        )

    def _referencing_rows_exist(
        self,
        scheme_name: str,
        old: Tuple,
        ignore_self_pk: tuple[Any, ...] | None = None,
    ) -> str | None:
        """Description of a restricting reference into ``old``, if any."""
        for ind in self._incoming[scheme_name]:
            target_value = tuple(old[a] for a in ind.rhs_attrs)
            if any(is_null(v) for v in target_value):
                continue
            child = self.table(ind.lhs_scheme)
            needs_scan = ignore_self_pk is not None and ind.lhs_scheme == scheme_name
            if not needs_scan:
                if tuple(ind.lhs_attrs) == child.scheme.key_names:
                    if target_value in child.rows:
                        return f"{ind} (from {ind.lhs_scheme})"
                    continue
                index = child.group_indexes.get(tuple(ind.lhs_attrs))
                if index is not None:
                    if index.get(target_value, 0) > 0:
                        return f"{ind} (from {ind.lhs_scheme})"
                    continue
            self.stats.tuples_scanned += len(child.rows)
            for pk, row in child.rows.items():
                if (
                    ind.lhs_scheme == scheme_name
                    and ignore_self_pk is not None
                    and pk == ignore_self_pk
                ):
                    continue
                if tuple(row[a] for a in ind.lhs_attrs) == target_value:
                    return f"{ind} (row {pk!r} of {ind.lhs_scheme})"
        return None

    # -- mutations -----------------------------------------------------------

    def insert(self, scheme_name: str, row: Mapping[str, Any]) -> Tuple:
        """Insert one row; raises :class:`ConstraintViolationError` when
        any constraint would be violated."""
        table = self.table(scheme_name)
        t = self._check_shape(table, row)
        self._check_null_constraints(scheme_name, t)
        self._check_keys(table, t, replacing=None)
        self._check_references_out(scheme_name, t)
        self._store(table, t)
        self.stats.inserts += 1
        return t

    def delete(self, scheme_name: str, pk: tuple[Any, ...] | Any) -> None:
        """Delete by primary key, restricting when referenced."""
        if not isinstance(pk, tuple):
            pk = (pk,)
        table = self.table(scheme_name)
        old = table.rows.get(pk)
        if old is None:
            raise KeyError(f"{scheme_name}: no row with key {pk!r}")
        blocker = self._referencing_rows_exist(scheme_name, old)
        if blocker is not None:
            raise ConstraintViolationError(
                "restrict-delete", f"{scheme_name} row {pk!r} referenced via {blocker}"
            )
        self._unstore(table, pk, old)
        self.stats.deletes += 1

    def update(
        self, scheme_name: str, pk: tuple[Any, ...] | Any, updates: Mapping[str, Any]
    ) -> Tuple:
        """Update one row by primary key."""
        if not isinstance(pk, tuple):
            pk = (pk,)
        table = self.table(scheme_name)
        old = table.rows.get(pk)
        if old is None:
            raise KeyError(f"{scheme_name}: no row with key {pk!r}")
        t = old.with_values(dict(updates))
        self._check_null_constraints(scheme_name, t)
        self._check_keys(table, t, replacing=pk)
        self._check_references_out(scheme_name, t)
        # Referenced attribute values must not change under incoming
        # references (restrict semantics on update).
        changed = {
            name for name in updates if old[name] != t[name]
        }
        for ind in self._incoming[scheme_name]:
            if changed & set(ind.rhs_attrs):
                blocker = self._referencing_rows_exist(
                    scheme_name, old, ignore_self_pk=pk
                )
                if blocker is not None:
                    raise ConstraintViolationError(
                        "restrict-update",
                        f"{scheme_name} row {pk!r} referenced via {blocker}",
                    )
                break
        self._unstore(table, pk, old)
        self._store(table, t)
        self.stats.updates += 1
        return t

    def load_state(self, state: DatabaseState, validate: bool = True) -> None:
        """Bulk-load an existing state (e.g. the image of a state mapping).

        With ``validate`` the final contents are checked wholesale via the
        consistency checker, which is much cheaper than per-row checks
        with inter-row ordering concerns.
        """
        if self.in_transaction:
            raise ConstraintViolationError(
                "bulk-load", "cannot bulk-load inside a transaction"
            )
        for name, relation in state.items():
            table = self.table(name)
            table.rows.clear()
            for index in table.key_indexes.values():
                index.clear()
            for counts in table.group_indexes.values():
                counts.clear()
            for t in relation:
                self._store_raw(table, t)
        if validate:
            from repro.constraints.checker import ConsistencyChecker

            violations = ConsistencyChecker(self.schema).violations(self.state())
            if violations:
                raise ConstraintViolationError(
                    "bulk-load", "; ".join(str(v) for v in violations[:5])
                )

    # -- transactions -----------------------------------------------------------

    def transaction(self) -> "_TransactionContext":
        """A context manager giving all-or-nothing mutation semantics::

            with db.transaction():
                db.insert(...)
                db.update(...)

        On any exception inside the block, every mutation performed in it
        is undone (the paper's DBMS triggers ``ROLLBACK TRANSACTION`` on
        violations; this is the same discipline).  Transactions nest: an
        inner failure unwinds to the inner boundary only.
        """
        return _TransactionContext(self)

    @property
    def in_transaction(self) -> bool:
        """Whether a transaction block is currently open."""
        return self._undo_log is not None

    def _journal(
        self,
        op: str,
        table: _Table,
        pk: tuple[Any, ...],
        old: Tuple | None,
    ) -> None:
        if self._undo_log is not None:
            self._undo_log.append((op, table, pk, old))

    def _rollback_to(self, mark: int) -> None:
        assert self._undo_log is not None
        while len(self._undo_log) > mark:
            op, table, pk, old = self._undo_log.pop()
            if op == "store":
                current = table.rows.get(pk)
                if current is not None:
                    self._unstore_raw(table, pk, current)
            else:  # "unstore"
                assert old is not None
                self._store_raw(table, old)

    # -- low-level storage ---------------------------------------------------

    def _store(self, table: _Table, t: Tuple) -> None:
        self._journal("store", table, table.pk_of(t), None)
        self._store_raw(table, t)

    def _unstore(self, table: _Table, pk: tuple[Any, ...], old: Tuple) -> None:
        self._journal("unstore", table, pk, old)
        self._unstore_raw(table, pk, old)

    def _store_raw(self, table: _Table, t: Tuple) -> None:
        pk = table.pk_of(t)
        table.rows[pk] = t
        for key_names, index in table.key_indexes.items():
            value = tuple(t[name] for name in key_names)
            if (
                not any(is_null(v) for v in value)
                or self.null_semantics == "identical"
            ):
                index[value] = pk
        for attrs, counts in table.group_indexes.items():
            value = tuple(t[name] for name in attrs)
            if not any(is_null(v) for v in value):
                counts[value] = counts.get(value, 0) + 1

    def _unstore_raw(self, table: _Table, pk: tuple[Any, ...], old: Tuple) -> None:
        del table.rows[pk]
        for key_names, index in table.key_indexes.items():
            value = tuple(old[name] for name in key_names)
            if index.get(value) == pk:
                del index[value]
        for attrs, counts in table.group_indexes.items():
            value = tuple(old[name] for name in attrs)
            if not any(is_null(v) for v in value):
                remaining = counts.get(value, 0) - 1
                if remaining > 0:
                    counts[value] = remaining
                else:
                    counts.pop(value, None)


class _TransactionContext:
    """Context manager implementing :meth:`Database.transaction`."""

    def __init__(self, db: Database):
        self._db = db
        self._mark: int | None = None
        self._outermost = False

    def __enter__(self) -> "Database":
        if self._db._undo_log is None:
            self._db._undo_log = []
            self._outermost = True
        self._mark = len(self._db._undo_log)
        return self._db

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._mark is not None
        if exc_type is not None:
            self._db._rollback_to(self._mark)
        if self._outermost:
            self._db._undo_log = None
        return False
