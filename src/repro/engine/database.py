"""A mutable, constraint-enforcing database over one relational schema.

Rows are indexed by primary key; every mutation enforces:

* per-tuple null constraints of the affected scheme (the single-tuple
  semantics of Section 3 makes them checkable on the new row alone);
* primary/candidate key uniqueness (candidate keys with nulls follow the
  total-left-hand-side FD semantics of Section 5.1);
* inclusion dependencies: on insert/update, referenced values must exist;
  on delete/update, referencing rows restrict the mutation.

This is the behaviour the paper expects triggers (SYBASE), rules
(INGRES) or validprocs (DB2) to implement; having it natively lets the
benchmarks run merged and unmerged schemas under identical enforcement.

Two layers keep the enforcement fast (see ``docs/PERFORMANCE.md``):

* **compiled access plans** (:mod:`repro.engine.plans`) -- every
  projection a mutation needs (primary key, candidate keys, both sides
  of every inclusion dependency, null-constraint groups) is compiled
  once per schema into an ``itemgetter``-backed extractor;
* **reverse-reference indexes** -- for every column group an inclusion
  dependency touches, the owning table keeps ``value -> {pk: None}``
  (insertion-ordered), so existence checks, restrict checks and
  ``find_referencing`` are O(1)/O(k) instead of scans.  Only *total*
  values are indexed: the paper defines inclusion-dependency
  satisfaction over total projections, which holds under both the
  ``distinct`` and the ``identical`` null semantics; candidate-key
  indexes, by contrast, do differ by mode (``identical`` indexes
  partially-null key values too, which is why SYBASE/INGRES reject
  duplicate null keys).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.engine.plans import (
    CompiledReference,
    SchemeAccessPlan,
    attr_extractor,
    compile_schema,
)
from repro.engine.rows import bulk_apply, bulk_insert_many
from repro.engine.stats import EngineStats
from repro.engine.wal import (
    WalError,
    WriteAheadLog,
    delete_record,
    insert_record,
    merge_record,
    update_record,
)
from repro.io.state_json import decode_value
from repro.obs.rules import classify_null_constraint, paper_rule
from repro.obs.trace import TraceEvent, Tracer
from repro.relational.relation import Relation
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.state import DatabaseState
from repro.relational.tuples import NULL, Tuple


class ConstraintViolationError(ValueError):
    """A mutation was rejected; carries which constraint failed.

    ``constraint`` is the constraint id (the label the seed engine
    always raised with); ``kind`` is the violation-kind string used for
    rule lookup (defaults to ``constraint``, which is already a kind
    for labels like ``restrict-delete``); ``rule`` is the paper-rule
    label (:data:`repro.obs.rules.PAPER_RULES`), derived from ``kind``
    when not given.
    """

    def __init__(
        self,
        constraint: str,
        detail: str,
        kind: str | None = None,
        rule: str | None = None,
    ):
        self.constraint = constraint
        self.detail = detail
        self.kind = kind if kind is not None else constraint
        self.rule = rule if rule is not None else paper_rule(self.kind)
        super().__init__(f"{constraint}: {detail}")


class _Table:
    """One stored relation: primary-key index, candidate-key indexes, and
    reverse-reference indexes (``value -> {pk: None}``, insertion-ordered)
    for the column groups inclusion dependencies touch, so reference and
    restrict checks are O(1) and ``find_referencing`` is O(k)."""

    __slots__ = (
        "scheme",
        "plan",
        "rows",
        "key_indexes",
        "group_indexes",
        "group_extractors",
        "version",
    )

    def __init__(self, scheme: RelationScheme, plan: SchemeAccessPlan):
        self.scheme = scheme
        self.plan = plan
        self.rows: dict[tuple[Any, ...], Tuple] = {}
        self.key_indexes: dict[tuple[str, ...], dict[tuple[Any, ...], tuple[Any, ...]]] = {
            key_names: {} for key_names, _ in plan.candidate_keys
        }
        #: value tuple -> ordered set of primary keys carrying it, per
        #: indexed group (a dict-of-None preserves row insertion order,
        #: so index-backed answers match the seed's scan order).
        self.group_indexes: dict[
            tuple[str, ...], dict[tuple[Any, ...], dict[tuple[Any, ...], None]]
        ] = {}
        self.group_extractors: dict[tuple[str, ...], Any] = {}
        #: Mutation counter; scans snapshot it to stay iteration-safe.
        self.version = 0

    def add_group_index(self, attrs: tuple[str, ...]) -> None:
        """Register a reverse-reference index over a column group (and
        backfill it from any rows already stored)."""
        attrs = tuple(attrs)
        if attrs == self.plan.key_names or attrs in self.group_indexes:
            return
        extract = attr_extractor(attrs)
        index: dict[tuple[Any, ...], dict[tuple[Any, ...], None]] = {}
        for pk, t in self.rows.items():
            value = extract(t.mapping)
            if not any(v is NULL for v in value):
                index.setdefault(value, {})[pk] = None
        self.group_indexes[attrs] = index
        self.group_extractors[attrs] = extract

    def pk_of(self, t: Tuple) -> tuple[Any, ...]:
        """The primary-key value tuple of a stored row."""
        return self.plan.pk(t.mapping)

    def __len__(self) -> int:
        return len(self.rows)


def _snapshot_scan(table: _Table) -> Iterator[Tuple]:
    """Lazily yield the table's rows, guarding against concurrent
    mutation (no full-list copy is materialized).

    The version check runs *before* resuming the dict iterator: a
    mutation can only happen while the generator is suspended, and
    advancing the raw iterator first would raise the dict's own
    ``RuntimeError`` (or, worse, silently continue after an update
    that kept the size unchanged).
    """
    expected = table.version
    it = iter(table.rows.values())
    while True:
        if table.version != expected:
            raise RuntimeError(
                f"{table.scheme.name} mutated during scan; materialize the "
                "scan (list(db.scan(...))) before mutating"
            )
        try:
            t = next(it)
        except StopIteration:
            return
        yield t


class Database:
    """A mutable database state with incremental constraint enforcement.

    ``null_semantics`` selects how candidate keys treat nulls:

    * ``"distinct"`` (default): a nullable candidate key binds only when
      total -- the formal semantics the merged schemas need;
    * ``"identical"``: all null values are considered identical, as in
      SYBASE 4.0 and INGRES 6.3 (Section 5.1) -- two rows with a null
      candidate key then *clash*, which is exactly why such systems
      "cannot maintain keys that are allowed to be null" and why
      Proposition 5.1(ii) matters.

    ``wal_path`` (or an explicit ``wal``
    :class:`~repro.engine.wal.WriteAheadLog`) enables durability: every
    accepted mutation is appended to the log *before* it touches a
    table, transactions are bracketed by begin/commit markers, and
    :meth:`checkpoint` compacts the log into a snapshot.  After a
    crash, :meth:`Database.recover` rebuilds the committed state from
    the log (see ``docs/DURABILITY.md``).
    """

    def __init__(
        self,
        schema: RelationalSchema,
        stats: EngineStats | None = None,
        null_semantics: str = "distinct",
        tracer: Tracer | None = None,
        record_latencies: bool = False,
        wal: WriteAheadLog | None = None,
        wal_path: str | None = None,
        slotted: bool = True,
    ):
        if null_semantics not in ("distinct", "identical"):
            raise ValueError(
                "null_semantics must be 'distinct' or 'identical'"
            )
        self.null_semantics = null_semantics
        self.schema = schema
        self.stats = stats if stats is not None else EngineStats()
        #: Trace sink for enforcement decisions (None = tracing off).
        self.tracer = tracer
        #: Whether mutations time themselves into ``stats.latencies``.
        self.record_latencies = record_latencies
        self._timed = tracer is not None or record_latencies
        #: Whether eligible bulk mutations may take the columnar
        #: slotted-row path (:mod:`repro.engine.rows`).  ``False``
        #: forces the row-at-a-time path everywhere -- the benchmark's
        #: before/after switch.
        self._slotted = slotted
        self._plans = compile_schema(schema)
        self._tables: dict[str, _Table] = {
            s.name: _Table(s, self._plans[s.name]) for s in schema.schemes
        }
        # Index every column group an inclusion dependency touches:
        # right-hand sides for existence checks, left-hand sides for
        # restrict checks on delete/update and for find_referencing.
        for ind in schema.inds:
            self._tables[ind.rhs_scheme].add_group_index(tuple(ind.rhs_attrs))
            self._tables[ind.lhs_scheme].add_group_index(tuple(ind.lhs_attrs))
        #: Undo log of the innermost open transaction (None outside one).
        self._undo_log: list[tuple[str, _Table, tuple[Any, ...], Tuple | None]] | None = None
        if wal is not None and wal_path is not None:
            raise ValueError("pass either wal or wal_path, not both")
        if wal_path is not None:
            wal = WriteAheadLog.open(wal_path)
        #: The write-ahead log, or ``None`` for a purely in-memory engine.
        self.wal = wal
        if wal is not None:
            wal.stats = self.stats
        #: The :class:`~repro.engine.recovery.RecoveryReport` of the
        #: recovery that built this engine (``None`` for a fresh one).
        self.recovery_report = None
        #: Whether an online merge has moved this engine off the schema
        #: it was constructed with; checkpoints then embed the current
        #: schema in the snapshot record.
        self._schema_evolved = False

    # -- access ----------------------------------------------------------

    def table(self, scheme_name: str) -> _Table:
        """The stored table for one relation-scheme."""
        try:
            return self._tables[scheme_name]
        except KeyError:
            raise KeyError(f"no relation named {scheme_name!r}") from None

    def plan(self, scheme_name: str) -> SchemeAccessPlan:
        """The compiled access plan for one relation-scheme."""
        self.table(scheme_name)  # raises uniformly on unknown names
        return self._plans[scheme_name]

    # -- observability ---------------------------------------------------

    def set_tracer(self, tracer: Tracer | None) -> None:
        """Attach (or with ``None`` detach) a trace sink."""
        self.tracer = tracer
        self._timed = tracer is not None or self.record_latencies

    def set_record_latencies(self, enabled: bool) -> None:
        """Toggle per-mutation latency recording into ``stats.latencies``."""
        self.record_latencies = enabled
        self._timed = self.tracer is not None or enabled

    def explain(self, op: str, scheme_name: str) -> dict:
        """The ordered checks ``op`` ("insert"/"update"/"delete") runs on
        ``scheme_name``, with constraint ids, paper-rule labels and
        access paths -- as a structured dict."""
        from repro.obs.explain import explain_mutation

        return explain_mutation(self, op, scheme_name)

    def explain_text(self, op: str, scheme_name: str) -> str:
        """Human-readable form of :meth:`explain`."""
        from repro.obs.explain import explain_mutation, render_mutation

        return render_mutation(explain_mutation(self, op, scheme_name))

    def _observe_ok(
        self, op: str, scheme: str | None, start: float, rows: int = 1
    ) -> None:
        """Record one accepted mutation (latency and/or trace event)."""
        elapsed = perf_counter() - start
        if self.record_latencies:
            self.stats.observe(op, elapsed)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEvent(
                    event="mutation",
                    op=op,
                    scheme=scheme,
                    outcome="ok",
                    rows=rows,
                    elapsed_us=round(elapsed * 1e6, 3),
                )
            )

    def _observe_reject(
        self,
        op: str,
        scheme: str | None,
        exc: ConstraintViolationError,
        start: float,
    ) -> None:
        """Record one rejected mutation with its constraint provenance."""
        elapsed = perf_counter() - start
        if self.record_latencies:
            self.stats.observe(op, elapsed)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEvent(
                    event="reject",
                    op=op,
                    scheme=scheme,
                    constraint=exc.constraint,
                    kind=exc.kind,
                    rule=exc.rule,
                    outcome="rejected",
                    detail=exc.detail,
                    elapsed_us=round(elapsed * 1e6, 3),
                )
            )

    def _wal_append(self, record: dict, op: str, scheme: str | None) -> None:
        """Durably log one accepted mutation (write-ahead: the caller
        has validated it and applies it only after this returns).  A
        storage fault propagates and leaves the mutation unapplied."""
        self.wal.append(record)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEvent(
                    event="wal",
                    op=op,
                    scheme=scheme,
                    kind="wal-append",
                    rule=paper_rule("wal-append"),
                    outcome="logged",
                    rows=1,
                )
            )

    def get(self, scheme_name: str, pk: tuple[Any, ...] | Any) -> Tuple | None:
        """Primary-key lookup; counts as one lookup."""
        if not isinstance(pk, tuple):
            pk = (pk,)
        self.stats.lookups += 1
        return self.table(scheme_name).rows.get(pk)

    def scan(self, scheme_name: str) -> Iterable[Tuple]:
        """Full scan; counts every tuple touched.

        Returns a lazy snapshot-safe iterator (no list copy): mutating
        the relation while the iterator is live raises ``RuntimeError``
        at the next step instead of yielding inconsistent rows.
        """
        table = self.table(scheme_name)
        self.stats.tuples_scanned += len(table.rows)
        return _snapshot_scan(table)

    def count(self, scheme_name: str) -> int:
        """Current row count of one relation."""
        return len(self.table(scheme_name))

    def state(self) -> DatabaseState:
        """An immutable snapshot of the current contents."""
        return DatabaseState(
            {
                name: Relation(table.scheme.attributes, table.rows.values())
                for name, table in self._tables.items()
            }
        )

    # -- validation helpers -----------------------------------------------

    def _check_shape(self, table: _Table, row: Mapping[str, Any]) -> Tuple:
        expected = table.plan.attr_set
        given = row.keys() if isinstance(row, (dict, Tuple)) else set(row)
        if given != expected:
            missing = expected - given
            extra = set(given) - expected
            raise ConstraintViolationError(
                "structure",
                f"{table.scheme.name}: row attributes mismatch "
                f"(missing {sorted(missing)}, unexpected {sorted(extra)})",
            )
        return Tuple(row)

    def _check_null_constraints(self, scheme_name: str, t: Tuple) -> None:
        for constraint, check in self._plans[scheme_name].null_checks:
            self.stats.constraint_checks += 1
            if not check(t.mapping):
                raise ConstraintViolationError(
                    str(constraint),
                    f"row {t!r}",
                    kind=classify_null_constraint(constraint),
                )

    def _check_keys(
        self, table: _Table, t: Tuple, replacing: tuple[Any, ...] | None
    ) -> tuple[Any, ...]:
        """Key-uniqueness checks; returns the (validated) primary key so
        callers can store the row without re-projecting it."""
        plan = table.plan
        values = t.mapping
        pk = plan.pk(values)
        if any(v is NULL for v in pk):
            raise ConstraintViolationError(
                "primary-key",
                f"{table.scheme.name}: primary key contains nulls: {pk!r}",
            )
        self.stats.constraint_checks += 1
        if pk in table.rows and pk != replacing:
            raise ConstraintViolationError(
                "primary-key",
                f"{table.scheme.name}: duplicate primary key {pk!r}",
            )
        for key_names, extract in plan.candidate_keys:
            value = extract(values)
            if any(v is NULL for v in value):
                if self.null_semantics == "distinct":
                    continue  # binds only when total
                # 'identical' semantics (SYBASE/INGRES, Section 5.1):
                # nulls compare equal, so a partially-null key value
                # occupies an index slot like any other.
            self.stats.constraint_checks += 1
            owner = table.key_indexes[key_names].get(value)
            if owner is not None and owner != replacing:
                raise ConstraintViolationError(
                    "candidate-key",
                    f"{table.scheme.name}: duplicate candidate key "
                    f"{dict(zip(key_names, value))!r} "
                    f"({self.null_semantics} null semantics)",
                )
        return pk

    def _check_references_out(self, scheme_name: str, t: Tuple) -> None:
        values = t.mapping
        for ref in self._plans[scheme_name].outgoing:
            value = ref.extract(values)
            if any(v is NULL for v in value):
                continue
            self.stats.constraint_checks += 1
            if not self._referenced_exists_via(ref, value):
                raise ConstraintViolationError(
                    str(ref.ind),
                    f"no {ref.scheme} row with "
                    f"{dict(zip(ref.attrs, value))!r}",
                    kind="inclusion-dependency",
                )

    def _referenced_exists_via(
        self, ref: CompiledReference, value: tuple[Any, ...]
    ) -> bool:
        table = self._tables[ref.scheme]
        scanned = 0
        if ref.is_pk:
            self.stats.index_hits += 1
            path = "pk-index"
            found = value in table.rows
        elif (index := table.group_indexes.get(ref.attrs)) is not None:
            self.stats.index_hits += 1
            path = "group-index"
            found = bool(index.get(value))
        else:
            self.stats.index_misses += 1
            scanned = len(table.rows)
            self.stats.tuples_scanned += scanned
            path = "scan"
            attrs = ref.attrs
            found = any(
                tuple(row[a] for a in attrs) == value
                for row in table.rows.values()
            )
        if self.tracer is not None:
            self.tracer.emit(
                TraceEvent(
                    event="ref-check",
                    op="exists",
                    scheme=ref.scheme,
                    constraint=str(ref.ind),
                    kind="inclusion-dependency",
                    rule=paper_rule("inclusion-dependency"),
                    outcome="found" if found else "absent",
                    access_path=path,
                    rows=scanned,
                )
            )
        return found

    def _referenced_exists(
        self, scheme_name: str, attrs: tuple[str, ...], value: tuple[Any, ...]
    ) -> bool:
        """Index-backed existence of ``value`` under ``scheme_name[attrs]``."""
        table = self.table(scheme_name)
        attrs = tuple(attrs)
        if attrs == table.plan.key_names:
            self.stats.index_hits += 1
            return value in table.rows
        index = table.group_indexes.get(attrs)
        if index is not None:
            self.stats.index_hits += 1
            return bool(index.get(value))
        self.stats.index_misses += 1
        self.stats.tuples_scanned += len(table.rows)
        return any(
            tuple(row[a] for a in attrs) == value
            for row in table.rows.values()
        )

    def _trace_restrict(
        self,
        ref: CompiledReference,
        path: str,
        scanned: int,
        blocker: str | None,
    ) -> None:
        """Emit the restrict-probe event for one incoming reference."""
        self.tracer.emit(
            TraceEvent(
                event="restrict-check",
                op="referencers",
                scheme=ref.scheme,
                constraint=str(ref.ind),
                kind="inclusion-dependency",
                rule=paper_rule("inclusion-dependency"),
                outcome="blocked" if blocker is not None else "clear",
                access_path=path,
                rows=scanned,
                detail=blocker,
            )
        )

    def _blocking_referencer(
        self,
        ref: CompiledReference,
        value: tuple[Any, ...],
        exclude_pk: tuple[Any, ...] | None,
    ) -> str | None:
        """Description of a row of ``ref.scheme`` referencing ``value``
        (ignoring the row keyed ``exclude_pk``), or ``None``."""
        child = self._tables[ref.scheme]
        blocker: str | None = None
        scanned = 0
        if ref.is_pk:
            self.stats.index_hits += 1
            path = "pk-index"
            if value in child.rows:
                if exclude_pk is None:
                    blocker = f"{ref.ind} (from {ref.scheme})"
                elif value != exclude_pk:
                    blocker = f"{ref.ind} (row {value!r} of {ref.scheme})"
        elif (index := child.group_indexes.get(ref.attrs)) is not None:
            self.stats.index_hits += 1
            path = "group-index"
            referencers = index.get(value)
            if referencers:
                if exclude_pk is None:
                    blocker = f"{ref.ind} (from {ref.scheme})"
                else:
                    for pk in referencers:
                        if pk != exclude_pk:
                            blocker = f"{ref.ind} (row {pk!r} of {ref.scheme})"
                            break
        else:
            self.stats.index_misses += 1
            scanned = len(child.rows)
            self.stats.tuples_scanned += scanned
            path = "scan"
            attrs = ref.attrs
            for pk, row in child.rows.items():
                if exclude_pk is not None and pk == exclude_pk:
                    continue
                if tuple(row[a] for a in attrs) == value:
                    blocker = f"{ref.ind} (row {pk!r} of {ref.scheme})"
                    break
        if self.tracer is not None:
            self._trace_restrict(ref, path, scanned, blocker)
        return blocker

    def _referencing_rows_exist(
        self,
        scheme_name: str,
        old: Tuple,
        ignore_self_pk: tuple[Any, ...] | None = None,
    ) -> str | None:
        """Description of a restricting reference into ``old``, if any."""
        values = old.mapping
        for ref in self._plans[scheme_name].incoming:
            value = ref.extract(values)
            if any(v is NULL for v in value):
                continue
            exclude = (
                ignore_self_pk
                if ignore_self_pk is not None and ref.scheme == scheme_name
                else None
            )
            blocker = self._blocking_referencer(ref, value, exclude)
            if blocker is not None:
                return blocker
        return None

    # -- mutations -----------------------------------------------------------

    def insert(self, scheme_name: str, row: Mapping[str, Any]) -> Tuple:
        """Insert one row; raises :class:`ConstraintViolationError` when
        any constraint would be violated."""
        timed = self._timed
        start = perf_counter() if timed else 0.0
        table = self.table(scheme_name)
        try:
            t = self._check_shape(table, row)
            self._check_null_constraints(scheme_name, t)
            pk = self._check_keys(table, t, replacing=None)
            self._check_references_out(scheme_name, t)
        except ConstraintViolationError as exc:
            if timed:
                self._observe_reject("insert", scheme_name, exc, start)
            raise
        if self.wal is not None:
            self._wal_append(
                insert_record(scheme_name, t.mapping), "insert", scheme_name
            )
        self._store(table, t, pk)
        self.stats.inserts += 1
        self.stats.count_scheme_mutation(scheme_name)
        if timed:
            self._observe_ok("insert", scheme_name, start)
        return t

    def redo_insert(self, record: Mapping[str, Any]) -> Tuple:
        """Trusted redo of one logged ``insert`` record -- the
        replication hot path (:meth:`DatabaseService.apply_replicated`).

        The database that logged the record already ran every
        constraint probe, and the checksummed log carried it intact,
        so redo goes straight to shape-check, log and store.  The
        received payload is re-logged as-is (under a fresh local lsn),
        skipping the row re-encode :func:`insert_record` would do.
        Replay that wants divergence *detection* -- recovery, and any
        non-insert record -- takes the validating path instead.
        """
        scheme_name = record["scheme"]
        table = self.table(scheme_name)
        encoded = record["row"]
        t = self._check_shape(
            table, {k: decode_value(v) for k, v in encoded.items()}
        )
        pk = table.plan.pk(t.mapping)
        if self.wal is not None:
            self._wal_append(
                {"op": "insert", "scheme": scheme_name, "row": encoded},
                "insert",
                scheme_name,
            )
        self._store(table, t, pk)
        self.stats.inserts += 1
        self.stats.count_scheme_mutation(scheme_name)
        return t

    def delete(self, scheme_name: str, pk: tuple[Any, ...] | Any) -> None:
        """Delete by primary key, restricting when referenced."""
        if not isinstance(pk, tuple):
            pk = (pk,)
        timed = self._timed
        start = perf_counter() if timed else 0.0
        table = self.table(scheme_name)
        old = table.rows.get(pk)
        if old is None:
            raise KeyError(f"{scheme_name}: no row with key {pk!r}")
        blocker = self._referencing_rows_exist(scheme_name, old)
        if blocker is not None:
            exc = ConstraintViolationError(
                "restrict-delete", f"{scheme_name} row {pk!r} referenced via {blocker}"
            )
            if timed:
                self._observe_reject("delete", scheme_name, exc, start)
            raise exc
        if self.wal is not None:
            self._wal_append(delete_record(scheme_name, pk), "delete", scheme_name)
        self._unstore(table, pk, old)
        self.stats.deletes += 1
        self.stats.count_scheme_mutation(scheme_name)
        if timed:
            self._observe_ok("delete", scheme_name, start)

    def update(
        self, scheme_name: str, pk: tuple[Any, ...] | Any, updates: Mapping[str, Any]
    ) -> Tuple:
        """Update one row by primary key."""
        if not isinstance(pk, tuple):
            pk = (pk,)
        timed = self._timed
        start = perf_counter() if timed else 0.0
        table = self.table(scheme_name)
        old = table.rows.get(pk)
        if old is None:
            raise KeyError(f"{scheme_name}: no row with key {pk!r}")
        try:
            t = old.with_values(dict(updates))
            self._check_null_constraints(scheme_name, t)
            new_pk = self._check_keys(table, t, replacing=pk)
            self._check_references_out(scheme_name, t)
            # Referenced attribute values must not change under incoming
            # references (restrict semantics on update).
            old_values = old.mapping
            new_values = t.mapping
            changed = {
                name for name in updates if old_values[name] != new_values[name]
            }
            if changed:
                for ref in self._plans[scheme_name].incoming:
                    if changed & ref.watch:
                        blocker = self._referencing_rows_exist(
                            scheme_name, old, ignore_self_pk=pk
                        )
                        if blocker is not None:
                            raise ConstraintViolationError(
                                "restrict-update",
                                f"{scheme_name} row {pk!r} "
                                f"referenced via {blocker}",
                            )
                        break
        except ConstraintViolationError as exc:
            if timed:
                self._observe_reject("update", scheme_name, exc, start)
            raise
        if self.wal is not None:
            self._wal_append(
                update_record(scheme_name, pk, dict(updates)),
                "update",
                scheme_name,
            )
        self._unstore(table, pk, old)
        self._store(table, t, new_pk)
        self.stats.updates += 1
        self.stats.count_scheme_mutation(scheme_name)
        if timed:
            self._observe_ok("update", scheme_name, start)
        return t

    # -- bulk mutations --------------------------------------------------------

    def insert_many(
        self, scheme_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> list[Tuple]:
        """Insert many rows of one scheme atomically.

        Shape, null-constraint and key checks run immediately per row
        (so intra-batch duplicates are caught in order), while outgoing
        reference checks are *deferred* until every row is stored and
        then verified -- rows of a self-referencing scheme may therefore
        arrive in any order.  On any violation the whole batch rolls
        back and the same :class:`ConstraintViolationError` the per-row
        path would raise is re-raised.
        """
        timed = self._timed
        start = perf_counter() if timed else 0.0
        table = self.table(scheme_name)
        if (
            self._slotted
            and self._undo_log is None
            and self.wal is None
            and self.tracer is None
        ):
            rows = rows if isinstance(rows, list) else list(rows)
            fast = bulk_insert_many(self, scheme_name, rows)
            if fast is not None:
                if timed:
                    self._observe_ok(
                        "insert_many", scheme_name, start, rows=len(fast)
                    )
                return fast
        stored: list[Tuple] = []
        try:
            with self.transaction():
                for row in rows:
                    t = self._check_shape(table, row)
                    self._check_null_constraints(scheme_name, t)
                    pk = self._check_keys(table, t, replacing=None)
                    if self.wal is not None:
                        self._wal_append(
                            insert_record(scheme_name, t.mapping),
                            "insert",
                            scheme_name,
                        )
                    self._store(table, t, pk)
                    stored.append(t)
                for t in stored:
                    self._check_references_out(scheme_name, t)
        except ConstraintViolationError as exc:
            if timed:
                self._observe_reject("insert_many", scheme_name, exc, start)
            raise
        self.stats.inserts += len(stored)
        if stored:
            self.stats.scheme_mutations[scheme_name] = (
                self.stats.scheme_mutations.get(scheme_name, 0) + len(stored)
            )
        self.stats.bulk_rows += len(stored)
        if timed:
            self._observe_ok("insert_many", scheme_name, start, rows=len(stored))
        return stored

    def apply_batch(
        self, ops: Iterable[tuple]
    ) -> list[Tuple | None]:
        """Apply a sequence of mutations atomically with *deferred*
        reference checking.

        ``ops`` is an iterable of operation tuples::

            ("insert", scheme_name, row_mapping)
            ("update", scheme_name, pk, updates_mapping)
            ("delete", scheme_name, pk)

        Shape, null-constraint and key checks run immediately per
        operation (in batch order); inclusion-dependency checks in both
        directions are deferred and verified against the batch's *final*
        state, so operations may arrive in any order -- a child row may
        be inserted before its parent, a parent deleted before its
        children, a referenced value rewired in two steps.  On any
        violation the whole batch rolls back: outgoing-reference
        failures raise the same error the per-row path would, dangling
        references left by deletes/updates raise ``restrict-batch``.

        Returns one entry per operation: the stored :class:`Tuple` for
        inserts/updates, ``None`` for deletes.
        """
        timed = self._timed
        start = perf_counter() if timed else 0.0
        if (
            self._slotted
            and self._undo_log is None
            and self.wal is None
            and self.tracer is None
        ):
            ops = ops if isinstance(ops, list) else list(ops)
            fast = bulk_apply(self, ops)
            if fast is not None:
                if timed:
                    self._observe_ok(
                        "apply_batch", None, start, rows=len(fast)
                    )
                return fast
        try:
            results = self._apply_batch(ops)
        except ConstraintViolationError as exc:
            if timed:
                self._observe_reject("apply_batch", None, exc, start)
            raise
        if timed:
            self._observe_ok("apply_batch", None, start, rows=len(results))
        return results

    def _apply_batch(self, ops: Iterable[tuple]) -> list[Tuple | None]:
        with self.transaction():
            results, pending_out, pending_in, n_ops = self._apply_ops(ops)
            self._verify_deferred(pending_out, pending_in)
        self.stats.bulk_rows += n_ops
        return results

    def _apply_ops(
        self, ops: Iterable[tuple]
    ) -> tuple[
        list[Tuple | None],
        list[tuple[str, Tuple]],
        list[tuple[CompiledReference, tuple[Any, ...]]],
        int,
    ]:
        """Apply a batch's operations with per-op immediate checks,
        accumulating the deferred reference checks.

        Returns ``(results, pending_out, pending_in, n_ops)``.  The
        caller owns the enclosing transaction and the deferred
        verification.
        """
        results: list[Tuple | None] = []
        pending_out: list[tuple[str, Tuple]] = []
        pending_in: list[tuple[CompiledReference, tuple[Any, ...]]] = []
        n_ops = 0
        for op in ops:
            kind = op[0]
            n_ops += 1
            if kind == "insert":
                _, scheme_name, row = op
                table = self.table(scheme_name)
                t = self._check_shape(table, row)
                self._check_null_constraints(scheme_name, t)
                pk = self._check_keys(table, t, replacing=None)
                if self.wal is not None:
                    self._wal_append(
                        insert_record(scheme_name, t.mapping),
                        "insert",
                        scheme_name,
                    )
                self._store(table, t, pk)
                pending_out.append((scheme_name, t))
                self.stats.inserts += 1
                self.stats.count_scheme_mutation(scheme_name)
                results.append(t)
            elif kind == "delete":
                _, scheme_name, pk = op
                if not isinstance(pk, tuple):
                    pk = (pk,)
                table = self.table(scheme_name)
                old = table.rows.get(pk)
                if old is None:
                    raise KeyError(
                        f"{scheme_name}: no row with key {pk!r}"
                    )
                old_values = old.mapping
                for ref in self._plans[scheme_name].incoming:
                    value = ref.extract(old_values)
                    if not any(v is NULL for v in value):
                        pending_in.append((ref, value))
                if self.wal is not None:
                    self._wal_append(
                        delete_record(scheme_name, pk),
                        "delete",
                        scheme_name,
                    )
                self._unstore(table, pk, old)
                self.stats.deletes += 1
                self.stats.count_scheme_mutation(scheme_name)
                results.append(None)
            elif kind == "update":
                _, scheme_name, pk, updates = op
                if not isinstance(pk, tuple):
                    pk = (pk,)
                table = self.table(scheme_name)
                old = table.rows.get(pk)
                if old is None:
                    raise KeyError(
                        f"{scheme_name}: no row with key {pk!r}"
                    )
                t = old.with_values(dict(updates))
                self._check_null_constraints(scheme_name, t)
                new_pk = self._check_keys(table, t, replacing=pk)
                old_values = old.mapping
                new_values = t.mapping
                changed = {
                    name
                    for name in updates
                    if old_values[name] != new_values[name]
                }
                for ref in self._plans[scheme_name].incoming:
                    if changed & ref.watch:
                        value = ref.extract(old_values)
                        if not any(v is NULL for v in value):
                            pending_in.append((ref, value))
                if self.wal is not None:
                    self._wal_append(
                        update_record(scheme_name, pk, dict(updates)),
                        "update",
                        scheme_name,
                    )
                self._unstore(table, pk, old)
                self._store(table, t, new_pk)
                pending_out.append((scheme_name, t))
                self.stats.updates += 1
                self.stats.count_scheme_mutation(scheme_name)
                results.append(t)
            else:
                raise ValueError(f"unknown batch operation {kind!r}")
        return results, pending_out, pending_in, n_ops

    def _verify_deferred(
        self,
        pending_out: list[tuple[str, Tuple]],
        pending_in: list[tuple[CompiledReference, tuple[Any, ...]]],
        collect_remote: bool = False,
    ) -> list[dict[str, Any]]:
        """Verify a batch's deferred reference checks against its final
        state.

        In the default mode any unsatisfied check raises exactly as the
        unbatched path would.  With ``collect_remote`` (the sharded
        two-phase prepare), a check that cannot be satisfied *locally*
        is returned as a requirement dict instead of raising -- rows of
        other shards may satisfy it, and only the shard router can know
        (see ``docs/SERVER.md``).  Requirement kinds:

        * ``exists`` -- an inserted/updated row references ``value``
          under ``scheme[attrs]`` and no local row carries it;
        * ``restrict`` -- a delete/update removed a local provider of
          ``value`` under ``scheme[attrs]`` and no other local provider
          remains: the batch is admissible iff some remote provider
          exists or no ``child_scheme[child_attrs]`` row (on any shard)
          still references the value.
        """
        requirements: list[dict[str, Any]] = []
        # Deferred verification against the final batch state.
        for scheme_name, t in pending_out:
            table = self._tables[scheme_name]
            if table.rows.get(table.plan.pk(t.mapping)) is not t:
                continue  # superseded by a later operation
            if not collect_remote:
                self._check_references_out(scheme_name, t)
                continue
            values = t.mapping
            for ref in self._plans[scheme_name].outgoing:
                value = ref.extract(values)
                if any(v is NULL for v in value):
                    continue
                self.stats.constraint_checks += 1
                if self._referenced_exists_via(ref, value):
                    continue
                requirements.append(
                    {
                        "kind": "exists",
                        "scheme": ref.scheme,
                        "attrs": list(ref.attrs),
                        "value": list(value),
                        "constraint": str(ref.ind),
                    }
                )
        verified: set[tuple[Any, ...]] = set()
        for ref, value in pending_in:
            dedup_key = (id(ref.ind), value)
            if dedup_key in verified:
                continue
            verified.add(dedup_key)
            if self._referenced_exists(
                ref.ind.rhs_scheme, ref.ind.rhs_attrs, value
            ):
                continue  # another row still carries the referenced value
            if collect_remote:
                # No local provider: a remote one may exist, and the
                # referencing children may live on any shard (this one
                # included -- the router's probe sees this prepare's
                # state, so in-batch deletes of children are honoured).
                requirements.append(
                    {
                        "kind": "restrict",
                        "scheme": ref.ind.rhs_scheme,
                        "attrs": list(ref.ind.rhs_attrs),
                        "child_scheme": ref.scheme,
                        "child_attrs": list(ref.attrs),
                        "value": list(value),
                        "constraint": str(ref.ind),
                    }
                )
                continue
            blocker = self._blocking_referencer(ref, value, None)
            if blocker is not None:
                raise ConstraintViolationError(
                    "restrict-batch",
                    f"{ref.ind.rhs_scheme} value "
                    f"{dict(zip(ref.ind.rhs_attrs, value))!r} "
                    f"still referenced via {blocker}",
                )
        return requirements

    def apply_batch_prepare(self, ops: Iterable[tuple]) -> "PreparedBatch":
        """Phase one of a sharded cross-shard batch: apply and validate
        ``ops`` inside an open transaction and report what this shard
        cannot verify alone.

        Local checks (shape, nulls, keys, locally-satisfiable reference
        checks) run exactly as :meth:`apply_batch`; any local violation
        raises and leaves the state untouched.  Checks that need other
        shards come back as requirement dicts on the returned
        :class:`PreparedBatch`, which holds the transaction (and the WAL
        bracket) open until :meth:`PreparedBatch.commit` or
        :meth:`PreparedBatch.abort`.  The caller must not run other
        mutations while a prepare is held -- the server's single-writer
        loop is what guarantees this.
        """
        ctx = self.transaction()
        ctx.__enter__()
        try:
            results, pending_out, pending_in, n_ops = self._apply_ops(ops)
            requirements = self._verify_deferred(
                pending_out, pending_in, collect_remote=True
            )
        except BaseException as exc:
            ctx.__exit__(type(exc), exc, exc.__traceback__)
            raise
        self.stats.bulk_rows += n_ops
        return PreparedBatch(self, ctx, results, requirements)

    def load_state(self, state: DatabaseState, validate: bool = True) -> None:
        """Bulk-load an existing state (e.g. the image of a state mapping).

        Rows and every index are built in one pass per relation through
        the compiled access plans -- no per-row constraint checks, no
        journaling.  With ``validate`` the final contents are checked
        wholesale via the consistency checker, which is much cheaper
        than per-row checks with inter-row ordering concerns.
        """
        if self.in_transaction:
            raise ConstraintViolationError(
                "bulk-load", "cannot bulk-load inside a transaction"
            )
        timed = self._timed
        start = perf_counter() if timed else 0.0
        if self.wal is not None:
            from repro.io.state_json import state_to_dict

            # Logged before loading: a failed append leaves both the
            # log and the tables untouched, a validate failure leaves
            # both holding the loaded state -- they never disagree.
            self._wal_append(
                {"op": "load_state", "state": state_to_dict(state)},
                "load_state",
                None,
            )
        total = self._install_state(state)
        self.stats.bulk_rows += total
        if validate:
            from repro.constraints.checker import ConsistencyChecker

            checker = ConsistencyChecker(self.schema, tracer=self.tracer)
            violations = checker.violations(self.state())
            if violations:
                exc = ConstraintViolationError(
                    "bulk-load", "; ".join(str(v) for v in violations[:5])
                )
                if timed:
                    self._observe_reject("load_state", None, exc, start)
                raise exc
        if timed:
            self._observe_ok("load_state", None, start, rows=total)

    def _install_state(self, state: DatabaseState) -> int:
        """Install ``state``'s rows and rebuild every index in one pass
        per relation (the shared bulk-load core of :meth:`load_state`
        and the online-merge schema swap); returns the row total.  No
        constraint checks, no journaling -- callers own validation."""
        identical = self.null_semantics == "identical"
        total = 0
        for name, relation in state.items():
            table = self.table(name)
            plan = table.plan
            pk_extract = plan.pk
            rows: dict[tuple[Any, ...], Tuple] = {}
            for t in relation:
                rows[pk_extract(t.mapping)] = t
            table.rows = rows
            table.version += 1
            total += len(rows)
            for key_names, extract in plan.candidate_keys:
                index: dict[tuple[Any, ...], tuple[Any, ...]] = {}
                for pk, t in rows.items():
                    value = extract(t.mapping)
                    if identical or not any(v is NULL for v in value):
                        index[value] = pk
                table.key_indexes[key_names] = index
            for attrs in table.group_indexes:
                extract = table.group_extractors[attrs]
                refs: dict[tuple[Any, ...], dict[tuple[Any, ...], None]] = {}
                for pk, t in rows.items():
                    value = extract(t.mapping)
                    if not any(v is NULL for v in value):
                        refs.setdefault(value, {})[pk] = None
                table.group_indexes[attrs] = refs
        return total

    # -- online schema evolution ---------------------------------------------

    def _adopt_schema(
        self, schema: RelationalSchema, state: DatabaseState
    ) -> None:
        """Swap this engine onto ``schema`` holding ``state``, in place.

        Rebuilds the compiled plans, tables and reference indexes the
        way ``__init__`` would, while preserving the stats object, the
        write-ahead log, the tracer and every other attachment -- the
        handles long-lived callers (server sessions, query engines)
        already hold stay valid.
        """
        self._plans = compile_schema(schema)
        self._tables = {
            s.name: _Table(s, self._plans[s.name]) for s in schema.schemes
        }
        for ind in schema.inds:
            self._tables[ind.rhs_scheme].add_group_index(tuple(ind.rhs_attrs))
            self._tables[ind.lhs_scheme].add_group_index(tuple(ind.lhs_attrs))
        self.schema = schema
        self._schema_evolved = True
        self._install_state(state)

    def _transform_merge(self, members, key_relation, merged_name):
        """Compute the merged-and-simplified schema plus the current
        state pushed through the composed forward mapping (Definition
        4.1 eta, then each ``Remove`` step's mu)."""
        from repro.core.merge import merge
        from repro.core.remove import remove_all

        result = merge(
            self.schema,
            members,
            merged_name=merged_name,
            key_relation=key_relation,
        )
        simplified = remove_all(result)
        return simplified, simplified.forward.apply(self.state())

    def apply_merge_online(
        self,
        members: Sequence[str],
        key_relation: str | None = None,
        merged_name: str | None = None,
    ):
        """Merge a scheme family on the live engine, atomically.

        The paper's ``Merge`` (Definition 4.1) followed by ``Remove`` to
        a fixpoint, executed against the running database: transform the
        current state through the composed eta mapping, re-verify the
        result satisfies the merged schema (Definition 2.1), then write
        one ``merge`` record inside its own WAL ``begin``/``commit``
        bracket and only after the commit marker is down swap the
        in-memory schema, plans, tables and indexes in place.  Crash
        recovery therefore lands on the fully-merged schema (marker
        durable) or the fully-unmerged one (marker absent) -- never a
        torn hybrid.  See ``docs/ADVISOR.md``.

        Returns the :class:`~repro.core.remove.SimplifyResult` so the
        caller keeps the merged-scheme info and both state mappings.
        Raises :class:`~repro.core.merge.MergeError` when the family is
        not mergeable, :class:`ConstraintViolationError` when the
        transformed state fails re-verification, and refuses inside a
        transaction or while a checkpoint could not run.
        """
        if self.in_transaction:
            raise ConstraintViolationError(
                "online-merge", "cannot merge schema inside a transaction"
            )
        timed = self._timed
        start = perf_counter() if timed else 0.0
        simplified, new_state = self._transform_merge(
            members, key_relation, merged_name
        )
        from repro.constraints.checker import ConsistencyChecker

        checker = ConsistencyChecker(simplified.schema, tracer=self.tracer)
        violations = checker.violations(new_state)
        if violations:
            raise ConstraintViolationError(
                "online-merge",
                "merged state fails re-verification: "
                + "; ".join(str(v) for v in violations[:5]),
            )
        if self.wal is not None:
            self.wal.begin()
            try:
                self.wal.append(
                    merge_record(members, key_relation, merged_name)
                )
                self.wal.commit()
            except Exception:
                try:
                    self.wal.abort()
                except Exception:
                    pass  # the log is already poisoned; surface the cause
                raise
        self._adopt_schema(simplified.schema, new_state)
        if timed:
            elapsed = perf_counter() - start
            if self.record_latencies:
                self.stats.observe("apply_merge", elapsed)
            if self.tracer is not None:
                self.tracer.emit(
                    TraceEvent(
                        event="merge-applied-online",
                        op="apply_merge",
                        scheme=simplified.info.merged_name,
                        kind="merge-admission",
                        rule="Definition 4.1 (Merge) + Definition 4.3 (Remove)",
                        outcome="ok",
                        rows=sum(len(t) for t in self._tables.values()),
                        detail=(
                            f"members={','.join(members)} "
                            f"key_relation={simplified.info.key_relation}"
                        ),
                        elapsed_us=round(elapsed * 1e6, 3),
                    )
                )
        return simplified

    def redo_merge(
        self,
        members: Sequence[str],
        key_relation: str | None = None,
        merged_name: str | None = None,
    ):
        """Replay one logged ``merge`` record (recovery/replication).

        Recomputes the deterministic ``Merge`` + ``Remove`` pipeline
        from the current schema and swaps in place, without re-logging
        and without re-verifying (recovery re-checks the final state
        wholesale; a replica trusts its primary's verification exactly
        as :meth:`redo_insert` does).
        """
        simplified, new_state = self._transform_merge(
            members, key_relation, merged_name
        )
        self._adopt_schema(simplified.schema, new_state)
        return simplified

    # -- durability ------------------------------------------------------------

    def checkpoint(self) -> int:
        """Compact the write-ahead log into a snapshot of the current
        state (atomic under file storage); returns the snapshot record's
        ``lsn``.  Raises :class:`~repro.engine.wal.WalError` without a
        log or inside a transaction."""
        if self.wal is None:
            raise WalError("database has no write-ahead log to checkpoint")
        if self.in_transaction:
            raise WalError("cannot checkpoint inside a transaction")
        timed = self._timed
        start = perf_counter() if timed else 0.0
        from repro.io.state_json import state_to_dict

        schema_dict = None
        if self._schema_evolved:
            from repro.io.relational_json import relational_schema_to_dict

            schema_dict = relational_schema_to_dict(self.schema)
        lsn = self.wal.write_snapshot(
            state_to_dict(self.state()), schema_dict
        )
        self.stats.checkpoints += 1
        if timed:
            elapsed = perf_counter() - start
            if self.record_latencies:
                self.stats.observe("checkpoint", elapsed)
            if self.tracer is not None:
                self.tracer.emit(
                    TraceEvent(
                        event="checkpoint",
                        op="checkpoint",
                        kind="wal-checkpoint",
                        rule=paper_rule("wal-checkpoint"),
                        outcome="ok",
                        rows=sum(len(t) for t in self._tables.values()),
                        elapsed_us=round(elapsed * 1e6, 3),
                    )
                )
        return lsn

    def sync_wal(self) -> int:
        """Group-commit barrier: flush every WAL record appended since
        the last sync in one storage flush/fsync; returns how many
        records the barrier covered (0 with no log or nothing pending).

        This is the durability point of the server's batched-write
        path: mutations are applied (and logged, unflushed) one by one,
        then a single ``sync_wal`` makes the whole batch durable before
        any of them is acknowledged.  A storage fault poisons the log
        and re-raises -- the batch must not be acked.
        """
        if self.wal is None:
            return 0
        batched = self.wal.sync()
        if batched and self.tracer is not None:
            self.tracer.emit(
                TraceEvent(
                    event="wal",
                    op="group-commit",
                    kind="wal-group-commit",
                    rule=paper_rule("wal-group-commit"),
                    outcome="synced",
                    rows=batched,
                )
            )
        return batched

    @classmethod
    def recover(
        cls,
        schema: RelationalSchema,
        wal_path: str | None = None,
        *,
        storage=None,
        null_semantics: str = "distinct",
        stats: EngineStats | None = None,
        tracer: Tracer | None = None,
        record_latencies: bool = False,
        verify: bool = True,
    ) -> "Database":
        """Rebuild the committed state from a write-ahead log.

        Replays the snapshot (if any) plus the log tail, truncating a
        torn/corrupt tail and rolling back uncommitted transactions,
        then re-verifies the result against the schema's constraints
        (``verify=False`` skips the re-check).  The returned database
        carries the repaired, resumed log and a
        :class:`~repro.engine.recovery.RecoveryReport` in
        ``recovery_report``.
        """
        from repro.engine.recovery import recover_database

        return recover_database(
            schema,
            wal_path,
            storage=storage,
            null_semantics=null_semantics,
            stats=stats,
            tracer=tracer,
            record_latencies=record_latencies,
            verify=verify,
        ).database

    # -- transactions -----------------------------------------------------------

    def transaction(self) -> "_TransactionContext":
        """A context manager giving all-or-nothing mutation semantics::

            with db.transaction():
                db.insert(...)
                db.update(...)

        On any exception inside the block, every mutation performed in it
        is undone (the paper's DBMS triggers ``ROLLBACK TRANSACTION`` on
        violations; this is the same discipline).  Transactions nest: an
        inner failure unwinds to the inner boundary only.
        """
        return _TransactionContext(self)

    @property
    def in_transaction(self) -> bool:
        """Whether a transaction block is currently open."""
        return self._undo_log is not None

    def _journal(
        self,
        op: str,
        table: _Table,
        pk: tuple[Any, ...],
        old: Tuple | None,
    ) -> None:
        if self._undo_log is not None:
            self._undo_log.append((op, table, pk, old))

    def _rollback_to(self, mark: int) -> None:
        assert self._undo_log is not None
        while len(self._undo_log) > mark:
            op, table, pk, old = self._undo_log.pop()
            if op == "store":
                current = table.rows.get(pk)
                if current is not None:
                    self._unstore_raw(table, pk, current)
            else:  # "unstore"
                assert old is not None
                self._store_raw(table, old)

    # -- low-level storage ---------------------------------------------------

    def _store(
        self, table: _Table, t: Tuple, pk: tuple[Any, ...] | None = None
    ) -> None:
        if pk is None:
            pk = table.plan.pk(t.mapping)
        self._journal("store", table, pk, None)
        self._store_raw(table, t, pk)

    def _unstore(self, table: _Table, pk: tuple[Any, ...], old: Tuple) -> None:
        self._journal("unstore", table, pk, old)
        self._unstore_raw(table, pk, old)

    def _store_raw(
        self, table: _Table, t: Tuple, pk: tuple[Any, ...] | None = None
    ) -> None:
        values = t.mapping
        plan = table.plan
        if pk is None:
            pk = plan.pk(values)
        table.rows[pk] = t
        table.version += 1
        if plan.candidate_keys:
            identical = self.null_semantics == "identical"
            for key_names, extract in plan.candidate_keys:
                value = extract(values)
                if identical or not any(v is NULL for v in value):
                    table.key_indexes[key_names][value] = pk
        for attrs, refs in table.group_indexes.items():
            value = table.group_extractors[attrs](values)
            if not any(v is NULL for v in value):
                bucket = refs.get(value)
                if bucket is None:
                    refs[value] = {pk: None}
                else:
                    bucket[pk] = None

    def _unstore_raw(self, table: _Table, pk: tuple[Any, ...], old: Tuple) -> None:
        del table.rows[pk]
        table.version += 1
        values = old.mapping
        for key_names, extract in table.plan.candidate_keys:
            value = extract(values)
            index = table.key_indexes[key_names]
            if index.get(value) == pk:
                del index[value]
        for attrs, refs in table.group_indexes.items():
            value = table.group_extractors[attrs](values)
            bucket = refs.get(value)
            if bucket is not None:
                bucket.pop(pk, None)
                if not bucket:
                    del refs[value]


class _TransactionContext:
    """Context manager implementing :meth:`Database.transaction`.

    With a write-ahead log attached, the outermost block brackets its
    records with ``begin``/``commit`` markers (``abort`` on failure);
    an inner block that fails logs a ``rollback`` marker cancelling its
    records only.  A commit marker that cannot be written durably rolls
    the whole transaction back in memory and re-raises, so memory never
    runs ahead of what the log can prove committed.
    """

    def __init__(self, db: Database):
        self._db = db
        self._mark: int | None = None
        self._wal_mark: int | None = None
        self._outermost = False

    def __enter__(self) -> "Database":
        db = self._db
        if db._undo_log is None:
            db._undo_log = []
            self._outermost = True
            if db.wal is not None:
                try:
                    db.wal.begin()
                except Exception:
                    db._undo_log = None
                    raise
        self._mark = len(db._undo_log)
        if db.wal is not None:
            self._wal_mark = db.wal.next_lsn
        return db

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._mark is not None
        db = self._db
        if exc_type is not None:
            db._rollback_to(self._mark)
            if db.wal is not None:
                if self._outermost:
                    db.wal.abort()
                else:
                    db.wal.rollback(self._wal_mark)
            if self._outermost:
                db._undo_log = None
            return False
        if self._outermost:
            if db.wal is not None:
                try:
                    db.wal.commit()
                except Exception:
                    # The group is not durably committed; undo it so the
                    # in-memory state matches what recovery will rebuild.
                    db._rollback_to(self._mark)
                    db._undo_log = None
                    raise
            db._undo_log = None
        return False


class PreparedBatch:
    """A batch applied but not yet decided (phase one of the sharded
    two-phase apply; see :meth:`Database.apply_batch_prepare`).

    ``results`` mirrors :meth:`Database.apply_batch`'s return value;
    ``requirements`` lists the reference checks only other shards can
    answer.  Exactly one of :meth:`commit` / :meth:`abort` must be
    called; until then the underlying transaction (and its WAL bracket)
    stays open and the owning database must not run other mutations.
    The prepare itself is volatile: a crash while held aborts it on
    recovery, because the WAL bracket was never closed with a commit
    marker.
    """

    __slots__ = ("db", "results", "requirements", "_ctx")

    def __init__(
        self,
        db: Database,
        ctx: _TransactionContext,
        results: list[Tuple | None],
        requirements: list[dict[str, Any]],
    ):
        self.db = db
        self.results = results
        self.requirements = requirements
        self._ctx: _TransactionContext | None = ctx

    @property
    def decided(self) -> bool:
        """Whether the hold has already been committed or aborted."""
        return self._ctx is None

    def commit(self) -> list[Tuple | None]:
        """Make the batch permanent (the requirements were satisfied)."""
        ctx, self._ctx = self._take(), None
        ctx.__exit__(None, None, None)
        return self.results

    def abort(self) -> None:
        """Roll the batch back (a requirement failed, or the router
        aborted the distributed batch)."""
        ctx, self._ctx = self._take(), None
        exc = ValueError("prepared batch aborted")
        ctx.__exit__(ValueError, exc, None)

    def _take(self) -> _TransactionContext:
        if self._ctx is None:
            raise RuntimeError("prepared batch already decided")
        return self._ctx
