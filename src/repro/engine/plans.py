"""Compiled per-scheme access plans for the storage engine.

The engine's hot paths (insert/update/delete, key and reference checks)
repeatedly project rows onto fixed attribute groups: the primary key,
each candidate key, both sides of every inclusion dependency, and the
attribute groups of the per-tuple null constraints.  Re-deriving those
projections from attribute-name lists on every call costs a Python-level
generator per row per group; an access plan compiles each projection
*once per schema* into an :func:`operator.itemgetter`-backed extractor
over the tuple's underlying mapping, and each null constraint into a
closure of plain dict lookups.

Plans are purely derived data: they hold no row state and can be shared
between any number of databases over the same schema.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import (
    NullConstraint,
    NullExistenceConstraint,
    PartNullConstraint,
    TotalEqualityConstraint,
)
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.tuples import NULL, Tuple

#: A compiled projection: mapping of attribute values -> value tuple.
Extractor = Callable[[Mapping[str, Any]], tuple]

#: A compiled per-tuple null check, over the tuple's attribute mapping
#: (so the bulk path can run it on not-yet-materialized row dicts).
NullCheck = Callable[[Mapping[str, Any]], bool]


def attr_extractor(names: Sequence[str]) -> Extractor:
    """An extractor returning ``tuple(values[n] for n in names)``.

    ``itemgetter`` with two or more keys already returns a tuple; the
    zero- and one-attribute cases are wrapped so every extractor has the
    same ``mapping -> tuple`` contract.
    """
    names = tuple(names)
    if not names:
        return lambda values: ()
    if len(names) == 1:
        name = names[0]

        def extract_one(values: Mapping[str, Any], _name: str = name) -> tuple:
            return (values[_name],)

        return extract_one
    return itemgetter(*names)


def compile_null_check(constraint: NullConstraint) -> NullCheck:
    """A fast per-tuple satisfaction test for one null constraint.

    The three concrete constraint classes are compiled into closures
    over plain dict lookups (identity tests against the ``NULL``
    singleton); unknown subclasses fall back to ``constraint.holds_for``.
    Checks take the row's attribute *mapping* (a ``Tuple.mapping`` or a
    raw row dict), so both the per-row and the columnar bulk path can
    call them without materializing tuples first.
    """
    if isinstance(constraint, NullExistenceConstraint):
        lhs = tuple(sorted(constraint.lhs))
        rhs = tuple(sorted(constraint.rhs))

        def check_existence(values: Mapping[str, Any]) -> bool:
            for name in lhs:
                if values[name] is NULL:
                    return True
            for name in rhs:
                if values[name] is NULL:
                    return False
            return True

        return check_existence
    if isinstance(constraint, PartNullConstraint):
        groups = tuple(tuple(sorted(g)) for g in constraint.groups)

        def check_part_null(values: Mapping[str, Any]) -> bool:
            for group in groups:
                if all(values[name] is not NULL for name in group):
                    return True
            return False

        return check_part_null
    if isinstance(constraint, TotalEqualityConstraint):
        pairs = tuple(zip(constraint.lhs, constraint.rhs))

        def check_total_equality(values: Mapping[str, Any]) -> bool:
            for a, b in pairs:
                if values[a] is NULL or values[b] is NULL:
                    return True
            for a, b in pairs:
                if values[a] != values[b]:
                    return False
            return True

        return check_total_equality

    def check_fallback(values: Mapping[str, Any]) -> bool:
        return constraint.holds_for(Tuple(values))

    return check_fallback


class CompiledReference:
    """One inclusion dependency, compiled as seen from one endpoint.

    For an *outgoing* reference of scheme ``S`` (``S = lhs``):
    ``extract`` projects an ``S`` row onto the foreign-key attributes,
    ``scheme``/``attrs`` name the referenced side, and ``is_pk`` says the
    referenced attributes are that scheme's primary key (so existence is
    answered by its row dict).

    For an *incoming* reference of scheme ``S`` (``S = rhs``):
    ``extract`` projects an ``S`` row onto the referenced attributes,
    ``scheme``/``attrs`` name the referencing (child) side, ``is_pk``
    says the child references through its own primary key, and ``watch``
    is the set of ``S`` attributes whose change can strand child rows
    (used by restrict-on-update).
    """

    __slots__ = ("ind", "extract", "scheme", "attrs", "is_pk", "watch")

    def __init__(
        self,
        ind: InclusionDependency,
        extract: Extractor,
        scheme: str,
        attrs: tuple[str, ...],
        is_pk: bool,
        watch: frozenset[str],
    ):
        self.ind = ind
        self.extract = extract
        self.scheme = scheme
        self.attrs = attrs
        self.is_pk = is_pk
        self.watch = watch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledReference({self.ind})"


class SchemeAccessPlan:
    """Every compiled projection and check one scheme's mutations need."""

    __slots__ = (
        "scheme",
        "key_names",
        "attr_set",
        "pk",
        "candidate_keys",
        "null_checks",
        "bulk_null_checks",
        "outgoing",
        "incoming",
    )

    def __init__(self, scheme: RelationScheme, schema: RelationalSchema):
        self.scheme = scheme
        self.key_names: tuple[str, ...] = scheme.key_names
        self.attr_set: frozenset[str] = frozenset(scheme.attribute_names)
        #: Primary-key projection.
        self.pk: Extractor = attr_extractor(scheme.key_names)
        #: Non-primary candidate keys as ``(key_names, extractor)`` pairs.
        self.candidate_keys: tuple[tuple[tuple[str, ...], Extractor], ...] = tuple(
            (names, attr_extractor(names))
            for names in (
                tuple(a.name for a in key) for key in scheme.candidate_keys
            )
            if names != scheme.key_names
        )
        #: Null constraints as ``(constraint, compiled check)`` pairs, in
        #: schema declaration order (violation order matters).
        self.null_checks: tuple[tuple[NullConstraint, NullCheck], ...] = tuple(
            (c, compile_null_check(c))
            for c in schema.null_constraints_of(scheme.name)
        )
        #: Null checks the bulk path must still run per row: a
        #: nulls-not-allowed constraint over key attributes only is
        #: implied by the primary key's own totality filter, so the
        #: columnar path (:mod:`repro.engine.rows`) skips it.
        key_set = frozenset(scheme.key_names)
        self.bulk_null_checks: tuple[tuple[NullConstraint, NullCheck], ...] = tuple(
            (c, check)
            for c, check in self.null_checks
            if not (
                isinstance(c, NullExistenceConstraint)
                and c.is_nulls_not_allowed()
                and c.rhs <= key_set
            )
        )
        self.outgoing: tuple[CompiledReference, ...] = tuple(
            CompiledReference(
                ind,
                attr_extractor(ind.lhs_attrs),
                ind.rhs_scheme,
                tuple(ind.rhs_attrs),
                tuple(ind.rhs_attrs)
                == schema.scheme(ind.rhs_scheme).key_names,
                frozenset(ind.lhs_attrs),
            )
            for ind in schema.inds
            if ind.lhs_scheme == scheme.name
        )
        self.incoming: tuple[CompiledReference, ...] = tuple(
            CompiledReference(
                ind,
                attr_extractor(ind.rhs_attrs),
                ind.lhs_scheme,
                tuple(ind.lhs_attrs),
                tuple(ind.lhs_attrs)
                == schema.scheme(ind.lhs_scheme).key_names,
                frozenset(ind.rhs_attrs),
            )
            for ind in schema.inds
            if ind.rhs_scheme == scheme.name
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SchemeAccessPlan({self.scheme.name}, "
            f"{len(self.candidate_keys)} candidate keys, "
            f"{len(self.outgoing)} out / {len(self.incoming)} in refs)"
        )


def compile_schema(schema: RelationalSchema) -> dict[str, SchemeAccessPlan]:
    """Access plans for every scheme of ``schema``, keyed by name."""
    return {s.name: SchemeAccessPlan(s, schema) for s in schema.schemes}


def contains_null(value: Iterable[Any]) -> bool:
    """True iff any component of ``value`` is the ``NULL`` marker."""
    for v in value:
        if v is NULL:
            return True
    return False
