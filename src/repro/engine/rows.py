"""Slotted-row bulk path: vectorized batch validation over column sets.

``insert_many`` and ``apply_batch`` normally validate row by row --
shape check, null checks, key probes, reference probes -- each a
Python-level call per row per constraint.  For large batches almost all
of that work is *columnar*: key uniqueness is a set-cardinality
question over the extracted key column, reference existence needs one
probe per **distinct** foreign-key value, and shape validation is a
``dict.keys()`` comparison the CPython dict layout answers without
iterating.  This module implements that columnar path on top of the
compiled access plans (:mod:`repro.engine.plans`).

Row representation.  Rows stay :class:`~repro.relational.tuples.Tuple`
objects -- every index, scan and query in the engine expects them --
but the bulk path materializes them *slotted*: ``object.__new__`` plus
direct stores through the class's slot descriptors, adopting the
caller's plain dict instead of copying it (non-dict mappings are still
copied).  Batches are validated wholesale against the pre-state -- no
journaling, no undo log -- and applied with bulk ``dict.update`` /
``dict.__delitem__`` runs only after every check has passed, so a batch
the fast path cannot accept touches nothing.

Fallback discipline.  Every entry point returns ``None`` whenever the
batch cannot be *proven* acceptable by the columnar checks alone: any
shape/key/null/reference problem, an operation mix the fast checks do
not model, or an engine running with a WAL, tracer, or open outer
transaction.  The caller then re-runs the ordinary row-at-a-time path
from scratch on the untouched state, which raises exactly the error
(and performs exactly the rollback bookkeeping) the per-row semantics
promise.  The fast path is therefore never authoritative about
rejection, only about acceptance -- the property the differential
tests in ``tests/engine/test_differential.py`` pin down.
"""

from __future__ import annotations

import gc
from collections import deque
from itertools import chain, repeat
from operator import itemgetter
from typing import Any, Mapping, Sequence

from repro.engine.plans import attr_extractor, contains_null
from repro.relational.tuples import NULL, Tuple

_new_tuple = object.__new__
_set_values = Tuple.__dict__["_values"].__set__
_set_hash = Tuple.__dict__["_hash"].__set__
#: Drains a map object without building a list -- the cheapest way to
#: run a C-level setter over every element.
_consume = deque(maxlen=0).extend


def adopt_row(values: Mapping[str, Any]) -> Tuple:
    """A :class:`Tuple` adopting ``values`` without copying.

    The caller transfers ownership of a plain dict: the engine stores it
    as the tuple's backing mapping, so the caller must not mutate it
    afterwards.  Anything that is not exactly a dict is copied, same as
    the ordinary constructor.
    """
    t = _new_tuple(Tuple)
    _set_values(t, values if type(values) is dict else dict(values))
    _set_hash(t, None)
    return t


def _materialize(table, rows: Sequence[Mapping[str, Any]]):
    """Shape-check rows, extract the key column, and build the batch's
    tuples with all-C-loop passes.

    Returns ``(new, ts)`` -- the insertion-ordered ``pk -> Tuple``
    dict and the adopted :class:`Tuple` per row -- or ``None``.  Every
    pass is a C loop; no per-row Python frame runs.  Shape is proved
    batch-wide: all rows are exactly ``dict``, every row has
    ``len(attrs)`` keys, and the union of all keys is a subset of
    ``attrs`` -- together that forces each row's key set to equal
    ``attrs`` (equal-size subset).  Intra-batch key duplicates show up
    as ``len(new) != len(rows)``.  The ``new`` dict carries each key's
    hash, so committing it via ``dict.update`` never rehashes.
    """
    plan = table.plan
    attrs = plan.attr_set
    key_names = plan.key_names
    n = len(rows)
    if set(map(type, rows)) != {dict}:
        return None  # non-dict row (or empty batch): slow path decides
    if set(map(len, rows)) != {len(attrs)} or not attrs.issuperset(
        frozenset().union(*rows)
    ):
        return None  # some row's attribute set differs from the scheme
    if len(key_names) == 1:
        # ``zip`` with a single iterable wraps each value in a 1-tuple.
        pks = zip(map(itemgetter(key_names[0]), rows))
    else:
        pks = map(plan.pk, rows)
    ts = list(map(_new_tuple, repeat(Tuple, n)))
    _consume(map(_set_values, ts, rows))
    _consume(map(_set_hash, ts, repeat(None)))
    new = dict(zip(pks, ts))
    # Null keys collapse into (or simply are) entries probed after the
    # build: one dict lookup / one C identity scan replaces a per-row
    # null filter.  Duplicate null keys also shrink ``len(new)``.
    if len(new) != n:
        return None  # intra-batch duplicate primary key
    if len(key_names) == 1:
        if (NULL,) in new:
            return None  # null primary key
    elif NULL in chain.from_iterable(new):
        return None  # null component in a primary key
    return new, ts


def _validate_inserts(db, groups):
    """Columnar validation of insert groups against the pre-state.

    ``groups`` is a list of ``(table, rows)`` pairs, one per scheme.
    Returns ``(prepared, new_by_scheme)`` where ``prepared`` holds
    ``(table, rows, new)`` triples ready to commit, or ``None`` when the
    batch must take the slow path.  Performs no mutation.
    """
    identical = db.null_semantics == "identical"
    prepared = []
    new_by_scheme: dict[str, tuple] = {}
    for table, rows in groups:
        plan = table.plan
        made = _materialize(table, rows)
        if made is None:
            return None  # shape / null-key / intra-batch duplicate
        new, ts = made
        if not table.rows.keys().isdisjoint(new):
            return None  # primary-key clash with stored rows
        for _constraint, check in plan.bulk_null_checks:
            for r in rows:
                if not check(r):
                    return None
        for key_names, extract in plan.candidate_keys:
            if identical:
                vals = [extract(r) for r in rows]
            else:
                vals = [
                    v for r in rows if not contains_null(v := extract(r))
                ]
            if len(set(vals)) != len(vals):
                return None  # intra-batch candidate-key duplicate
            if vals and not table.key_indexes[key_names].keys().isdisjoint(
                vals
            ):
                return None
        prepared.append((table, rows, new, ts))
        new_by_scheme[table.scheme.name] = (new, ts)
    # Deferred outgoing-reference existence: one probe per distinct
    # foreign-key value, against stored rows plus the batch itself.
    for table, rows, _new, _ts in prepared:
        for ref in table.plan.outgoing:
            extract = ref.extract
            vals = set()
            for r in rows:
                v = extract(r)
                if not contains_null(v):
                    vals.add(v)
            if not vals:
                continue
            rtable = db._tables[ref.scheme]
            batch_new = new_by_scheme.get(ref.scheme)
            if ref.is_pk:
                rrows = rtable.rows
                for v in vals:
                    if v in rrows:
                        continue
                    if batch_new is not None and v in batch_new[0]:
                        continue
                    return None  # dangling reference
            else:
                gindex = rtable.group_indexes.get(ref.attrs)
                if gindex is None:
                    return None  # unindexed group: slow path scans
                inbatch = None
                for v in vals:
                    if gindex.get(v):
                        continue
                    if batch_new is not None:
                        if inbatch is None:
                            rex = attr_extractor(ref.attrs)
                            inbatch = {
                                rex(t._values) for t in batch_new[1]
                            }
                        if v in inbatch:
                            continue
                    return None
    return prepared


def _commit_inserts(db, prepared) -> None:
    """Apply validated insert groups: bulk row adoption plus the exact
    index maintenance ``Database._store_raw`` performs per row."""
    identical = db.null_semantics == "identical"
    for table, rows, new, _ts in prepared:
        table.rows.update(new)
        table.version += 1
        for key_names, extract in table.plan.candidate_keys:
            index = table.key_indexes[key_names]
            if identical:
                index.update(zip(map(extract, rows), new))
            else:
                index.update(
                    (v, pk)
                    for pk, r in zip(new, rows)
                    if not contains_null(v := extract(r))
                )
        for attrs, gindex in table.group_indexes.items():
            extract = table.group_extractors[attrs]
            for pk, r in zip(new, rows):
                value = extract(r)
                if contains_null(value):
                    continue
                bucket = gindex.get(value)
                if bucket is None:
                    gindex[value] = {pk: None}
                else:
                    bucket[pk] = None


def bulk_insert_many(db, scheme_name: str, rows) -> list[Tuple] | None:
    """Fast path for :meth:`Database.insert_many`.

    Returns the stored tuples in row order, or ``None`` to send the
    batch down the row-at-a-time path (which also reports any error).
    """
    table = db._tables.get(scheme_name)
    if table is None:
        return None
    # A big batch allocates tens of thousands of tracked containers;
    # without a pause, generational collections walk the whole database
    # heap mid-batch and roughly double the per-row cost.
    paused = gc.isenabled()
    if paused:
        gc.disable()
    try:
        try:
            prepared = _validate_inserts(db, [(table, rows)])
        except (AttributeError, KeyError, TypeError):
            return None  # malformed rows: the slow path raises canonically
        if prepared is None:
            return None
        _commit_inserts(db, prepared)
    finally:
        if paused:
            gc.enable()
    ts = prepared[0][3]
    db.stats.inserts += len(ts)
    db.stats.bulk_rows += len(ts)
    if ts:
        name = prepared[0][0].scheme.name
        db.stats.scheme_mutations[name] = (
            db.stats.scheme_mutations.get(name, 0) + len(ts)
        )
    return ts


def bulk_apply(db, ops) -> list[Tuple | None] | None:
    """Fast path for :meth:`Database.apply_batch`.

    Handles all-insert and all-delete batches; anything mixed, malformed
    or unprovable returns ``None`` for the slow path.
    """
    paused = gc.isenabled()
    if paused:
        gc.disable()  # see bulk_insert_many: no mid-batch collections
    try:
        if not ops:
            return None  # let the slow path produce its []
        first = ops[0][0]
        if first == "insert":
            return _apply_inserts(db, ops)
        if first == "delete":
            return _apply_deletes(db, ops)
    except (AttributeError, IndexError, KeyError, TypeError, ValueError):
        return None
    finally:
        if paused:
            gc.enable()
    return None


def _apply_inserts(db, ops) -> list[Tuple | None] | None:
    groups: dict[str, list] = {}
    order: list[tuple[str, int]] = []
    for kind, scheme_name, row in ops:
        if kind != "insert":
            return None  # mixed batch: slow path
        rows = groups.get(scheme_name)
        if rows is None:
            rows = groups[scheme_name] = []
        order.append((scheme_name, len(rows)))
        rows.append(row)
    glist = []
    for scheme_name, rows in groups.items():
        table = db._tables.get(scheme_name)
        if table is None:
            return None
        glist.append((table, rows))
    prepared = _validate_inserts(db, glist)
    if prepared is None:
        return None
    _commit_inserts(db, prepared)
    stored = {
        table.scheme.name: ts for table, _rows, _new, ts in prepared
    }
    db.stats.inserts += len(ops)
    db.stats.bulk_rows += len(ops)
    for table, _rows, _new, ts in prepared:
        if ts:
            name = table.scheme.name
            db.stats.scheme_mutations[name] = (
                db.stats.scheme_mutations.get(name, 0) + len(ts)
            )
    return [stored[s][i] for s, i in order]


def _apply_deletes(db, ops) -> list[None] | None:
    # Group the batch's keys by scheme, normalizing scalar keys the way
    # the slow path does; a missing row or an intra-batch duplicate is a
    # slow-path matter (KeyError with the canonical message).
    groups: dict[str, list[tuple]] = {}
    for kind, scheme_name, pk in ops:
        if kind != "delete":
            return None  # mixed batch: slow path
        pks = groups.get(scheme_name)
        if pks is None:
            pks = groups[scheme_name] = []
        pks.append(pk if isinstance(pk, tuple) else (pk,))
    deleted: dict[str, tuple] = {}
    for scheme_name, pks in groups.items():
        table = db._tables.get(scheme_name)
        if table is None:
            return None
        olds = dict(zip(pks, map(table.rows.get, pks)))
        # A duplicate key collapses the dict; a missing row fails the
        # subset test (both run on cached hashes, no Python-level
        # comparisons).
        if len(olds) != len(pks) or not olds.keys() <= table.rows.keys():
            return None
        deleted[scheme_name] = (table, olds)
    # Deferred restrict verification, evaluated on the *pre*-state with
    # in-batch adjustments (a child blocks iff it is not itself deleted;
    # a blocked value is still fine iff a non-deleted row keeps it
    # alive).  Nothing has been mutated yet, so bailing out needs no
    # restore and the slow path sees the original state and raises the
    # canonical ``restrict-batch`` error.
    for scheme_name, (table, olds) in deleted.items():
        plan = table.plan
        if not plan.incoming:
            continue
        dead = olds
        by_attrs: dict[tuple, list] = {}
        for ref in plan.incoming:
            by_attrs.setdefault(tuple(ref.ind.rhs_attrs), []).append(ref)
        for rhs_attrs, refs in by_attrs.items():
            rhs_is_pk = rhs_attrs == plan.key_names
            # One extraction pass per referenced column group, shared by
            # every inclusion dependency over it -- and free when the
            # group *is* the primary key: the deleted-keys dict already
            # holds exactly the disappearing values (with cached
            # hashes).
            if rhs_is_pk:
                vals = olds
            elif len(rhs_attrs) == 1:
                nm = rhs_attrs[0]
                vals = {
                    (v,)
                    for o in olds.values()
                    if (v := o._values[nm]) is not NULL
                }
            else:
                extract = refs[0].extract
                vals = set()
                for o in olds.values():
                    v = extract(o._values)
                    if not contains_null(v):
                        vals.add(v)
            if not vals:
                continue
            gindex = None
            if not rhs_is_pk:
                gindex = table.group_indexes.get(rhs_attrs)
                if gindex is None:
                    return None
            for ref in refs:
                ctable = db._tables[ref.scheme]
                centry = deleted.get(ref.scheme)
                cdead = centry[1] if centry is not None else ()
                if ref.is_pk:
                    container = ctable.rows
                else:
                    container = ctable.group_indexes.get(ref.attrs)
                    if container is None:
                        return None
                # Values both disappearing and referenced by this child
                # table, found by scanning the smaller side -- the
                # common no-conflict batch costs one C-level membership
                # pass.
                if len(container) < len(vals):
                    suspects = [v for v in container if v in vals]
                else:
                    suspects = [v for v in vals if v in container]
                for v in suspects:
                    if ref.is_pk:
                        blocked = v not in cdead
                    else:
                        bucket = container[v]
                        blocked = any(pk not in cdead for pk in bucket)
                    if not blocked:
                        continue  # every referencing child dies too
                    if rhs_is_pk:
                        alive = v in table.rows and v not in dead
                    else:
                        bucket = gindex.get(v)
                        alive = bucket is not None and any(
                            pk not in dead for pk in bucket
                        )
                    if not alive:
                        return None  # slow path raises restrict-batch
    # Commit: bulk row removal plus the exact index maintenance
    # ``Database._unstore_raw`` performs per row.
    for scheme_name, (table, olds) in deleted.items():
        trows = table.rows
        plan = table.plan
        if len(olds) * 2 >= len(trows):
            # Deleting a large fraction: rebuilding the survivor dict is
            # one C pass instead of per-key deletions (order preserved).
            table.rows = {
                pk: t for pk, t in trows.items() if pk not in olds
            }
        else:
            for pk in olds:
                del trows[pk]
        table.version += 1
        for key_names, extract in plan.candidate_keys:
            index = table.key_indexes[key_names]
            for pk, old in olds.items():
                value = extract(old._values)
                if index.get(value) == pk:
                    del index[value]
        for attrs, gindex in table.group_indexes.items():
            extract = table.group_extractors[attrs]
            for pk, old in olds.items():
                value = extract(old._values)
                bucket = gindex.get(value)
                if bucket is not None:
                    bucket.pop(pk, None)
                    if not bucket:
                        del gindex[value]
    n_ops = len(ops)
    db.stats.deletes += n_ops
    db.stats.bulk_rows += n_ops
    for scheme_name, (table, olds) in deleted.items():
        db.stats.scheme_mutations[scheme_name] = (
            db.stats.scheme_mutations.get(scheme_name, 0) + len(olds)
        )
    return [None] * n_ops
