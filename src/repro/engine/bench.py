"""Engine micro-benchmark harness.

Measures ops/sec for the engine's core operations -- insert, update,
delete and navigate -- on the paper's Figure 3 (normalized) versus
Figure 6 (merged) university schemas at growing scale, plus the
speedup of the index-backed restrict-delete and ``find_referencing``
paths over the scan-based oracle (the seed engine's behaviour).

The results are emitted as a JSON document (``BENCH_engine.json`` at the
repo root) so the perf trajectory is tracked across PRs; run it via::

    python benchmarks/bench_engine.py [--sizes 1000,10000] [-o BENCH_engine.json]
    python -m repro bench -o BENCH_engine.json
"""

from __future__ import annotations

import platform
import time
from typing import Any, Callable

from repro.core.merge import merge
from repro.core.remove import remove_all
from repro.engine.database import ConstraintViolationError, Database
from repro.engine.oracle import OracleDatabase
from repro.engine.query import QueryEngine
from repro.engine.stats import EngineStats
from repro.relational.tuples import NULL
from repro.workloads.university import university_relational, university_state

DEFAULT_SIZES = (1_000, 10_000, 50_000)

#: Navigations of the course-profile query on the Figure 3 schema.
PROFILE_NAVIGATIONS = [
    (["C.NR"], "OFFER", ["O.C.NR"]),
    (["C.NR"], "TEACH", ["T.C.NR"]),
    (["C.NR"], "ASSIST", ["A.C.NR"]),
]


def _ops_per_second(
    fn: Callable[[int], Any],
    n_ops: int,
    stats: EngineStats | None = None,
    op: str | None = None,
) -> float:
    """Throughput of ``fn``; with ``stats``/``op`` every call's latency
    is also recorded into ``stats.latencies[op]`` (the p50/p99 columns
    of the report)."""
    if stats is None:
        start = time.perf_counter()
        for i in range(n_ops):
            fn(i)
        elapsed = time.perf_counter() - start
        return n_ops / elapsed if elapsed > 0 else float("inf")
    observe = stats.observe
    start = time.perf_counter()
    for i in range(n_ops):
        t0 = time.perf_counter()
        fn(i)
        observe(op, time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    return n_ops / elapsed if elapsed > 0 else float("inf")


def _build_databases(n_courses: int):
    schema = university_relational()
    state = university_state(n_courses=n_courses, seed=7)
    simplified = remove_all(
        merge(schema, ["COURSE", "OFFER", "TEACH", "ASSIST"])
    )
    unmerged = Database(schema)
    unmerged.load_state(state, validate=False)
    merged = Database(simplified.schema)
    merged.load_state(simplified.forward.apply(state), validate=False)
    oracle = OracleDatabase(schema)
    oracle.load_state(state)
    for db in (unmerged, merged, oracle):
        db.insert("DEPARTMENT", {"D.NAME": "bench-dept"})
        db.insert("PERSON", {"P.SSN": "bench-fac"})
        db.insert("FACULTY", {"F.SSN": "bench-fac"})
        db.insert("PERSON", {"P.SSN": "bench-stu"})
        db.insert("STUDENT", {"S.SSN": "bench-stu"})
    return unmerged, merged, simplified, oracle


def _bench_fig3(db: Database, n_ops: int) -> dict[str, float]:
    def insert_object(i: int) -> None:
        nr = f"new-{i:06d}"
        db.insert("COURSE", {"C.NR": nr})
        db.insert("OFFER", {"O.C.NR": nr, "O.D.NAME": "bench-dept"})
        db.insert("TEACH", {"T.C.NR": nr, "T.F.SSN": "bench-fac"})
        db.insert("ASSIST", {"A.C.NR": nr, "A.S.SSN": "bench-stu"})

    q = QueryEngine(db)
    stats = db.stats
    result = {
        "insert": _ops_per_second(insert_object, n_ops, stats, "insert"),
        "update": _ops_per_second(
            lambda i: db.update(
                "TEACH", f"new-{i:06d}", {"T.F.SSN": "bench-fac"}
            ),
            n_ops,
            stats,
            "update",
        ),
        "navigate": _ops_per_second(
            lambda i: q.profile(
                "COURSE", f"crs-{i % 1000:04d}", PROFILE_NAVIGATIONS
            ),
            n_ops,
            stats,
            "navigate",
        ),
        "delete": _ops_per_second(
            lambda i: db.delete("TEACH", f"new-{i:06d}"), n_ops, stats, "delete"
        ),
    }
    return result


def _bench_fig6(db: Database, merged_name: str, n_ops: int) -> dict[str, float]:
    def insert_object(i: int) -> None:
        db.insert(
            merged_name,
            {
                "C.NR": f"new-{i:06d}",
                "O.D.NAME": "bench-dept",
                "T.F.SSN": "bench-fac",
                "A.S.SSN": "bench-stu",
            },
        )

    q = QueryEngine(db)
    stats = db.stats
    return {
        "insert": _ops_per_second(insert_object, n_ops, stats, "insert"),
        "update": _ops_per_second(
            lambda i: db.update(
                merged_name, f"new-{i:06d}", {"T.F.SSN": "bench-fac"}
            ),
            n_ops,
            stats,
            "update",
        ),
        "navigate": _ops_per_second(
            lambda i: q.profile(merged_name, f"crs-{i % 1000:04d}", []),
            n_ops,
            stats,
            "navigate",
        ),
        "delete": _ops_per_second(
            lambda i: db.update(merged_name, f"new-{i:06d}", {"T.F.SSN": NULL}),
            n_ops,
            stats,
            "delete",
        ),
    }


def _bench_scan_paths(
    unmerged: Database, oracle: OracleDatabase, n_ops: int
) -> tuple[dict[str, float], dict[str, float]]:
    """Indexed engine vs scan oracle on the two formerly-O(n) paths.

    ``find_referencing`` probes a heavily-referenced department (~n/3
    child rows); the restrict-delete probes ``bench-dept``, referenced
    by exactly one OFFER row *appended last* -- the needle-late case
    where the seed's restrict scan walks the whole child relation
    before finding the blocker.
    """
    dept = next(iter(unmerged.scan("DEPARTMENT")))
    for db in (unmerged, oracle):
        db.insert("COURSE", {"C.NR": "bench-crs"})
        db.insert("OFFER", {"O.C.NR": "bench-crs", "O.D.NAME": "bench-dept"})
    q = QueryEngine(unmerged)

    def indexed_find(i: int) -> None:
        q.find_referencing(dept, "OFFER", ["O.D.NAME"], ["D.NAME"])

    def indexed_restrict(i: int) -> None:
        try:
            unmerged.delete("DEPARTMENT", "bench-dept")
        except ConstraintViolationError:
            pass
        else:  # pragma: no cover - the department is always referenced
            raise AssertionError("restrict-delete unexpectedly succeeded")

    # The oracle scans O(n) per op; cap its reps to keep runs short.
    oracle_ops = min(n_ops, 100)

    def oracle_find(i: int) -> None:
        oracle.find_referencing(dept, "OFFER", ["O.D.NAME"], ["D.NAME"])

    def oracle_restrict(i: int) -> None:
        try:
            oracle.delete("DEPARTMENT", "bench-dept")
        except ConstraintViolationError:
            pass
        else:  # pragma: no cover
            raise AssertionError("restrict-delete unexpectedly succeeded")

    indexed = {
        "find_referencing": _ops_per_second(
            indexed_find, n_ops, unmerged.stats, "find_referencing"
        ),
        "restrict_delete": _ops_per_second(
            indexed_restrict, n_ops, unmerged.stats, "restrict_delete"
        ),
    }
    # Same per-call timing as the indexed side, so the speedup compares
    # like with like; the oracle's latencies are not reported.
    scan_stats = EngineStats()
    scan = {
        "find_referencing": _ops_per_second(
            oracle_find, oracle_ops, scan_stats, "find_referencing"
        ),
        "restrict_delete": _ops_per_second(
            oracle_restrict, oracle_ops, scan_stats, "restrict_delete"
        ),
    }
    return indexed, scan


def _bench_bulk(
    db: Database, n_ops: int, reps: int = 3
) -> tuple[dict[str, float], dict[str, float], dict[str, float]]:
    """Rows/sec through insert_many + apply_batch (delete back), for
    both row representations.

    Measures the slotted columnar path (``Database(slotted=True)``, the
    default) and the row-at-a-time dict path (the pre-slotted engine,
    forced via the ``_slotted`` switch) on the same database, taking the
    best of ``reps`` alternating rounds so CPU-frequency noise does not
    land on one side only.  Returns ``(slotted, dict_path, speedup)``.
    """
    rows = [{"C.NR": f"bulk-{i:06d}"} for i in range(n_ops)]
    ops = [("delete", "COURSE", (f"bulk-{i:06d}",)) for i in range(n_ops)]

    def _once() -> tuple[float, float]:
        start = time.perf_counter()
        db.insert_many("COURSE", rows)
        mid = time.perf_counter()
        db.apply_batch(ops)
        end = time.perf_counter()
        return n_ops / (mid - start), n_ops / (end - mid)

    was_slotted = db._slotted
    rates = {True: [0.0, 0.0], False: [0.0, 0.0]}
    try:
        for _ in range(reps):
            for slotted in (True, False):
                db._slotted = slotted
                insert_rate, delete_rate = _once()
                best = rates[slotted]
                best[0] = max(best[0], insert_rate)
                best[1] = max(best[1], delete_rate)
    finally:
        db._slotted = was_slotted
    slotted_rates = {
        "insert_many": rates[True][0],
        "apply_batch_delete": rates[True][1],
    }
    dict_rates = {
        "insert_many": rates[False][0],
        "apply_batch_delete": rates[False][1],
    }
    speedup = {
        op: slotted_rates[op] / dict_rates[op] if dict_rates[op] else 0.0
        for op in slotted_rates
    }
    return slotted_rates, dict_rates, speedup


def _bench_wal(n_ops: int, wal_path: str | None) -> dict[str, float]:
    """Durability overhead: WAL-off vs WAL-on insert throughput, plus
    checkpoint latency at the workload's final size.

    Without an explicit ``wal_path`` the log lives in memory, measuring
    the logging discipline itself (encode + checksum + append) rather
    than the disk; a path adds the file-system cost.
    """
    from repro.engine.wal import MemoryStorage, WriteAheadLog

    schema = university_relational()

    def _fresh(with_wal: bool) -> Database:
        if not with_wal:
            db = Database(schema)
        elif wal_path is None:
            db = Database(schema, wal=WriteAheadLog(MemoryStorage()))
        else:
            open(wal_path, "w").close()  # start from an empty log
            db = Database(schema, wal_path=wal_path)
        db.insert("DEPARTMENT", {"D.NAME": "bench-dept"})
        return db

    off_db = _fresh(with_wal=False)
    insert_off = _ops_per_second(
        lambda i: off_db.insert("COURSE", {"C.NR": f"wal-{i:06d}"}), n_ops
    )
    on_db = _fresh(with_wal=True)
    insert_on = _ops_per_second(
        lambda i: on_db.insert("COURSE", {"C.NR": f"wal-{i:06d}"}), n_ops
    )
    start = time.perf_counter()
    on_db.checkpoint()
    checkpoint_s = time.perf_counter() - start
    on_db.wal.close()
    return {
        "insert_wal_off": insert_off,
        "insert_wal_on": insert_on,
        "wal_overhead_x": insert_off / insert_on if insert_on else 0.0,
        "checkpoint_ms": checkpoint_s * 1e3,
    }


def _bench_advisor(n_courses: int, n_ops: int) -> dict[str, Any]:
    """The advisor's acceptance measurement: profile-join latency on
    the live engine before and after an *advised online* merge.

    A fresh WAL-backed university database serves the Figure 3
    course-profile navigation until the mined counters make the COURSE
    family pay; the advisor's recommendation is then applied through
    ``apply_merge_online`` (quiesce, transform, re-verify, one WAL
    transaction) and the same profile repeats as a single ``get`` on
    the merged scheme.
    """
    from repro.advisor import advise, apply_recommendation
    from repro.engine.wal import MemoryStorage, WriteAheadLog

    db = Database(
        university_relational(), wal=WriteAheadLog(MemoryStorage())
    )
    db.load_state(university_state(n_courses=n_courses, seed=7), validate=False)
    q = QueryEngine(db)
    stats = db.stats
    before = _ops_per_second(
        lambda i: q.profile(
            "COURSE", f"crs-{i % 1000:04d}", PROFILE_NAVIGATIONS
        ),
        n_ops,
        stats,
        "advisor_join_before",
    )
    report = advise(db)
    recommendation = report["recommendation"]
    start = time.perf_counter()
    simplified = apply_recommendation(db, report)
    apply_ms = (time.perf_counter() - start) * 1_000
    merged_name = simplified.info.merged_name
    after = _ops_per_second(
        lambda i: q.profile(merged_name, f"crs-{i % 1000:04d}", []),
        n_ops,
        stats,
        "advisor_join_after",
    )
    latencies = _latency_summary(
        stats, ("advisor_join_before", "advisor_join_after")
    )
    return {
        "recommended": recommendation["key_relation"],
        "merged_name": merged_name,
        "joins_observed": recommendation["workload"]["joins_saved"],
        "apply_ms": round(apply_ms, 2),
        "join_ops_per_s_before": round(before, 1),
        "join_ops_per_s_after": round(after, 1),
        "join_p50_us_before": latencies["advisor_join_before"]["p50_us"],
        "join_p50_us_after": latencies["advisor_join_after"]["p50_us"],
        "join_p99_us_before": latencies["advisor_join_before"]["p99_us"],
        "join_p99_us_after": latencies["advisor_join_after"]["p99_us"],
        "join_speedup_x": round(after / before, 2) if before else 0.0,
    }


def _latency_summary(
    stats: EngineStats, ops: tuple[str, ...]
) -> dict[str, dict]:
    """p50/p99 (log2-bucket upper bounds, in us) per measured op."""
    out = {}
    for op in ops:
        hist = stats.latencies.get(op)
        if hist is None or hist.count == 0:
            continue
        summary = hist.to_dict()
        out[op] = {
            "count": summary["count"],
            "p50_us": summary["p50_us"],
            "p99_us": summary["p99_us"],
            "max_us": summary["max_us"],
        }
    return out


def run_engine_benchmark(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    ops_cap: int = 2_000,
    wal_path: str | None = None,
) -> dict[str, Any]:
    """Run the full harness; returns the JSON-ready report.

    ``wal_path`` routes the WAL measurement through file storage at
    that path (truncated first); by default it runs against in-memory
    storage, isolating the logging cost from the disk's.
    """
    if not sizes or any(n <= 0 for n in sizes):
        raise ValueError("sizes must be positive integers")
    if ops_cap <= 0:
        raise ValueError("ops_cap must be a positive integer")
    report: dict[str, Any] = {
        "harness": "benchmarks/bench_engine.py",
        "python": platform.python_version(),
        "sizes": list(sizes),
        "ops_cap": ops_cap,
        "results": [],
    }
    for n in sizes:
        n_ops = min(ops_cap, n)
        unmerged, merged, simplified, oracle = _build_databases(n)
        fig3 = _bench_fig3(unmerged, n_ops)
        fig6 = _bench_fig6(merged, simplified.info.merged_name, n_ops)
        indexed, scan = _bench_scan_paths(unmerged, oracle, n_ops)
        bulk, bulk_dict, bulk_speedup = _bench_bulk(unmerged, n_ops)
        wal = _bench_wal(n_ops, wal_path)
        advisor = _bench_advisor(n, n_ops)
        mutation_ops = ("insert", "update", "navigate", "delete")
        report["results"].append(
            {
                "n_courses": n,
                "n_ops": n_ops,
                "fig3_ops_per_s": {k: round(v, 1) for k, v in fig3.items()},
                "fig6_ops_per_s": {k: round(v, 1) for k, v in fig6.items()},
                "fig3_latency_us": _latency_summary(
                    unmerged.stats, mutation_ops
                ),
                "fig6_latency_us": _latency_summary(merged.stats, mutation_ops),
                "indexed_latency_us": _latency_summary(
                    unmerged.stats, ("find_referencing", "restrict_delete")
                ),
                "indexed_ops_per_s": {
                    k: round(v, 1) for k, v in indexed.items()
                },
                "scan_baseline_ops_per_s": {
                    k: round(v, 1) for k, v in scan.items()
                },
                "speedup_vs_scan": {
                    k: round(indexed[k] / scan[k], 1) for k in indexed
                },
                "bulk_rows_per_s": {k: round(v, 1) for k, v in bulk.items()},
                "bulk_dict_rows_per_s": {
                    k: round(v, 1) for k, v in bulk_dict.items()
                },
                "slotted_speedup_x": {
                    k: round(v, 2) for k, v in bulk_speedup.items()
                },
                "wal": {k: round(v, 2) for k, v in wal.items()},
                "advisor": advisor,
            }
        )
    return report


def format_report(report: dict[str, Any]) -> str:
    """A printable table of one harness run."""
    lines = [
        f"engine benchmark (python {report['python']}, "
        f"{report['ops_cap']} ops/measurement)",
        f"{'n':>8} {'op':>18} {'fig3 ops/s':>12} {'fig6 ops/s':>12}"
        f" {'fig3 p50/p99 us':>18} {'fig6 p50/p99 us':>18}",
    ]

    def _p(latencies: dict, op: str) -> str:
        lat = latencies.get(op)
        if not lat:
            return "-"
        return f"{lat['p50_us']:.0f}/{lat['p99_us']:.0f}"

    for row in report["results"]:
        n = row["n_courses"]
        fig3_lat = row.get("fig3_latency_us", {})
        fig6_lat = row.get("fig6_latency_us", {})
        for op in ("insert", "update", "delete", "navigate"):
            lines.append(
                f"{n:>8} {op:>18} "
                f"{row['fig3_ops_per_s'][op]:>12.0f} "
                f"{row['fig6_ops_per_s'][op]:>12.0f}"
                f" {_p(fig3_lat, op):>18} {_p(fig6_lat, op):>18}"
            )
        for op in ("find_referencing", "restrict_delete"):
            lines.append(
                f"{n:>8} {op:>18} indexed {row['indexed_ops_per_s'][op]:>12.0f}"
                f"  scan {row['scan_baseline_ops_per_s'][op]:>12.0f}"
                f"  speedup {row['speedup_vs_scan'][op]:>8.1f}x"
            )
        dict_rates = row.get("bulk_dict_rows_per_s", {})
        speedups = row.get("slotted_speedup_x", {})
        for op, rate in row["bulk_rows_per_s"].items():
            extra = ""
            if op in dict_rates:
                extra = (
                    f"  dict {dict_rates[op]:>12.0f}"
                    f"  speedup {speedups.get(op, 0):>6.2f}x"
                )
            lines.append(f"{n:>8} {op:>18} {rate:>12.0f} rows/s{extra}")
        wal = row.get("wal")
        if wal:
            lines.append(
                f"{n:>8} {'wal insert':>18} "
                f"off {wal['insert_wal_off']:>12.0f}"
                f"  on {wal['insert_wal_on']:>12.0f}"
                f"  overhead {wal['wal_overhead_x']:>6.2f}x"
                f"  checkpoint {wal['checkpoint_ms']:.1f} ms"
            )
        advisor = row.get("advisor")
        if advisor:
            lines.append(
                f"{n:>8} {'advised merge':>18} "
                f"join p50 {advisor['join_p50_us_before']:.0f}us"
                f" -> {advisor['join_p50_us_after']:.0f}us"
                f"  speedup {advisor['join_speedup_x']:>6.2f}x"
                f"  apply {advisor['apply_ms']:.1f} ms"
                f"  ({advisor['recommended']} -> {advisor['merged_name']})"
            )
    return "\n".join(lines)
