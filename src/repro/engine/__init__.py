"""A small constraint-enforcing in-memory storage engine.

The paper motivates merging with access performance: "decreasing the
number of relations ... reduces the need for joining relations, and
usually results in a better access performance" (Section 1).  The paper
itself reports no measurements; this engine is the reproduction's
measurement substrate:

* :mod:`repro.engine.database` -- a mutable database over one relational
  schema, enforcing key dependencies, inclusion dependencies and null
  constraints on every insert/update/delete (the behaviours Section 5.1
  attributes to triggers/rules/validprocs);
* :mod:`repro.engine.query` -- point lookups and join navigation with
  operation counting;
* :mod:`repro.engine.stats` -- the counters the join-reduction benchmarks
  report.
"""

from repro.engine.database import ConstraintViolationError, Database
from repro.engine.query import QueryEngine
from repro.engine.stats import EngineStats
from repro.engine.views import MergedViewResolver

__all__ = [
    "ConstraintViolationError",
    "Database",
    "QueryEngine",
    "EngineStats",
    "MergedViewResolver",
]
