"""A small constraint-enforcing in-memory storage engine.

The paper motivates merging with access performance: "decreasing the
number of relations ... reduces the need for joining relations, and
usually results in a better access performance" (Section 1).  The paper
itself reports no measurements; this engine is the reproduction's
measurement substrate:

* :mod:`repro.engine.database` -- a mutable database over one relational
  schema, enforcing key dependencies, inclusion dependencies and null
  constraints on every insert/update/delete (the behaviours Section 5.1
  attributes to triggers/rules/validprocs);
* :mod:`repro.engine.query` -- point lookups and join navigation with
  operation counting;
* :mod:`repro.engine.stats` -- the counters the join-reduction benchmarks
  report;
* :mod:`repro.engine.plans` -- compiled per-scheme access plans (key /
  reference / null-group extractors) shared by the hot paths;
* :mod:`repro.engine.oracle` -- a scan-based reference implementation,
  the differential-testing oracle and benchmark baseline;
* :mod:`repro.engine.bench` -- the ops/sec harness behind
  ``benchmarks/bench_engine.py`` and ``python -m repro bench``;
* :mod:`repro.engine.wal` / :mod:`repro.engine.recovery` -- the
  durability subsystem: a checksummed write-ahead log, checkpointing,
  and crash recovery that restores exactly the committed consistent
  state (Definition 2.1);
* :mod:`repro.engine.faults` -- deterministic storage fault injection
  for the crash-point test matrix.
"""

from repro.engine.database import ConstraintViolationError, Database
from repro.engine.faults import FaultyStorage, InjectedFault
from repro.engine.oracle import OracleDatabase
from repro.engine.plans import SchemeAccessPlan, compile_schema
from repro.engine.query import QueryEngine
from repro.engine.recovery import (
    RecoveryError,
    RecoveryReport,
    RecoveryResult,
    recover_database,
)
from repro.engine.stats import EngineStats
from repro.engine.views import MergedViewResolver
from repro.engine.wal import (
    FileStorage,
    MemoryStorage,
    Storage,
    WalError,
    WriteAheadLog,
    parse_wal,
)

__all__ = [
    "ConstraintViolationError",
    "Database",
    "OracleDatabase",
    "QueryEngine",
    "EngineStats",
    "MergedViewResolver",
    "SchemeAccessPlan",
    "compile_schema",
    "WriteAheadLog",
    "WalError",
    "Storage",
    "FileStorage",
    "MemoryStorage",
    "parse_wal",
    "FaultyStorage",
    "InjectedFault",
    "recover_database",
    "RecoveryError",
    "RecoveryReport",
    "RecoveryResult",
]
