"""Execution-backend protocol: a second, real-DBMS enforcement opinion.

Section 5.1 of the paper maps every merged-schema constraint onto the
mechanisms of 1992 systems; :mod:`repro.ddl` encodes that analysis as
SQL text.  A :class:`Backend` *runs* it: the schema is materialized in a
live database, the same workload the in-memory engine sees is replayed
through SQL, and every rejection is classified back into the engine's
:class:`~repro.engine.database.ConstraintViolationError` vocabulary --
so the engine, the scan oracle and the DBMS can be compared decision by
decision (``tests/engine/test_differential.py``).

The contract deliberately mirrors :class:`repro.engine.database.Database`:

* ``insert``/``update``/``delete`` take the engine's row encoding
  (attribute-name mappings with the :data:`~repro.relational.tuples.NULL`
  singleton) and raise ``ConstraintViolationError`` with the same
  ``kind``/``rule`` frame on rejection, ``KeyError`` for a missing
  primary key;
* ``insert_many`` is atomic with *deferred* outgoing reference checks,
  like the engine's bulk path;
* ``state()`` returns a :class:`~repro.relational.state.DatabaseState`
  directly comparable (order-insensitively) with ``Database.state()``.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, Mapping

from repro.engine.database import ConstraintViolationError
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.state import DatabaseState
from repro.relational.tuples import NULL, Tuple


class BackendUnavailableError(RuntimeError):
    """The backend's driver is not importable in this environment."""


def encode_sql_value(value: Any) -> Any:
    """Engine value -> SQL parameter (:data:`NULL` becomes ``None``)."""
    return None if value is NULL else value


def decode_sql_value(value: Any) -> Any:
    """SQL result value -> engine value (``None`` becomes :data:`NULL`)."""
    return NULL if value is None else value


def check_shape(scheme: RelationScheme, row: Mapping[str, Any]) -> Tuple:
    """The engine's structural pre-check, shared by all backends.

    A row must bind exactly the scheme's attributes; anything else is a
    ``structure`` violation (never a driver error), matching
    ``Database._check_shape``.
    """
    expected = set(scheme.attribute_names)
    given = row.keys() if isinstance(row, (dict, Tuple)) else set(row)
    if set(given) != expected:
        missing = expected - set(given)
        extra = set(given) - expected
        raise ConstraintViolationError(
            "structure",
            f"{scheme.name}: row attributes mismatch "
            f"(missing {sorted(missing)}, unexpected {sorted(extra)})",
        )
    return Tuple(row)


class Backend(abc.ABC):
    """One live DBMS holding one deployed :class:`RelationalSchema`."""

    #: The deployed schema (set by :meth:`deploy`, updated by ``migrate``).
    schema: RelationalSchema | None

    @abc.abstractmethod
    def deploy(self, schema: RelationalSchema) -> None:
        """Create every table and constraint of ``schema``."""

    @abc.abstractmethod
    def insert(self, scheme_name: str, row: Mapping[str, Any]) -> Tuple:
        """Insert one row; ``ConstraintViolationError`` on rejection."""

    @abc.abstractmethod
    def update(
        self,
        scheme_name: str,
        pk: tuple[Any, ...] | Any,
        updates: Mapping[str, Any],
    ) -> Tuple:
        """Update one row by primary key (partial ``updates`` mapping)."""

    @abc.abstractmethod
    def delete(self, scheme_name: str, pk: tuple[Any, ...] | Any) -> None:
        """Delete by primary key, restricting while referenced."""

    @abc.abstractmethod
    def insert_many(
        self, scheme_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> list[Tuple]:
        """Atomic bulk insert with deferred outgoing reference checks."""

    @abc.abstractmethod
    def get(self, scheme_name: str, pk: tuple[Any, ...] | Any) -> Tuple | None:
        """Primary-key lookup."""

    @abc.abstractmethod
    def count(self, scheme_name: str) -> int:
        """Current row count of one relation."""

    @abc.abstractmethod
    def state(self) -> DatabaseState:
        """A snapshot of the full contents, in engine encoding."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the connection."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
