"""Execution backends: the paper's Section 5.1 translations, running.

:mod:`repro.ddl` decides *how* each merged-schema constraint maps onto a
target DBMS; this package materializes those decisions in a live
database and classifies every rejection back into the engine's error
frame, giving the reproduction an independent enforcement referee
(see docs/BACKENDS.md and ``tests/engine/test_differential.py``).
"""

from repro.backend.base import (
    Backend,
    BackendUnavailableError,
    check_shape,
    decode_sql_value,
    encode_sql_value,
)
from repro.backend.migrate import MigrationScript, eta_select, generate_migration
from repro.backend.postgres import PostgresBackend, postgres_deploy_sql
from repro.backend.sqlite import SQLiteBackend, candidate_key_trigger_sql

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "MigrationScript",
    "PostgresBackend",
    "SQLiteBackend",
    "candidate_key_trigger_sql",
    "check_shape",
    "decode_sql_value",
    "encode_sql_value",
    "eta_select",
    "generate_migration",
    "postgres_deploy_sql",
]
