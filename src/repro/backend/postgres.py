"""PostgreSQL execution backend, gated on ``psycopg`` availability.

The adapter mirrors :class:`~repro.backend.sqlite.SQLiteBackend` behind
the same :class:`~repro.backend.base.Backend` interface, but is only
*connectable* when the optional ``psycopg`` driver is installed --
constructing it without the driver raises
:class:`~repro.backend.base.BackendUnavailableError`, and nothing in
this module imports the driver at module load.

The DDL translation itself is pure and always testable
(:func:`postgres_deploy_sql`):

* the generated CREATE TABLE statements are already portable
  (``VARCHAR``, PRIMARY KEY, UNIQUE, inline FOREIGN KEY);
* general null constraints are single-tuple conditions, which
  PostgreSQL can enforce *declaratively* as CHECK constraints -- one
  capability step beyond every system in the paper's Section 5.1 table;
* non-key inclusion dependencies become PL/pgSQL constraint triggers
  that ``RAISE EXCEPTION`` with the same ``repro:<kind>:<label>`` tag
  the SQLite triggers abort with, so rejection classification is shared.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.backend.base import Backend, BackendUnavailableError
from repro.ddl.dialects import SQLITE
from repro.ddl.generate import generate_ddl, sql_identifier
from repro.ddl.triggers import _null_condition_violated, abort_message
from repro.obs.rules import classify_null_constraint
from repro.relational.schema import RelationalSchema
from repro.relational.state import DatabaseState
from repro.relational.tuples import Tuple


def _have_psycopg() -> bool:
    try:  # pragma: no cover - depends on the environment
        import psycopg  # noqa: F401
    except ImportError:
        return False
    return True


def postgres_deploy_sql(schema: RelationalSchema) -> list[str]:
    """The deployment script for PostgreSQL (pure; no driver needed).

    Reuses the SQLite-profile declarative output verbatim and re-emits
    the procedural residue in PostgreSQL's dialect: CHECK constraints
    for the single-tuple null constraints, PL/pgSQL triggers for
    non-key inclusion dependencies.
    """
    script = generate_ddl(schema, SQLITE)
    statements = [
        s.sql for s in script.statements if s.kind == "create-table"
    ]
    for constraint in schema.null_constraints:
        if (
            constraint.__class__.__name__ == "NullExistenceConstraint"
            and constraint.is_nulls_not_allowed()
        ):
            continue
        table = sql_identifier(constraint.scheme_name)
        condition = _null_condition_violated(constraint, table)
        kind = classify_null_constraint(constraint)
        name = f"chk_{abs(hash((table, str(constraint)))) % 10**8}"
        statements.append(
            f"ALTER TABLE {table} ADD CONSTRAINT {name} "
            f"CHECK (NOT ({condition}));  "
            f"-- {abort_message(kind, str(constraint))}"
        )
    for ind in schema.inds:
        if ind.is_key_based(schema):
            continue  # inline FOREIGN KEY already covers it
        child = sql_identifier(ind.lhs_scheme)
        parent = sql_identifier(ind.rhs_scheme)
        pairs = list(zip(ind.lhs_attrs, ind.rhs_attrs))
        tag = sql_identifier(
            f"{ind.lhs_scheme}_{'_'.join(ind.lhs_attrs)}"
        )[:40]
        total = " AND ".join(
            f"NEW.{sql_identifier(l)} IS NOT NULL" for l, _ in pairs
        )
        match = " AND ".join(
            f"p.{sql_identifier(r)} = NEW.{sql_identifier(l)}"
            for l, r in pairs
        )
        message = abort_message("inclusion-dependency", str(ind))
        statements.append(
            f"CREATE FUNCTION fn_ri_{tag}() RETURNS trigger AS $$\n"
            f"BEGIN\n"
            f"    IF ({total}) AND NOT EXISTS "
            f"(SELECT 1 FROM {parent} p WHERE {match}) THEN\n"
            f"        RAISE EXCEPTION '{message.replace(chr(39), chr(39) * 2)}';\n"
            f"    END IF;\n"
            f"    RETURN NEW;\n"
            f"END $$ LANGUAGE plpgsql;\n"
            f"CREATE TRIGGER trg_ri_{tag} BEFORE INSERT OR UPDATE ON "
            f"{child}\nFOR EACH ROW EXECUTE FUNCTION fn_ri_{tag}();"
        )
    return statements


class PostgresBackend(Backend):
    """Same contract as :class:`SQLiteBackend`, over a PostgreSQL DSN."""

    def __init__(self, dsn: str, null_semantics: str = "identical"):
        if not _have_psycopg():
            raise BackendUnavailableError(
                "PostgresBackend needs the optional 'psycopg' driver, "
                "which is not installed; use SQLiteBackend instead"
            )
        import psycopg  # pragma: no cover - driver-gated

        self.null_semantics = null_semantics  # pragma: no cover
        self.schema: RelationalSchema | None = None  # pragma: no cover
        self._conn = psycopg.connect(dsn)  # pragma: no cover

    # The connected implementation shadows SQLiteBackend statement for
    # statement; every method below is exercised only when a PostgreSQL
    # server and driver are present, which the differential CI lane does
    # not assume.

    def deploy(self, schema: RelationalSchema) -> None:  # pragma: no cover
        """Run :func:`postgres_deploy_sql` over the connection."""
        with self._conn.cursor() as cur:
            for statement in postgres_deploy_sql(schema):
                cur.execute(statement)
        self._conn.commit()
        self.schema = schema

    def insert(
        self, scheme_name: str, row: Mapping[str, Any]
    ) -> Tuple:  # pragma: no cover
        """Insert one row (connected replay; not yet implemented)."""
        raise NotImplementedError("connected PostgreSQL replay")

    def update(
        self, scheme_name: str, pk, updates: Mapping[str, Any]
    ) -> Tuple:  # pragma: no cover
        """Update one row (connected replay; not yet implemented)."""
        raise NotImplementedError("connected PostgreSQL replay")

    def delete(self, scheme_name: str, pk) -> None:  # pragma: no cover
        """Delete one row (connected replay; not yet implemented)."""
        raise NotImplementedError("connected PostgreSQL replay")

    def insert_many(
        self, scheme_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> list[Tuple]:  # pragma: no cover
        """Bulk insert (connected replay; not yet implemented)."""
        raise NotImplementedError("connected PostgreSQL replay")

    def get(self, scheme_name: str, pk) -> Tuple | None:  # pragma: no cover
        """Fetch one row by key (connected replay; not yet implemented)."""
        raise NotImplementedError("connected PostgreSQL replay")

    def count(self, scheme_name: str) -> int:  # pragma: no cover
        """Row count for one scheme (connected replay; not implemented)."""
        raise NotImplementedError("connected PostgreSQL replay")

    def state(self) -> DatabaseState:  # pragma: no cover
        """Full contents (connected replay; not yet implemented)."""
        raise NotImplementedError("connected PostgreSQL replay")

    def close(self) -> None:  # pragma: no cover
        """Close the driver connection."""
        self._conn.close()
