"""SQLite execution backend (stdlib ``sqlite3``).

The deployment is exactly what :func:`repro.ddl.generate.generate_ddl`
emits under the :data:`~repro.ddl.dialects.SQLITE` profile -- NOT NULL /
PRIMARY KEY / UNIQUE / inline FOREIGN KEY for the declaratively
maintainable constraints, ``RAISE(ABORT)`` triggers for the procedural
residue -- plus, under the paper's *identical* null semantics,
supplemental candidate-key triggers (SQLite's UNIQUE index treats null
values as distinct, i.e. the *distinct* semantics; Section 5.1).

Rejections come back from SQLite three ways and are all classified into
the engine's :class:`~repro.engine.database.ConstraintViolationError`
frame:

* tagged trigger aborts (``repro:<kind>:<label>``) parse directly;
* declarative NOT NULL / UNIQUE failures name the table and columns,
  which the deploy-time classification maps turn back into the paper
  constraint (a nulls-not-allowed constraint, the primary key, or a
  candidate key);
* ``FOREIGN KEY constraint failed`` carries no detail at all, so the
  failing reference is re-found by probing the mutated row's outgoing
  key-based inclusion dependencies (insert/update) or blamed on
  restrict semantics (delete, and updates whose new row checks out).

Known, documented divergences from the engine (see docs/BACKENDS.md):
the ordering of checks inside a single mutation differs, so when one
row violates several constraints at once the *label* may differ while
the accept/reject decision agrees; and a row of a self-referencing
scheme may satisfy its own inclusion dependency on delete in SQLite
while the engine restricts.
"""

from __future__ import annotations

import re
import sqlite3
from typing import Any, Iterable, Mapping

from repro.backend.base import (
    Backend,
    check_shape,
    decode_sql_value,
    encode_sql_value,
)
from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import NullExistenceConstraint
from repro.ddl.dialects import SQLITE
from repro.ddl.generate import DDLScript, generate_ddl, sql_identifier
from repro.ddl.triggers import abort_message, _sql_str
from repro.engine.database import ConstraintViolationError
from repro.relational.relation import Relation
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.state import DatabaseState
from repro.relational.tuples import NULL, Tuple

#: Violation kinds the engine raises with the kind itself as the
#: constraint label (everything else labels with the constraint's
#: ``str()`` and carries the kind separately).
_SELF_LABELLED = frozenset(
    {
        "structure",
        "primary-key",
        "candidate-key",
        "restrict-delete",
        "restrict-update",
        "restrict-batch",
    }
)

_TRIGGER_BLOCK = re.compile(r"CREATE TRIGGER .*?\nEND;", re.DOTALL)


def candidate_key_trigger_sql(schema: RelationalSchema) -> list[str]:
    """Supplemental triggers realizing *identical* null semantics for
    candidate keys.

    SQLite's UNIQUE index implements the *distinct* semantics (null
    values never collide); the 1992 systems of Section 5.1 consider all
    null values identical.  These ``BEFORE`` triggers compare with
    ``IS`` -- under which ``NULL IS NULL`` holds -- so a partially-null
    key value occupies its slot like any other, matching the engine's
    ``null_semantics="identical"`` mode.  Non-key candidate keys only:
    primary keys are total, so the declarative PRIMARY KEY already
    agrees with both semantics.
    """
    statements: list[str] = []
    for scheme in schema.schemes:
        table = sql_identifier(scheme.name)
        for key in sorted(
            scheme.candidate_keys, key=lambda k: [a.name for a in k]
        ):
            names = tuple(a.name for a in key)
            if names == scheme.key_names:
                continue
            tag = sql_identifier(f"{scheme.name}_{'_'.join(names)}")[:48]
            match = " AND ".join(
                f"x.{sql_identifier(n)} IS NEW.{sql_identifier(n)}"
                for n in names
            )
            message = _sql_str(
                abort_message(
                    "candidate-key", f"{scheme.name}({', '.join(names)})"
                )
            )
            statements.append(
                f"CREATE TRIGGER trg_ck_{tag}_ins\n"
                f"BEFORE INSERT ON {table}\n"
                f"FOR EACH ROW WHEN EXISTS "
                f"(SELECT 1 FROM {table} x WHERE {match})\n"
                f"BEGIN\n    SELECT RAISE(ABORT, {message});\nEND;"
            )
            statements.append(
                f"CREATE TRIGGER trg_ck_{tag}_upd\n"
                f"BEFORE UPDATE ON {table}\n"
                f"FOR EACH ROW WHEN EXISTS "
                f"(SELECT 1 FROM {table} x WHERE {match} "
                f"AND x.rowid <> OLD.rowid)\n"
                f"BEGIN\n    SELECT RAISE(ABORT, {message});\nEND;"
            )
    return statements


class SQLiteBackend(Backend):
    """A deployed schema in a live SQLite database."""

    def __init__(
        self, path: str = ":memory:", null_semantics: str = "distinct"
    ):
        if null_semantics not in ("distinct", "identical"):
            raise ValueError(f"unknown null semantics: {null_semantics!r}")
        self.null_semantics = null_semantics
        self.schema: RelationalSchema | None = None
        self._conn = sqlite3.connect(path, isolation_level=None)
        self._conn.execute("PRAGMA foreign_keys=ON")

    # -- deployment -------------------------------------------------------

    def deploy(self, schema: RelationalSchema) -> None:
        """Run the generated DDL (tables, then triggers) and build the
        rejection-classification maps."""
        script = generate_ddl(schema, SQLITE)
        if script.warnings:
            raise ConstraintViolationError(
                "structure",
                "schema is not fully maintainable on SQLite: "
                + "; ".join(script.warnings),
            )
        self._conn.executescript(script.sql())
        if self.null_semantics == "identical":
            for sql in candidate_key_trigger_sql(schema):
                self._conn.execute(sql)
        self._index_schema(schema, script)

    def attach(self, schema: RelationalSchema) -> None:
        """Bind to a database where ``schema`` is *already* deployed
        (e.g. a file created earlier by ``repro compile --execute``),
        rebuilding only the classification maps."""
        self._index_schema(schema)

    def _index_schema(
        self, schema: RelationalSchema, script: DDLScript | None = None
    ) -> None:
        """(Re)build the maps that classify backend rejections."""
        if script is None:
            script = generate_ddl(schema, SQLITE)
        self.schema = schema
        self._schemes: dict[str, RelationScheme] = {
            s.name: s for s in schema.schemes
        }
        # NOT NULL failures name table.column; the engine checks null
        # constraints before keys, so a nulls-not-allowed constraint
        # over a column outranks the primary key's implicit NOT NULL.
        self._col_kind: dict[tuple[str, str], tuple[str, str]] = {}
        self._unique_kind: dict[
            tuple[str, frozenset[str]], tuple[str, str]
        ] = {}
        for scheme in schema.schemes:
            table = sql_identifier(scheme.name)
            for name in scheme.key_names:
                self._col_kind[(table, sql_identifier(name))] = (
                    "primary-key",
                    "primary-key",
                )
            for constraint in schema.null_constraints_of(scheme.name):
                if (
                    isinstance(constraint, NullExistenceConstraint)
                    and constraint.is_nulls_not_allowed()
                ):
                    for name in constraint.rhs:
                        self._col_kind[(table, sql_identifier(name))] = (
                            str(constraint),
                            "nulls-not-allowed",
                        )
            pk_set = frozenset(sql_identifier(n) for n in scheme.key_names)
            self._unique_kind[(table, pk_set)] = ("primary-key", "primary-key")
            for key in scheme.candidate_keys:
                cols = frozenset(sql_identifier(a.name) for a in key)
                self._unique_kind.setdefault(
                    (table, cols), ("candidate-key", "candidate-key")
                )
        # FOREIGN KEY failures carry no detail; keep the declarative
        # (key-based) outgoing dependencies per scheme for re-probing.
        self._outgoing_fk: dict[str, list[InclusionDependency]] = {
            s.name: [] for s in schema.schemes
        }
        for ind in schema.inds:
            if ind.is_key_based(schema):
                self._outgoing_fk[ind.lhs_scheme].append(ind)
        # Child-side trigger statements per scheme, dropped during bulk
        # loads to defer non-key reference checks the way the engine does.
        self._child_triggers: dict[str, list[tuple[str, str]]] = {}
        by_ident = {sql_identifier(s.name): s.name for s in schema.schemes}
        for statement in script.statements:
            for block in _TRIGGER_BLOCK.findall(statement.sql):
                name = block.split()[2]
                if not name.startswith("trg_ri_"):
                    continue
                table = block.splitlines()[1].rsplit(" ON ", 1)[1]
                self._child_triggers.setdefault(by_ident[table], []).append(
                    (name, block)
                )

    # -- classification ---------------------------------------------------

    def _scheme(self, scheme_name: str) -> RelationScheme:
        return self._schemes[scheme_name]

    def _classify(
        self,
        exc: sqlite3.Error,
        op: str,
        scheme_name: str,
        new_values: Mapping[str, Any] | None = None,
    ) -> ConstraintViolationError:
        """One SQLite rejection -> the engine's error frame."""
        message = str(exc)
        if message.startswith("repro:"):
            _, kind, label = message.split(":", 2)
            if kind in _SELF_LABELLED:
                return ConstraintViolationError(kind, label)
            return ConstraintViolationError(label, f"{op} rejected", kind=kind)
        if message.startswith("NOT NULL constraint failed: "):
            table, col = message.rsplit(": ", 1)[1].split(".", 1)
            label, kind = self._col_kind.get(
                (table, col), ("nulls-not-allowed", "nulls-not-allowed")
            )
            return ConstraintViolationError(label, message, kind=kind)
        if message.startswith("UNIQUE constraint failed: "):
            qualified = message.rsplit(": ", 1)[1].split(", ")
            table = qualified[0].split(".", 1)[0]
            cols = frozenset(q.split(".", 1)[1] for q in qualified)
            label, kind = self._unique_kind.get(
                (table, cols), ("candidate-key", "candidate-key")
            )
            return ConstraintViolationError(label, message, kind=kind)
        if "FOREIGN KEY constraint failed" in message:
            if op == "delete":
                return ConstraintViolationError(
                    "restrict-delete", f"{scheme_name} row is referenced"
                )
            if new_values is not None:
                ind = self._probe_outgoing(scheme_name, new_values)
                if ind is not None:
                    return ConstraintViolationError(
                        str(ind),
                        f"no {ind.rhs_scheme} row matches "
                        f"{[new_values[a] for a in ind.lhs_attrs]!r}",
                        kind="inclusion-dependency",
                    )
            if op == "update":
                return ConstraintViolationError(
                    "restrict-update", f"{scheme_name} row is referenced"
                )
            return ConstraintViolationError(
                str(exc), f"{op} rejected", kind="inclusion-dependency"
            )
        # Driver-level failures are not constraint semantics; re-raise.
        raise exc

    def _probe_outgoing(
        self, scheme_name: str, values: Mapping[str, Any]
    ) -> InclusionDependency | None:
        """Find which declarative FK the mutated row fails (SQLite does
        not say)."""
        for ind in self._outgoing_fk.get(scheme_name, ()):
            lhs = [values[a] for a in ind.lhs_attrs]
            if any(v is NULL for v in lhs):
                continue  # MATCH SIMPLE: any-null children are exempt
            where = " AND ".join(
                f"{sql_identifier(r)} = ?" for r in ind.rhs_attrs
            )
            hit = self._conn.execute(
                f"SELECT 1 FROM {sql_identifier(ind.rhs_scheme)} "
                f"WHERE {where} LIMIT 1",
                [encode_sql_value(v) for v in lhs],
            ).fetchone()
            if hit is None:
                return ind
        return None

    # -- mutations --------------------------------------------------------

    def insert(self, scheme_name: str, row: Mapping[str, Any]) -> Tuple:
        """Insert one row; integrity rejections are classified back into
        :class:`ConstraintViolationError` with the engine's kind/rule."""
        scheme = self._scheme(scheme_name)
        t = check_shape(scheme, row)
        cols = ", ".join(
            sql_identifier(a.name) for a in scheme.attributes
        )
        marks = ", ".join("?" for _ in scheme.attributes)
        params = [
            encode_sql_value(t.mapping[a.name]) for a in scheme.attributes
        ]
        try:
            self._conn.execute(
                f"INSERT INTO {sql_identifier(scheme_name)} ({cols}) "
                f"VALUES ({marks})",
                params,
            )
        except sqlite3.IntegrityError as exc:
            raise self._classify(exc, "insert", scheme_name, t.mapping) from exc
        return t

    def update(
        self,
        scheme_name: str,
        pk: tuple[Any, ...] | Any,
        updates: Mapping[str, Any],
    ) -> Tuple:
        """Update the row keyed ``pk`` (engine semantics: ``KeyError`` on
        a miss, empty updates are a no-op, unknown attributes reject)."""
        scheme = self._scheme(scheme_name)
        if not isinstance(pk, tuple):
            pk = (pk,)
        old = self.get(scheme_name, pk)
        if old is None:
            raise KeyError(f"{scheme_name}: no row with key {pk!r}")
        updates = dict(updates)
        unknown = set(updates) - set(scheme.attribute_names)
        if unknown:
            raise ConstraintViolationError(
                "structure",
                f"{scheme_name}: unknown attributes {sorted(unknown)}",
            )
        new = old.with_values(updates)
        if not updates:
            return new  # the engine accepts an empty update as a no-op
        assignments = ", ".join(
            f"{sql_identifier(name)} = ?" for name in updates
        )
        where = " AND ".join(
            f"{sql_identifier(name)} = ?" for name in scheme.key_names
        )
        params = [encode_sql_value(v) for v in updates.values()]
        params += [encode_sql_value(v) for v in pk]
        try:
            self._conn.execute(
                f"UPDATE {sql_identifier(scheme_name)} "
                f"SET {assignments} WHERE {where}",
                params,
            )
        except sqlite3.IntegrityError as exc:
            raise self._classify(
                exc, "update", scheme_name, new.mapping
            ) from exc
        return new

    def delete(self, scheme_name: str, pk: tuple[Any, ...] | Any) -> None:
        """Delete the row keyed ``pk`` (``KeyError`` on a miss; restrict
        rules surface as classified constraint violations)."""
        scheme = self._scheme(scheme_name)
        if not isinstance(pk, tuple):
            pk = (pk,)
        if len(pk) != len(scheme.key_names):
            raise KeyError(f"{scheme_name}: no row with key {pk!r}")
        where = " AND ".join(
            f"{sql_identifier(name)} = ?" for name in scheme.key_names
        )
        try:
            cursor = self._conn.execute(
                f"DELETE FROM {sql_identifier(scheme_name)} WHERE {where}",
                [encode_sql_value(v) for v in pk],
            )
        except sqlite3.IntegrityError as exc:
            raise self._classify(exc, "delete", scheme_name) from exc
        if cursor.rowcount == 0:
            raise KeyError(f"{scheme_name}: no row with key {pk!r}")

    def insert_many(
        self, scheme_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> list[Tuple]:
        """Atomic bulk insert, engine-style: shape/null/key checks are
        immediate per row, outgoing reference checks are deferred to the
        end of the batch (declarative FKs via ``defer_foreign_keys``,
        trigger-enforced dependencies by dropping the child-side
        triggers inside the transaction and re-verifying by query), and
        any rejection rolls the whole batch back."""
        scheme = self._scheme(scheme_name)
        dropped = self._child_triggers.get(scheme_name, [])
        self._conn.execute("BEGIN")
        try:
            self._conn.execute("PRAGMA defer_foreign_keys=ON")
            for name, _ in dropped:
                self._conn.execute(f"DROP TRIGGER {name}")
            out: list[Tuple] = []
            for row in rows:
                out.append(self.insert(scheme_name, row))
            self._verify_outgoing(scheme)
            for _, block in dropped:
                self._conn.execute(block)
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return out

    def _verify_outgoing(self, scheme: RelationScheme) -> None:
        """End-of-batch containment check for every inclusion dependency
        leaving ``scheme`` (raises with the engine's bulk-path label)."""
        assert self.schema is not None
        child = sql_identifier(scheme.name)
        for ind in self.schema.inds:
            if ind.lhs_scheme != scheme.name:
                continue
            pairs = list(zip(ind.lhs_attrs, ind.rhs_attrs))
            total = " AND ".join(
                f"i.{sql_identifier(l)} IS NOT NULL" for l, _ in pairs
            )
            match = " AND ".join(
                f"p.{sql_identifier(r)} = i.{sql_identifier(l)}"
                for l, r in pairs
            )
            parent = sql_identifier(ind.rhs_scheme)
            select = ", ".join(f"i.{sql_identifier(l)}" for l, _ in pairs)
            hit = self._conn.execute(
                f"SELECT {select} FROM {child} i WHERE ({total}) AND NOT "
                f"EXISTS (SELECT 1 FROM {parent} p WHERE {match}) LIMIT 1"
            ).fetchone()
            if hit is not None:
                raise ConstraintViolationError(
                    str(ind),
                    f"no {ind.rhs_scheme} row matches {list(hit)!r}",
                    kind="inclusion-dependency",
                )

    # -- reads ------------------------------------------------------------

    def get(self, scheme_name: str, pk: tuple[Any, ...] | Any) -> Tuple | None:
        """The row keyed ``pk`` as a decoded :class:`Tuple`, or ``None``
        on a miss (including an arity-mismatched key, like the engine)."""
        scheme = self._scheme(scheme_name)
        if not isinstance(pk, tuple):
            pk = (pk,)
        if len(pk) != len(scheme.key_names):
            return None  # same as a dict miss in the engine
        where = " AND ".join(
            f"{sql_identifier(name)} = ?" for name in scheme.key_names
        )
        select = ", ".join(sql_identifier(a.name) for a in scheme.attributes)
        row = self._conn.execute(
            f"SELECT {select} FROM {sql_identifier(scheme_name)} "
            f"WHERE {where}",
            [encode_sql_value(v) for v in pk],
        ).fetchone()
        if row is None:
            return None
        return Tuple.over(
            scheme.attributes, tuple(decode_sql_value(v) for v in row)
        )

    def count(self, scheme_name: str) -> int:
        """Number of rows currently stored for ``scheme_name``."""
        self._scheme(scheme_name)
        (n,) = self._conn.execute(
            f"SELECT COUNT(*) FROM {sql_identifier(scheme_name)}"
        ).fetchone()
        return n

    def state(self) -> DatabaseState:
        """The full contents as a :class:`DatabaseState` (``$null``
        decoded), directly comparable with ``Database.state()``."""
        assert self.schema is not None, "deploy a schema first"
        relations = {}
        for scheme in self.schema.schemes:
            select = ", ".join(
                sql_identifier(a.name) for a in scheme.attributes
            )
            rows = self._conn.execute(
                f"SELECT {select} FROM {sql_identifier(scheme.name)}"
            ).fetchall()
            relations[scheme.name] = Relation(
                scheme.attributes,
                (
                    Tuple.over(
                        scheme.attributes,
                        tuple(decode_sql_value(v) for v in row),
                    )
                    for row in rows
                ),
            )
        return DatabaseState(relations)

    # -- evolution --------------------------------------------------------

    def migrate(self, simplified) -> None:
        """Evolve the live database through a
        :class:`~repro.core.remove.SimplifyResult` (the composed
        ``mu_n . ... . mu_1 . eta`` mapping) via generated
        DROP/CREATE/``INSERT ... SELECT`` DDL.

        See :func:`repro.backend.migrate.generate_migration` for the
        script shape; after the rebuild the classification maps are
        re-derived from the simplified schema.
        """
        from repro.backend.migrate import generate_migration

        assert self.schema is not None, "deploy a schema first"
        script = generate_migration(self.schema, simplified)
        self._conn.execute("PRAGMA foreign_keys=OFF")
        try:
            self._conn.execute("BEGIN")
            try:
                for statement in script.rebuild:
                    self._conn.execute(statement)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.executescript(script.trigger_sql)
            if self.null_semantics == "identical":
                for sql in candidate_key_trigger_sql(simplified.schema):
                    self._conn.execute(sql)
        finally:
            self._conn.execute("PRAGMA foreign_keys=ON")
        orphans = self._conn.execute("PRAGMA foreign_key_check").fetchall()
        if orphans:
            raise ConstraintViolationError(
                "structure",
                f"migration left dangling references: {orphans[:3]!r}",
            )
        self._index_schema(simplified.schema)

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._conn.close()
