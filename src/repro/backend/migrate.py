"""Schema-evolution DDL: rebuild a live SQLite database through ``eta``.

:func:`generate_migration` turns a
:class:`~repro.core.remove.SimplifyResult` -- the composed forward
mapping ``mu_n . ... . mu_1 . eta`` of a Merge followed by exhaustive
Remove -- into plain DROP / CREATE / ``INSERT ... SELECT`` statements:

* every scheme of the simplified schema is created under a temporary
  ``repro_new_`` name (foreign keys already reference the *final*
  names; enforcement is off during the rebuild);
* the merged relation is populated by the SQL realization of ``eta``
  (Definition 4.1): the key relation -- or, when synthesized, the
  ``UNION`` of the family's key projections -- left-outer-joined with
  every other member on ``Km = Ki``.  On states satisfying the family's
  inclusion dependencies the paper's full outer join coincides with the
  left join (every member key appears among the key-relation keys), and
  ``mu`` is a pure projection, so restricting the select list to the
  simplified scheme's attributes realizes the whole composition;
* untouched schemes are copied identically, the old tables are dropped
  (their triggers go with them), and the temporaries take the final
  names -- renames run with ``foreign_keys=OFF``, so the references
  inside the new tables are *not* rewritten and resolve to the final
  tables;
* the simplified schema's triggers are recreated last.

:meth:`repro.backend.sqlite.SQLiteBackend.migrate` executes the script
and then verifies with ``PRAGMA foreign_key_check``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.remove import SimplifyResult
from repro.ddl.dialects import SQLITE, Mechanism
from repro.ddl.generate import generate_ddl, sql_identifier
from repro.relational.schema import RelationalSchema


def _temp(ident: str) -> str:
    return f"repro_new_{ident}"


@dataclass(frozen=True)
class MigrationScript:
    """One generated migration: transactional rebuild + trigger script."""

    #: Single statements executed inside one transaction with foreign-key
    #: enforcement off: CREATE temporaries, populate, DROP, RENAME.
    rebuild: tuple[str, ...]
    #: ``CREATE TRIGGER`` script for the simplified schema, run after the
    #: rebuild commits (the old schema's triggers died with its tables).
    trigger_sql: str

    def sql(self) -> str:
        """The full migration as a display/replay script."""
        parts = ["PRAGMA foreign_keys=OFF;", "BEGIN;"]
        parts += [s if s.endswith(";") else s + ";" for s in self.rebuild]
        parts.append("COMMIT;")
        if self.trigger_sql:
            parts.append(self.trigger_sql)
        parts.append("PRAGMA foreign_keys=ON;")
        return "\n\n".join(parts)


def eta_select(
    old_schema: RelationalSchema, simplified: SimplifyResult
) -> str:
    """The ``SELECT`` realizing the forward mapping's merged relation."""
    info = simplified.info
    merged = simplified.schema.scheme(info.merged_name)
    # Where each merged attribute comes from: its owning family member.
    source: dict[str, str] = {}
    for member in info.family:
        alias = sql_identifier(member)
        for name in old_schema.scheme(member).attribute_names:
            source[name] = f"{alias}.{sql_identifier(name)}"
    if info.synthesized:
        # Km is fresh: the key relation is the union of the family's
        # key projections, aliased k.
        union = []
        for member in info.family:
            scheme = old_schema.scheme(member)
            projection = ", ".join(
                f"{sql_identifier(pk.name)} AS {sql_identifier(km)}"
                for pk, km in zip(scheme.primary_key, info.km)
            )
            union.append(
                f"SELECT {projection} FROM {sql_identifier(member)}"
            )
        from_clause = "(" + "\n      UNION ".join(union) + ") k"
        join_members = info.family
        km_source = {km: f"k.{sql_identifier(km)}" for km in info.km}
        source.update(km_source)
    else:
        from_clause = sql_identifier(info.key_relation)
        join_members = tuple(
            m for m in info.family if m != info.key_relation
        )
        km_source = {km: source[km] for km in info.km}
    joins = []
    for member in join_members:
        scheme = old_schema.scheme(member)
        on = " AND ".join(
            f"{sql_identifier(member)}.{sql_identifier(pk.name)} "
            f"= {km_source[km]}"
            for pk, km in zip(scheme.primary_key, info.km)
        )
        joins.append(f"LEFT JOIN {sql_identifier(member)} ON {on}")
    select = ",\n       ".join(
        f"{source[a.name]} AS {sql_identifier(a.name)}"
        for a in merged.attributes
    )
    lines = [f"SELECT {select}", f"FROM {from_clause}", *joins]
    return "\n".join(lines)


def generate_migration(
    old_schema: RelationalSchema, simplified: SimplifyResult
) -> MigrationScript:
    """DROP/CREATE/``INSERT ... SELECT`` DDL evolving ``old_schema`` into
    ``simplified.schema`` with its state mapped through ``eta``."""
    info = simplified.info
    new_schema = simplified.schema
    ddl = generate_ddl(new_schema, SQLITE)
    if ddl.warnings:
        raise ValueError(
            "simplified schema is not fully maintainable on SQLite: "
            + "; ".join(ddl.warnings)
        )
    rebuild: list[str] = []
    for statement in ddl.statements:
        if statement.kind != "create-table":
            continue
        ident = sql_identifier(statement.subject)
        head = f"CREATE TABLE {ident} ("
        assert statement.sql.startswith(head), statement.sql.splitlines()[0]
        rebuild.append(
            f"CREATE TABLE {_temp(ident)} (" + statement.sql[len(head):]
        )
    for scheme in new_schema.schemes:
        ident = sql_identifier(scheme.name)
        columns = ", ".join(
            sql_identifier(a.name) for a in scheme.attributes
        )
        if scheme.name == info.merged_name:
            query = eta_select(old_schema, simplified)
        else:
            if not old_schema.has_scheme(scheme.name):
                raise ValueError(
                    f"scheme {scheme.name!r} is new in the simplified "
                    "schema; only merge migrations are supported"
                )
            query = f"SELECT {columns} FROM {ident}"
        rebuild.append(
            f"INSERT INTO {_temp(ident)} ({columns})\n{query}"
        )
    for scheme in old_schema.schemes:
        rebuild.append(f"DROP TABLE {sql_identifier(scheme.name)}")
    for scheme in new_schema.schemes:
        ident = sql_identifier(scheme.name)
        rebuild.append(f"ALTER TABLE {_temp(ident)} RENAME TO {ident}")
    trigger_sql = "\n\n".join(
        s.sql for s in ddl.statements if s.mechanism is Mechanism.TRIGGER
    )
    return MigrationScript(rebuild=tuple(rebuild), trigger_sql=trigger_sql)
