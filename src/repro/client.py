"""A blocking client for the JSON-lines server (``repro.server``).

One :class:`Client` is one TCP connection and one outstanding request
at a time -- the deliberately simple synchronous counterpart to the
asyncio server.  Concurrency comes from many clients (one per thread or
process), which is exactly the shape the server's group-commit path is
built for.

Rows and primary keys travel in the engine's own value encoding
(``NULL`` as the ``{"$null": true}`` marker), so what a method returns
is what :meth:`Database.get` would return in-process, as a plain dict.
Server-side rejections come back as exceptions:
:class:`~repro.server.protocol.RemoteConstraintViolation` for
constraint violations (carrying ``constraint``/``kind``/``rule``/
``detail`` provenance) and :class:`~repro.server.protocol.RemoteError`
for everything else.

::

    from repro.client import Client

    with Client(port=7043) as c:
        c.insert("COURSE", {"C.NR": "c1", "C.TITLE": "Databases"})
        row = c.get("COURSE", "c1")
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.spans import SpanSink
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    RemoteConstraintViolation,
    RemoteError,
    decode_frame,
    decode_row,
    encode_frame,
    encode_pk,
    encode_row,
    raise_error,
    request_frame,
)
from repro.server.router import (
    ShardMap,
    group_ops_by_shard,
    requirement_violation,
)

__all__ = [
    "Client",
    "ShardedClient",
    "ReplicatedClient",
    "RemoteConstraintViolation",
    "RemoteError",
]


def _wire_pk(pk: Any) -> list:
    """A primary key (scalar or tuple) in wire form."""
    if not isinstance(pk, tuple):
        pk = (pk,)
    return encode_pk(pk)


def _wire_ops(ops: Iterable[tuple]) -> list[list]:
    """Engine-style ``apply_batch`` op tuples in wire form."""
    wire: list[list] = []
    for op in ops:
        kind = op[0] if op else None
        if kind == "insert" and len(op) == 3:
            wire.append(["insert", op[1], encode_row(op[2])])
        elif kind == "update" and len(op) == 4:
            wire.append(
                ["update", op[1], _wire_pk(op[2]), encode_row(op[3])]
            )
        elif kind == "delete" and len(op) == 3:
            wire.append(["delete", op[1], _wire_pk(op[2])])
        else:
            raise ValueError(f"not a valid batch op: {op!r}")
    return wire


class Client:
    """One blocking connection to a ``repro`` server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = None,
        span_sink: SpanSink | None = None,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # One small frame per request: Nagle+delayed-ACK would add
        # whole milliseconds to every round trip.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._fh = self._sock.makefile("rwb")
        self._next_id = 0
        #: Where this client's root spans go (``None`` = no client-side
        #: tracing).  With a sink set, each :meth:`call` that is not
        #: already inside a trace opens a sampled ``client:<verb>`` root
        #: span and sends its context on the wire.
        self.span_sink = span_sink
        #: The ``trace_id`` the server echoed in the most recent
        #: response (client-supplied or server-generated) -- the handle
        #: for correlating this request with the server's trace events.
        self.last_trace_id: str | None = None
        #: The WAL ``lsn`` of this connection's most recent acknowledged
        #: mutation (0 before the first one) -- the watermark
        #: :class:`ReplicatedClient` waits for on a replica before a
        #: read-your-writes read (see ``docs/REPLICATION.md``).
        self.last_lsn: int = 0

    # -- plumbing --------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def call(
        self,
        verb: str,
        *,
        trace_id: str | None = None,
        span_ctx: str | None = None,
        **params: Any,
    ) -> Any:
        """One request/response round trip; the raw ``result`` value.

        ``trace_id`` (optional) is sent with the request and stamped
        onto every engine trace event the server emits for it; the
        server echoes it (or a generated id) back and it is kept in
        :attr:`last_trace_id`.

        ``span_ctx`` (optional) is an encoded span context
        (:func:`repro.obs.spans.encode_context`) sent as the request's
        ``span`` field, parenting the server's span under the caller's.
        Without one, a configured :attr:`span_sink` opens (and exports)
        a ``client:<verb>`` root span around the round trip.

        Raises the matching :class:`RemoteError` subtype on an error
        frame, :class:`ConnectionError` if the server hangs up, and
        :class:`ProtocolError` on an unparseable or mismatched response.
        """
        self._next_id += 1
        request_id = self._next_id
        if trace_id is not None:
            params["trace_id"] = trace_id
        span = None
        if (
            span_ctx is None
            and self.span_sink is not None
            and self.span_sink.sample_root()
        ):
            span = self.span_sink.start_span(f"client:{verb}", kind="client")
            span_ctx = span.context()
        if span_ctx is not None:
            params["span"] = span_ctx
        try:
            self._fh.write(
                encode_frame(request_frame(request_id, verb, **params))
            )
            self._fh.flush()
            line = self._fh.readline(MAX_FRAME_BYTES + 1)
            if not line:
                raise ConnectionError("server closed the connection")
            frame = decode_frame(line)
            if frame.get("id") != request_id:
                raise ProtocolError(
                    f"response id {frame.get('id')!r} does not match "
                    f"request id {request_id!r}"
                )
            echoed = frame.get("trace_id")
            if isinstance(echoed, str):
                self.last_trace_id = echoed
            if not frame.get("ok"):
                raise_error(frame)
        except Exception as exc:
            if span is not None:
                span.status = type(exc).__name__
            raise
        finally:
            if span is not None:
                self.span_sink.export(span.end())
        lsn = frame.get("lsn")
        if isinstance(lsn, int) and lsn > self.last_lsn:
            self.last_lsn = lsn
        return frame.get("result")

    # -- mutations -------------------------------------------------------

    def insert(
        self, scheme: str, row: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Insert one row; returns the stored row."""
        return decode_row(
            self.call("insert", scheme=scheme, row=encode_row(row))
        )

    def update(
        self, scheme: str, pk: Any, updates: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Update one row by primary key; returns the updated row."""
        return decode_row(
            self.call(
                "update",
                scheme=scheme,
                pk=_wire_pk(pk),
                updates=encode_row(updates),
            )
        )

    def delete(self, scheme: str, pk: Any) -> None:
        """Delete one row by primary key."""
        self.call("delete", scheme=scheme, pk=_wire_pk(pk))

    def insert_many(
        self, scheme: str, rows: Sequence[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        """Insert many rows of one scheme atomically."""
        result = self.call(
            "insert_many",
            scheme=scheme,
            rows=[encode_row(r) for r in rows],
        )
        return [decode_row(r) for r in result]

    def apply_batch(self, ops: Iterable[tuple]) -> list[dict[str, Any] | None]:
        """Apply a mixed mutation batch atomically (engine-style op
        tuples: ``("insert", scheme, row)``, ``("update", scheme, pk,
        updates)``, ``("delete", scheme, pk)``)."""
        result = self.call("apply_batch", ops=_wire_ops(ops))
        return [decode_row(r) if r is not None else None for r in result]

    # -- reads -----------------------------------------------------------

    def get(self, scheme: str, pk: Any) -> dict[str, Any] | None:
        """Primary-key lookup; ``None`` when absent."""
        result = self.call("get", scheme=scheme, pk=_wire_pk(pk))
        return decode_row(result) if result is not None else None

    def join_to(
        self,
        scheme: str,
        pk: Any,
        via: Sequence[str],
        target_scheme: str,
        target_attrs: Sequence[str] | None = None,
    ) -> dict[str, Any] | None:
        """Navigate a foreign key from the row under ``pk``."""
        result = self.call(
            "join_to",
            scheme=scheme,
            pk=_wire_pk(pk),
            via=list(via),
            target_scheme=target_scheme,
            target_attrs=list(target_attrs) if target_attrs else None,
        )
        return decode_row(result) if result is not None else None

    def find_referencing(
        self,
        scheme: str,
        pk: Any,
        source_scheme: str,
        via: Sequence[str],
        target_attrs: Sequence[str],
    ) -> list[dict[str, Any]]:
        """All rows of ``source_scheme`` referencing the row under
        ``pk``."""
        result = self.call(
            "find_referencing",
            scheme=scheme,
            pk=_wire_pk(pk),
            source_scheme=source_scheme,
            via=list(via),
            target_attrs=list(target_attrs),
        )
        return [decode_row(r) for r in result]

    def check(self) -> dict[str, Any]:
        """Full-state consistency check:
        ``{"consistent": bool, "violations": [...]}``."""
        return self.call("check")

    def explain(self, op: str, scheme: str) -> dict[str, Any]:
        """The enforcement plan EXPLAIN dict for ``op`` on ``scheme``."""
        return self.call("explain", op=op, scheme=scheme)

    def advise(self, strategy: str | None = None) -> dict[str, Any]:
        """The merge advisor's report over the server's mined workload
        counters: candidate families with Section 5 verdicts and
        workload scores, the ``recommendation`` (or ``None``), and the
        EXPLAIN text."""
        params = {"strategy": strategy} if strategy is not None else {}
        return self.call("advise", **params)

    def apply_merge(
        self,
        members: list[str] | None = None,
        key_relation: str | None = None,
        merged_name: str | None = None,
        strategy: str | None = None,
    ) -> dict[str, Any]:
        """Apply a merge online (one WAL transaction on the server's
        single-writer path).  With no ``members`` the advisor's
        recommendation is applied."""
        params: dict[str, Any] = {}
        if members is not None:
            params["members"] = list(members)
            if key_relation is not None:
                params["key_relation"] = key_relation
            if merged_name is not None:
                params["merged_name"] = merged_name
        elif strategy is not None:
            params["strategy"] = strategy
        return self.call("apply_merge", **params)

    def metrics(self) -> str:
        """The server's Prometheus text exposition."""
        return self.call("metrics")

    def stats(self) -> dict[str, Any]:
        """The server's :meth:`EngineStats.snapshot` dict."""
        return self.call("stats")

    def spans(self, limit: int | None = None) -> dict[str, Any]:
        """The server's span-sink ring buffer (oldest first) plus its
        depth/dropped/exported/sample counters; empty with no sink
        configured."""
        params = {"limit": limit} if limit is not None else {}
        return self.call("spans", **params)

    # -- replication -----------------------------------------------------

    def repl_status(self) -> dict[str, Any]:
        """Where this server stands in the replication topology:
        ``{"role", "applied_lsn", "durable_lsn", "primary",
        "replicas"}``."""
        return self.call("repl_status")

    def promote(self) -> dict[str, Any]:
        """Turn a replica into a read-write primary (idempotent on a
        primary): ``{"was", "role", "applied_lsn"}``."""
        return self.call("promote")


def _split_target(target: str | tuple[str, int]) -> tuple[str, int]:
    """``HOST:PORT`` (or a ``(host, port)`` pair) as a connect address."""
    if isinstance(target, tuple):
        return target[0] or "127.0.0.1", int(target[1])
    host, _, port_text = str(target).rpartition(":")
    return host or "127.0.0.1", int(port_text)


class ReplicatedClient:
    """A client of a primary/replica pair (or set): mutations go to the
    primary, reads round-robin across the replicas, so read load scales
    out without touching the write path (see ``docs/REPLICATION.md``).

    Replication is asynchronous from the reader's point of view -- a
    replica may serve a state slightly behind the primary's.  With
    ``read_your_writes=True`` each read first waits (bounded by
    ``catchup_timeout``) until the chosen replica's ``applied_lsn`` has
    reached the ``lsn`` of this client's own latest acknowledged
    mutation, so the session always observes its own writes; if the
    replica cannot catch up in time (or is unreachable), the read falls
    back to the primary.

    :meth:`promote` fails the pair over client-side: it promotes one
    replica and re-points this client's writes at it.

    One instance is one logical connection: not thread-safe.
    """

    def __init__(
        self,
        primary: str | tuple[str, int],
        replicas: Sequence[str | tuple[str, int]] = (),
        timeout: float | None = None,
        read_your_writes: bool = False,
        catchup_timeout: float = 5.0,
    ):
        self._timeout = timeout
        self.read_your_writes = read_your_writes
        self.catchup_timeout = catchup_timeout
        self._replica_targets = [_split_target(t) for t in replicas]
        self._replica_clients: dict[int, Client] = {}
        self._rr = 0
        host, port = _split_target(primary)
        self._primary = Client(host=host, port=port, timeout=timeout)

    # -- plumbing --------------------------------------------------------

    def close(self) -> None:
        """Close the primary and every replica connection."""
        self._primary.close()
        for client in self._replica_clients.values():
            client.close()
        self._replica_clients.clear()

    def __enter__(self) -> "ReplicatedClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def last_lsn(self) -> int:
        """The ``lsn`` of this client's latest acknowledged mutation."""
        return self._primary.last_lsn

    def _replica_client(self, index: int) -> Client:
        client = self._replica_clients.get(index)
        if client is None:
            host, port = self._replica_targets[index]
            client = Client(host=host, port=port, timeout=self._timeout)
            self._replica_clients[index] = client
        return client

    def _await_applied(self, client: Client, lsn: int) -> bool:
        """Wait until ``client``'s server has applied ``lsn`` (True) or
        ``catchup_timeout`` elapses (False)."""
        deadline = time.monotonic() + self.catchup_timeout
        while True:
            status = client.call("repl_status")
            if (
                int(status.get("applied_lsn", 0)) >= lsn
                or status.get("role") == "primary"
            ):
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.005)

    def _read(self, verb: str, **params: Any) -> Any:
        """One read, preferring a replica; the primary is the fallback
        for an unreachable or persistently-lagging replica."""
        for _ in range(len(self._replica_targets)):
            index = self._rr
            self._rr = (self._rr + 1) % len(self._replica_targets)
            try:
                client = self._replica_client(index)
                if self.read_your_writes and self._primary.last_lsn:
                    if not self._await_applied(
                        client, self._primary.last_lsn
                    ):
                        continue
                return client.call(verb, **params)
            except (OSError, ConnectionError):
                dead = self._replica_clients.pop(index, None)
                if dead is not None:
                    dead.close()
        return self._primary.call(verb, **params)

    # -- mutations (primary) ---------------------------------------------

    def insert(self, scheme: str, row: Mapping[str, Any]) -> dict[str, Any]:
        """Insert one row on the primary."""
        return self._primary.insert(scheme, row)

    def update(
        self, scheme: str, pk: Any, updates: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Update one row by primary key on the primary."""
        return self._primary.update(scheme, pk, updates)

    def delete(self, scheme: str, pk: Any) -> None:
        """Delete one row by primary key on the primary."""
        self._primary.delete(scheme, pk)

    def insert_many(
        self, scheme: str, rows: Sequence[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        """Insert many rows of one scheme atomically on the primary."""
        return self._primary.insert_many(scheme, rows)

    def apply_batch(self, ops: Iterable[tuple]) -> list[dict[str, Any] | None]:
        """Apply a mixed mutation batch atomically on the primary."""
        return self._primary.apply_batch(ops)

    # -- reads (replicas) ------------------------------------------------

    def get(self, scheme: str, pk: Any) -> dict[str, Any] | None:
        """Primary-key lookup on a replica."""
        result = self._read("get", scheme=scheme, pk=_wire_pk(pk))
        return decode_row(result) if result is not None else None

    def join_to(
        self,
        scheme: str,
        pk: Any,
        via: Sequence[str],
        target_scheme: str,
        target_attrs: Sequence[str] | None = None,
    ) -> dict[str, Any] | None:
        """Reference-following join on a replica."""
        params: dict[str, Any] = dict(
            scheme=scheme,
            pk=_wire_pk(pk),
            via=list(via),
            target_scheme=target_scheme,
        )
        if target_attrs is not None:
            params["target_attrs"] = list(target_attrs)
        result = self._read("join_to", **params)
        return decode_row(result) if result is not None else None

    def check(self) -> dict[str, Any]:
        """Full-state consistency check on a replica."""
        return self._read("check")

    # -- failover --------------------------------------------------------

    def promote(self, index: int = 0) -> dict[str, Any]:
        """Promote replica ``index`` and re-point this client's writes
        at it (the old primary connection is dropped; use after the
        primary has died)."""
        client = self._replica_client(index)
        result = client.promote()
        try:
            self._primary.close()
        except OSError:
            pass
        self._primary = client
        del self._replica_targets[index]
        # Re-key the cached connections around the removed slot.
        survivors = {
            (i if i < index else i - 1): c
            for i, c in self._replica_clients.items()
            if i != index
        }
        self._replica_clients = survivors
        self._rr = 0
        return result


class ShardedClient:
    """The shard-aware client of a ``repro serve --workers N`` fleet.

    Connecting to the fleet's shared port, it asks ``topology`` for the
    shard map, then opens one direct connection per worker (lazily) and
    routes every request to the worker owning its primary key
    (:mod:`repro.server.router`).  Pointed at a plain single-process
    server it degrades to a thin wrapper over :class:`Client`.

    Mutation routing splits two ways:

    * A mutation whose constraint checks are provably shard-local --
      an insert into a scheme with no outgoing references, a delete
      from a scheme nothing references, a single-shard ``insert_many``
      of an unreferencing scheme -- is sent as the ordinary verb and
      rides the owning worker's group-commit path at full speed.
    * Everything else uses the two-phase protocol: ``batch_prepare`` on
      every involved worker (in worker-id order, which makes concurrent
      sharded writers deadlock-free), then ``exists`` probes across the
      fleet for the requirements no single shard could verify, then
      ``batch_commit`` everywhere -- or ``batch_abort`` everywhere,
      which is what makes a cross-shard constraint violation reject the
      whole batch atomically.

    One instance is one logical connection: not thread-safe, one
    outstanding logical request at a time.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = None,
        span_sink: SpanSink | None = None,
    ):
        self._timeout = timeout
        #: Client-side span sink, shared by every per-shard connection;
        #: two-phase batches additionally get a ``router:2pc`` span
        #: whose context fans out to every participant.
        self.span_sink = span_sink
        bootstrap = Client(host=host, port=port, timeout=timeout)
        try:
            self.shard_map = ShardMap.from_topology(bootstrap.call("topology"))
        except BaseException:
            bootstrap.close()
            raise
        self._host = self.shard_map.host or host
        self._clients: dict[int, Client] = {}
        if not self.shard_map.ports:
            # A plain server: everything lives behind this connection.
            self._clients[0] = bootstrap
        else:
            bootstrap.close()

    # -- plumbing --------------------------------------------------------

    def close(self) -> None:
        """Close every per-shard connection."""
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    def __enter__(self) -> "ShardedClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def n_shards(self) -> int:
        """How many shards (workers) the fleet partitions rows across."""
        return self.shard_map.n_shards

    def shard_client(self, shard: int) -> Client:
        """The direct connection to one worker (opened on first use)."""
        client = self._clients.get(shard)
        if client is None:
            client = Client(
                host=self._host,
                port=self.shard_map.ports[shard],
                timeout=self._timeout,
                span_sink=self.span_sink,
            )
            self._clients[shard] = client
        return client

    def _owner(self, scheme: str, pk: Any) -> int:
        return self.shard_map.shard_of_pk(scheme, _wire_pk(pk))

    # -- mutations -------------------------------------------------------

    def insert(self, scheme: str, row: Mapping[str, Any]) -> dict[str, Any]:
        """Insert one row (routed; two-phase only when the scheme has
        outgoing references another shard may have to satisfy)."""
        wire = encode_row(row)
        if not self.shard_map.refs_out.get(scheme, True):
            shard = self.shard_map.shard_of_row(scheme, wire)
            return decode_row(
                self.shard_client(shard).call(
                    "insert", scheme=scheme, row=wire
                )
            )
        results = self._two_phase([["insert", scheme, wire]])
        assert results[0] is not None
        return results[0]

    def update(
        self, scheme: str, pk: Any, updates: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Update one row by primary key."""
        if not self.shard_map.refs_out.get(
            scheme, True
        ) and not self.shard_map.refs_in.get(scheme, True):
            return decode_row(
                self.shard_client(self._owner(scheme, pk)).call(
                    "update",
                    scheme=scheme,
                    pk=_wire_pk(pk),
                    updates=encode_row(updates),
                )
            )
        results = self._two_phase(
            [["update", scheme, _wire_pk(pk), encode_row(updates)]]
        )
        assert results[0] is not None
        return results[0]

    def delete(self, scheme: str, pk: Any) -> None:
        """Delete one row by primary key (two-phase when other shards
        may hold rows referencing it)."""
        if not self.shard_map.refs_in.get(scheme, True):
            self.shard_client(self._owner(scheme, pk)).call(
                "delete", scheme=scheme, pk=_wire_pk(pk)
            )
            return
        self._two_phase([["delete", scheme, _wire_pk(pk)]])

    def insert_many(
        self, scheme: str, rows: Sequence[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        """Insert many rows of one scheme atomically (per batch: a
        multi-shard batch uses the two-phase protocol so rejection
        stays all-or-nothing)."""
        wire_rows = [encode_row(r) for r in rows]
        if not self.shard_map.refs_out.get(scheme, True):
            by_shard: dict[int, list[int]] = {}
            for i, w in enumerate(wire_rows):
                by_shard.setdefault(
                    self.shard_map.shard_of_row(scheme, w), []
                ).append(i)
            if len(by_shard) == 1:
                ((shard, _),) = by_shard.items()
                result = self.shard_client(shard).call(
                    "insert_many", scheme=scheme, rows=wire_rows
                )
                return [decode_row(r) for r in result]
        results = self._two_phase(
            [["insert", scheme, w] for w in wire_rows]
        )
        return [r for r in results if r is not None]

    def apply_batch(
        self, ops: Iterable[tuple]
    ) -> list[dict[str, Any] | None]:
        """Apply a mixed mutation batch atomically across shards
        (engine-style op tuples, as :meth:`Client.apply_batch`)."""
        return self._two_phase(_wire_ops(ops))

    def _two_phase(
        self, wire_ops: list[list]
    ) -> list[dict[str, Any] | None]:
        """Prepare/probe/commit one batch across every involved shard."""
        groups = group_ops_by_shard(self.shard_map, wire_ops)
        shards = sorted(groups)  # worker-id order: deadlock-free
        xid = uuid.uuid4().hex
        root = router = None
        sink = self.span_sink
        if sink is not None and sink.sample_root():
            # One root for the logical batch, one router child fanning
            # its context out to every participant -- the trace shows
            # the prepare round trips and probes under a single parent.
            root = sink.start_span(
                "client:batch", kind="client", ops=len(wire_ops)
            )
            router = root.child(
                "router:2pc", kind="router", shards=len(shards), xid=xid
            )
        ctx = router.context() if router is not None else None
        try:
            requirements: list[dict[str, Any]] = []
            prepared: list[int] = []
            try:
                for shard in shards:
                    ack = self.shard_client(shard).call(
                        "batch_prepare",
                        xid=xid,
                        span_ctx=ctx,
                        ops=[op for _, op in groups[shard]],
                    )
                    prepared.append(shard)
                    requirements.extend(ack["requirements"])
                probe_cache: dict[tuple, bool] = {}

                def exists_any(scheme, attrs, value) -> bool:
                    key = (scheme, tuple(attrs), tuple(map(repr, value)))
                    hit = probe_cache.get(key)
                    if hit is None:
                        hit = any(
                            self.shard_client(s).call(
                                "exists",
                                scheme=scheme,
                                attrs=list(attrs),
                                value=list(value),
                                span_ctx=ctx,
                            )["exists"]
                            for s in self.shard_map.shards()
                        )
                        probe_cache[key] = hit
                    return hit

                for req in requirements:
                    message = requirement_violation(req, exists_any)
                    if message is not None:
                        raise RemoteConstraintViolation(
                            message,
                            constraint=req["constraint"],
                            kind="inclusion-dependency"
                            if req["kind"] == "exists"
                            else "restrict-batch",
                            detail=message,
                        )
            except BaseException:
                if router is not None:
                    router.status = "aborted"
                self._abort_all(prepared, xid, ctx)
                raise
            results: list[dict[str, Any] | None] = [None] * len(wire_ops)
            failure: Exception | None = None
            for shard in prepared:
                try:
                    rows = self.shard_client(shard).call(
                        "batch_commit", xid=xid, span_ctx=ctx
                    )
                except Exception as exc:  # commit the rest, then report
                    failure = failure or exc
                    continue
                for (index, _op), row in zip(groups[shard], rows):
                    results[index] = (
                        decode_row(row) if row is not None else None
                    )
            if failure is not None:
                raise failure
            return results
        finally:
            if router is not None:
                sink.export(router.end())
                sink.export(root.end())

    def _abort_all(
        self, prepared: list[int], xid: str, span_ctx: str | None = None
    ) -> None:
        for shard in prepared:
            try:
                self.shard_client(shard).call(
                    "batch_abort", xid=xid, span_ctx=span_ctx
                )
            except Exception:
                pass  # its hold will expire; rejection already decided

    # -- reads -----------------------------------------------------------

    def get(self, scheme: str, pk: Any) -> dict[str, Any] | None:
        """Primary-key lookup, routed to the owning worker."""
        result = self.shard_client(self._owner(scheme, pk)).call(
            "get", scheme=scheme, pk=_wire_pk(pk)
        )
        return decode_row(result) if result is not None else None

    def exists(
        self, scheme: str, attrs: Sequence[str], value: Sequence[Any]
    ) -> bool:
        """Whether any shard holds a row of ``scheme`` carrying
        ``value`` under ``attrs``."""
        wire = encode_pk(tuple(value))
        return any(
            self.shard_client(s).call(
                "exists", scheme=scheme, attrs=list(attrs), value=wire
            )["exists"]
            for s in self.shard_map.shards()
        )

    def stats(self) -> list[dict[str, Any]]:
        """Every worker's ``stats`` snapshot, in worker order."""
        return [
            self.shard_client(s).call("stats")
            for s in self.shard_map.shards()
        ]
