"""A blocking client for the JSON-lines server (``repro.server``).

One :class:`Client` is one TCP connection and one outstanding request
at a time -- the deliberately simple synchronous counterpart to the
asyncio server.  Concurrency comes from many clients (one per thread or
process), which is exactly the shape the server's group-commit path is
built for.

Rows and primary keys travel in the engine's own value encoding
(``NULL`` as the ``{"$null": true}`` marker), so what a method returns
is what :meth:`Database.get` would return in-process, as a plain dict.
Server-side rejections come back as exceptions:
:class:`~repro.server.protocol.RemoteConstraintViolation` for
constraint violations (carrying ``constraint``/``kind``/``rule``/
``detail`` provenance) and :class:`~repro.server.protocol.RemoteError`
for everything else.

::

    from repro.client import Client

    with Client(port=7043) as c:
        c.insert("COURSE", {"C.NR": "c1", "C.TITLE": "Databases"})
        row = c.get("COURSE", "c1")
"""

from __future__ import annotations

import socket
from typing import Any, Iterable, Mapping, Sequence

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    RemoteConstraintViolation,
    RemoteError,
    decode_frame,
    decode_row,
    encode_frame,
    encode_pk,
    encode_row,
    raise_error,
    request_frame,
)

__all__ = ["Client", "RemoteConstraintViolation", "RemoteError"]


def _wire_pk(pk: Any) -> list:
    """A primary key (scalar or tuple) in wire form."""
    if not isinstance(pk, tuple):
        pk = (pk,)
    return encode_pk(pk)


def _wire_ops(ops: Iterable[tuple]) -> list[list]:
    """Engine-style ``apply_batch`` op tuples in wire form."""
    wire: list[list] = []
    for op in ops:
        kind = op[0] if op else None
        if kind == "insert" and len(op) == 3:
            wire.append(["insert", op[1], encode_row(op[2])])
        elif kind == "update" and len(op) == 4:
            wire.append(
                ["update", op[1], _wire_pk(op[2]), encode_row(op[3])]
            )
        elif kind == "delete" and len(op) == 3:
            wire.append(["delete", op[1], _wire_pk(op[2])])
        else:
            raise ValueError(f"not a valid batch op: {op!r}")
    return wire


class Client:
    """One blocking connection to a ``repro`` server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = None,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # One small frame per request: Nagle+delayed-ACK would add
        # whole milliseconds to every round trip.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._fh = self._sock.makefile("rwb")
        self._next_id = 0
        #: The ``trace_id`` the server echoed in the most recent
        #: response (client-supplied or server-generated) -- the handle
        #: for correlating this request with the server's trace events.
        self.last_trace_id: str | None = None

    # -- plumbing --------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def call(
        self, verb: str, *, trace_id: str | None = None, **params: Any
    ) -> Any:
        """One request/response round trip; the raw ``result`` value.

        ``trace_id`` (optional) is sent with the request and stamped
        onto every engine trace event the server emits for it; the
        server echoes it (or a generated id) back and it is kept in
        :attr:`last_trace_id`.

        Raises the matching :class:`RemoteError` subtype on an error
        frame, :class:`ConnectionError` if the server hangs up, and
        :class:`ProtocolError` on an unparseable or mismatched response.
        """
        self._next_id += 1
        request_id = self._next_id
        if trace_id is not None:
            params["trace_id"] = trace_id
        self._fh.write(encode_frame(request_frame(request_id, verb, **params)))
        self._fh.flush()
        line = self._fh.readline(MAX_FRAME_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        frame = decode_frame(line)
        if frame.get("id") != request_id:
            raise ProtocolError(
                f"response id {frame.get('id')!r} does not match "
                f"request id {request_id!r}"
            )
        echoed = frame.get("trace_id")
        if isinstance(echoed, str):
            self.last_trace_id = echoed
        if not frame.get("ok"):
            raise_error(frame)
        return frame.get("result")

    # -- mutations -------------------------------------------------------

    def insert(
        self, scheme: str, row: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Insert one row; returns the stored row."""
        return decode_row(
            self.call("insert", scheme=scheme, row=encode_row(row))
        )

    def update(
        self, scheme: str, pk: Any, updates: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Update one row by primary key; returns the updated row."""
        return decode_row(
            self.call(
                "update",
                scheme=scheme,
                pk=_wire_pk(pk),
                updates=encode_row(updates),
            )
        )

    def delete(self, scheme: str, pk: Any) -> None:
        """Delete one row by primary key."""
        self.call("delete", scheme=scheme, pk=_wire_pk(pk))

    def insert_many(
        self, scheme: str, rows: Sequence[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        """Insert many rows of one scheme atomically."""
        result = self.call(
            "insert_many",
            scheme=scheme,
            rows=[encode_row(r) for r in rows],
        )
        return [decode_row(r) for r in result]

    def apply_batch(self, ops: Iterable[tuple]) -> list[dict[str, Any] | None]:
        """Apply a mixed mutation batch atomically (engine-style op
        tuples: ``("insert", scheme, row)``, ``("update", scheme, pk,
        updates)``, ``("delete", scheme, pk)``)."""
        result = self.call("apply_batch", ops=_wire_ops(ops))
        return [decode_row(r) if r is not None else None for r in result]

    # -- reads -----------------------------------------------------------

    def get(self, scheme: str, pk: Any) -> dict[str, Any] | None:
        """Primary-key lookup; ``None`` when absent."""
        result = self.call("get", scheme=scheme, pk=_wire_pk(pk))
        return decode_row(result) if result is not None else None

    def join_to(
        self,
        scheme: str,
        pk: Any,
        via: Sequence[str],
        target_scheme: str,
        target_attrs: Sequence[str] | None = None,
    ) -> dict[str, Any] | None:
        """Navigate a foreign key from the row under ``pk``."""
        result = self.call(
            "join_to",
            scheme=scheme,
            pk=_wire_pk(pk),
            via=list(via),
            target_scheme=target_scheme,
            target_attrs=list(target_attrs) if target_attrs else None,
        )
        return decode_row(result) if result is not None else None

    def find_referencing(
        self,
        scheme: str,
        pk: Any,
        source_scheme: str,
        via: Sequence[str],
        target_attrs: Sequence[str],
    ) -> list[dict[str, Any]]:
        """All rows of ``source_scheme`` referencing the row under
        ``pk``."""
        result = self.call(
            "find_referencing",
            scheme=scheme,
            pk=_wire_pk(pk),
            source_scheme=source_scheme,
            via=list(via),
            target_attrs=list(target_attrs),
        )
        return [decode_row(r) for r in result]

    def check(self) -> dict[str, Any]:
        """Full-state consistency check:
        ``{"consistent": bool, "violations": [...]}``."""
        return self.call("check")

    def explain(self, op: str, scheme: str) -> dict[str, Any]:
        """The enforcement plan EXPLAIN dict for ``op`` on ``scheme``."""
        return self.call("explain", op=op, scheme=scheme)

    def metrics(self) -> str:
        """The server's Prometheus text exposition."""
        return self.call("metrics")

    def stats(self) -> dict[str, Any]:
        """The server's :meth:`EngineStats.snapshot` dict."""
        return self.call("stats")
