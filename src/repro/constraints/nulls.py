"""Null constraints (Section 3).

A null constraint is a *single-tuple* restriction on where and how nulls
may appear in a relation.  The paper uses five forms:

* **null-existence** ``Ri: Y |-> Z`` -- in every tuple, ``t[Y]`` total
  implies ``t[Z]`` total (read "non-null Y requires non-null Z");
* **nulls-not-allowed** ``Ri: 0 |-> Z`` -- the special case with an empty
  left side: ``t[Z]`` must always be total;
* **null-synchronization set** ``Ri: NS(Y)`` -- the set of null-existence
  constraints ``{A |-> Y : A in Y}``: ``t[Y]`` is either total or entirely
  null;
* **part-null** ``Ri: PN(Y1, ..., Ym)`` -- at least one ``t[Yj]`` is total;
* **total-equality** ``Ri: Y =! Z`` -- whenever ``t[Y]`` and ``t[Z]`` are
  both total they are equal (component-wise, ordered correspondence).

All five implement the same ``NullConstraint`` interface, and all are
checkable per-tuple -- which is what lets the storage engine enforce them
incrementally on insert/update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.relational.state import DatabaseState
from repro.relational.tuples import Tuple


class NullConstraint:
    """Common interface of the paper's null constraints.

    Subclasses provide ``scheme_name``, per-tuple ``holds_for`` and the
    attribute bookkeeping used by ``Merge``/``Remove`` rewriting.
    """

    scheme_name: str

    def holds_for(self, t: Tuple) -> bool:  # pragma: no cover - interface
        """Single-tuple satisfaction test (see class docstring)."""
        raise NotImplementedError

    def is_satisfied_by(self, state: DatabaseState) -> bool:
        """Satisfaction over a database state: every tuple of the
        constrained relation must pass the single-tuple test."""
        return all(self.holds_for(t) for t in state[self.scheme_name])

    def attributes_mentioned(self) -> frozenset[str]:  # pragma: no cover
        """All attribute names this constraint involves."""
        raise NotImplementedError

    def rename_scheme(self, old: str, new: str) -> "NullConstraint":
        """This constraint re-targeted when its scheme was renamed."""
        raise NotImplementedError  # pragma: no cover - interface


@dataclass(frozen=True)
class NullExistenceConstraint(NullConstraint):
    """``scheme: lhs |-> rhs`` -- total ``lhs`` requires total ``rhs``.

    An empty ``lhs`` yields a nulls-not-allowed constraint (``t[{}]`` is
    vacuously total); use :func:`nulls_not_allowed` to construct those.
    """

    scheme_name: str
    lhs: frozenset[str]
    rhs: frozenset[str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", frozenset(self.lhs))
        object.__setattr__(self, "rhs", frozenset(self.rhs))
        if not self.rhs:
            raise ValueError("null-existence right-hand side must be non-empty")

    def is_nulls_not_allowed(self) -> bool:
        """True for the ``0 |-> Z`` form."""
        return not self.lhs

    def holds_for(self, t: Tuple) -> bool:
        """Single-tuple satisfaction test (see class docstring)."""
        if t.is_total_on(self.lhs):
            return t.is_total_on(self.rhs)
        return True

    def attributes_mentioned(self) -> frozenset[str]:
        """All attribute names this constraint involves."""
        return self.lhs | self.rhs

    def without_attributes(
        self, removed: Iterable[str]
    ) -> "NullExistenceConstraint | None":
        """Drop attributes (``Remove`` step 4(a)); returns ``None`` when the
        right-hand side empties out (the constraint becomes trivial)."""
        gone = set(removed)
        lhs = self.lhs - gone
        rhs = self.rhs - gone
        if not rhs:
            return None
        return NullExistenceConstraint(self.scheme_name, lhs, rhs)

    def rename_scheme(self, old: str, new: str) -> "NullExistenceConstraint":
        """This constraint re-targeted when its scheme was renamed."""
        if self.scheme_name != old:
            return self
        return NullExistenceConstraint(new, self.lhs, self.rhs)

    def __str__(self) -> str:
        left = ",".join(sorted(self.lhs)) or "0"
        right = ",".join(sorted(self.rhs))
        return f"{self.scheme_name}: {left} |-> {right}"


def nulls_not_allowed(
    scheme_name: str, attrs: Iterable[str]
) -> NullExistenceConstraint:
    """The nulls-not-allowed constraint ``scheme: 0 |-> attrs``."""
    return NullExistenceConstraint(scheme_name, frozenset(), frozenset(attrs))


def null_synchronization_set(
    scheme_name: str, attrs: Iterable[str]
) -> tuple[NullExistenceConstraint, ...]:
    """The null-synchronization set ``NS(Y) = {A |-> Y : A in Y}``.

    Satisfied iff ``t[Y]`` is either total or entirely null.  Returned as
    the underlying null-existence constraints (the paper defines ``NS`` as
    a *set* of constraints), in sorted attribute order for determinism.
    """
    attr_set = frozenset(attrs)
    return tuple(
        NullExistenceConstraint(scheme_name, frozenset({a}), attr_set)
        for a in sorted(attr_set)
    )


def is_synchronized(t: Tuple, attrs: Iterable[str]) -> bool:
    """Convenience: does ``t[Y]`` satisfy the all-or-nothing condition of
    ``NS(Y)``?"""
    names = list(attrs)
    return t.is_total_on(names) or t.is_all_null_on(names)


@dataclass(frozen=True)
class PartNullConstraint(NullConstraint):
    """``scheme: PN(Y1, ..., Ym)`` -- at least one group total per tuple."""

    scheme_name: str
    groups: tuple[frozenset[str], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "groups", tuple(frozenset(g) for g in self.groups)
        )
        if not self.groups:
            raise ValueError("part-null constraint needs at least one group")
        if any(not g for g in self.groups):
            raise ValueError("part-null groups must be non-empty")

    def holds_for(self, t: Tuple) -> bool:
        """Single-tuple satisfaction test (see class docstring)."""
        return any(t.is_total_on(g) for g in self.groups)

    def attributes_mentioned(self) -> frozenset[str]:
        """All attribute names this constraint involves."""
        out: frozenset[str] = frozenset()
        for g in self.groups:
            out |= g
        return out

    def without_attributes(
        self, removed: Iterable[str]
    ) -> "PartNullConstraint | None":
        """Drop attributes from every group (``Remove`` step 4(a)); a group
        that empties out is dropped, and the constraint dissolves when no
        group survives."""
        gone = set(removed)
        groups = tuple(g - gone for g in self.groups)
        groups = tuple(g for g in groups if g)
        if not groups:
            return None
        return PartNullConstraint(self.scheme_name, groups)

    def rename_scheme(self, old: str, new: str) -> "PartNullConstraint":
        """This constraint re-targeted when its scheme was renamed."""
        if self.scheme_name != old:
            return self
        return PartNullConstraint(new, self.groups)

    def __str__(self) -> str:
        parts = "; ".join(
            "{" + ",".join(sorted(g)) + "}" for g in self.groups
        )
        return f"{self.scheme_name}: PN({parts})"


@dataclass(frozen=True)
class TotalEqualityConstraint(NullConstraint):
    """``scheme: lhs =! rhs`` -- total sides must agree component-wise.

    The sides are ordered tuples; position ``i`` of ``lhs`` is equated with
    position ``i`` of ``rhs`` (the correspondence along which ``Merge``
    equates the merged key ``Km`` with each family key ``Ki``).
    """

    scheme_name: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", tuple(self.lhs))
        object.__setattr__(self, "rhs", tuple(self.rhs))
        if len(self.lhs) != len(self.rhs):
            raise ValueError("total-equality sides must have equal arity")
        if not self.lhs:
            raise ValueError("total-equality sides must be non-empty")

    def holds_for(self, t: Tuple) -> bool:
        """Single-tuple satisfaction test (see class docstring)."""
        if t.is_total_on(self.lhs) and t.is_total_on(self.rhs):
            return all(t[a] == t[b] for a, b in zip(self.lhs, self.rhs))
        return True

    def attributes_mentioned(self) -> frozenset[str]:
        """All attribute names this constraint involves."""
        return frozenset(self.lhs) | frozenset(self.rhs)

    def correspondence(self) -> Mapping[str, str]:
        """The ``lhs -> rhs`` attribute-name correspondence."""
        return dict(zip(self.lhs, self.rhs))

    def rename_scheme(self, old: str, new: str) -> "TotalEqualityConstraint":
        """This constraint re-targeted when its scheme was renamed."""
        if self.scheme_name != old:
            return self
        return TotalEqualityConstraint(new, self.lhs, self.rhs)

    def __str__(self) -> str:
        left = ",".join(self.lhs)
        right = ",".join(self.rhs)
        return f"{self.scheme_name}: {left} =! {right}"
