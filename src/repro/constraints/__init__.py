"""Dependencies and constraints over relational schemas (Sections 2-3).

Four constraint families appear in the paper's schema class and in the
output of the merging technique:

* key / functional dependencies (:mod:`repro.constraints.functional`);
* inclusion dependencies, in particular *key-based* ones, i.e. referential
  integrity constraints (:mod:`repro.constraints.inclusion`);
* null constraints: null-existence, nulls-not-allowed,
  null-synchronization sets, part-null and total-equality constraints
  (:mod:`repro.constraints.nulls`);
* the inference machinery tying them together
  (:mod:`repro.constraints.inference`).

:mod:`repro.constraints.checker` evaluates full database-state consistency,
the semantics shared by the capacity verifier and the storage engine.
"""

from repro.constraints.functional import (
    FunctionalDependency,
    KeyDependency,
    attribute_closure,
    candidate_keys,
    implies_fd,
    is_bcnf,
    is_superkey,
    minimal_cover,
)
from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import (
    NullConstraint,
    NullExistenceConstraint,
    PartNullConstraint,
    TotalEqualityConstraint,
    null_synchronization_set,
    nulls_not_allowed,
)
from repro.constraints.checker import ConsistencyChecker, Violation

__all__ = [
    "FunctionalDependency",
    "KeyDependency",
    "attribute_closure",
    "candidate_keys",
    "implies_fd",
    "is_bcnf",
    "is_superkey",
    "minimal_cover",
    "InclusionDependency",
    "NullConstraint",
    "NullExistenceConstraint",
    "PartNullConstraint",
    "TotalEqualityConstraint",
    "null_synchronization_set",
    "nulls_not_allowed",
    "ConsistencyChecker",
    "Violation",
]
