"""Inference for null-existence and total-equality constraints (Section 3).

The paper states two facts this module implements:

* "Inference axioms for null-existence constraints have the form of the
  inference axioms for functional dependencies" -- so implication of
  ``Y |-> Z`` statements is attribute-closure computation, reusing the FD
  machinery.
* "Inference axioms for total-equality constraints are analogous to the
  inference axioms for the equality constraints of [7]" (Klug) --
  reflexivity, symmetry and transitivity of component-wise equality, which
  reduces to a union-find over attribute names.

It also provides the FD-with-equality closure used by the BCNF argument of
Proposition 4.1: total-equality constraints let functional dependencies be
rewritten along equated attributes, which is why the merged scheme's old
key dependencies become redundant.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.constraints.functional import (
    FunctionalDependency,
    attribute_closure,
)
from repro.constraints.nulls import (
    NullExistenceConstraint,
    TotalEqualityConstraint,
)


def _as_fd(constraint: NullExistenceConstraint) -> FunctionalDependency:
    """View a null-existence constraint as an FD for closure purposes."""
    return FunctionalDependency(
        constraint.scheme_name, constraint.lhs, constraint.rhs
    )


def null_existence_closure(
    attrs: Iterable[str], constraints: Iterable[NullExistenceConstraint]
) -> frozenset[str]:
    """All attributes forced total when ``attrs`` are total.

    Nulls-not-allowed constraints (empty left side) participate with a
    vacuously-total antecedent: their right-hand sides are always in the
    closure.
    """
    return attribute_closure(attrs, [_as_fd(c) for c in constraints])


def implies_null_existence(
    constraints: Iterable[NullExistenceConstraint],
    candidate: NullExistenceConstraint,
) -> bool:
    """True iff ``constraints`` imply ``candidate`` (FD-style axioms)."""
    relevant = [
        c for c in constraints if c.scheme_name == candidate.scheme_name
    ]
    return candidate.rhs <= null_existence_closure(candidate.lhs, relevant)


class EqualityClasses:
    """Union-find over attribute names induced by total-equality
    constraints (Klug-style equality closure)."""

    def __init__(self, constraints: Iterable[TotalEqualityConstraint] = ()):
        self._parent: dict[str, str] = {}
        for c in constraints:
            for a, b in zip(c.lhs, c.rhs):
                self.equate(a, b)

    def _find(self, a: str) -> str:
        parent = self._parent.setdefault(a, a)
        if parent != a:
            root = self._find(parent)
            self._parent[a] = root
            return root
        return a

    def equate(self, a: str, b: str) -> None:
        """Record ``a = b``."""
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._parent[rb] = ra

    def equivalent(self, a: str, b: str) -> bool:
        """True iff ``a`` and ``b`` are (transitively) equated."""
        if a == b:
            return True
        return self._find(a) == self._find(b)

    def class_of(self, a: str) -> frozenset[str]:
        """The equivalence class of ``a`` among attributes seen so far."""
        root = self._find(a)
        return frozenset(
            x for x in self._parent if self._find(x) == root
        ) | {a}

    def classes(self) -> tuple[frozenset[str], ...]:
        """All non-singleton equivalence classes, deterministically ordered."""
        groups: dict[str, set[str]] = {}
        for a in self._parent:
            groups.setdefault(self._find(a), set()).add(a)
        out = [frozenset(g) for g in groups.values() if len(g) > 1]
        return tuple(sorted(out, key=lambda g: sorted(g)))


def implies_total_equality(
    constraints: Iterable[TotalEqualityConstraint],
    candidate: TotalEqualityConstraint,
) -> bool:
    """True iff the equality closure of ``constraints`` (same scheme)
    equates every component pair of ``candidate``."""
    classes = EqualityClasses(
        c for c in constraints if c.scheme_name == candidate.scheme_name
    )
    return all(
        classes.equivalent(a, b) for a, b in zip(candidate.lhs, candidate.rhs)
    )


def fds_with_equality(
    fds: Sequence[FunctionalDependency],
    equalities: Sequence[TotalEqualityConstraint],
    scheme_name: str,
) -> tuple[FunctionalDependency, ...]:
    """Functional dependencies implied over ``scheme_name`` by ``fds``
    together with total-equality constraints.

    Each equated pair contributes the two FDs ``a -> b`` and ``b -> a``
    (on total tuples, equal attributes determine one another), which is
    exactly the strengthening the Proposition 4.1 BCNF argument relies on:
    the old family keys become superkeys of the merged scheme.
    """
    derived: list[FunctionalDependency] = [
        fd for fd in fds if fd.scheme_name == scheme_name
    ]
    classes = EqualityClasses(
        c for c in equalities if c.scheme_name == scheme_name
    )
    for group in classes.classes():
        members = sorted(group)
        for a in members:
            for b in members:
                if a != b:
                    derived.append(
                        FunctionalDependency(
                            scheme_name, frozenset({a}), frozenset({b})
                        )
                    )
    return tuple(dict.fromkeys(derived))
