"""Functional dependencies, keys, closures, and Boyce-Codd Normal Form.

A functional dependency over ``Ri`` is a statement ``Ri: Y -> Z``
(Section 2).  A *key dependency* is the special case ``Ri: Ki -> Xi`` where
``Ki`` is a minimal determining set.  ``Ri`` is in BCNF iff every declared
functional dependency has a superkey left-hand side.

The closure machinery here is shared by three clients: the BCNF tests of
Proposition 4.1, the synthesis-normalization baseline of Section 1
(Bernstein's algorithm needs minimal covers), and the null-existence
constraint inference of Section 3 (whose axioms "have the form of the
inference axioms for functional dependencies").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.relational.relation import Relation
from repro.relational.schema import RelationScheme


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``scheme: lhs -> rhs`` over attribute names."""

    scheme_name: str
    lhs: frozenset[str]
    rhs: frozenset[str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", frozenset(self.lhs))
        object.__setattr__(self, "rhs", frozenset(self.rhs))

    def is_trivial(self) -> bool:
        """True iff ``rhs`` is contained in ``lhs`` (reflexivity axiom)."""
        return self.rhs <= self.lhs

    def is_satisfied_by(self, relation: Relation) -> bool:
        """FD satisfaction: tuples agreeing on a *total* ``lhs`` must agree
        on ``rhs``.

        Restricting the antecedent to total left-hand sides is what makes
        nullable candidate keys meaningful (Section 5.1): two merged tuples
        whose old key ``Ki`` is null do not clash.  For attributes covered
        by nulls-not-allowed constraints -- the paper's standing assumption
        for inputs of ``Merge`` -- this coincides with classical FD
        satisfaction.
        """
        lhs = sorted(self.lhs)
        rhs = sorted(self.rhs)
        seen: dict[tuple, tuple] = {}
        for t in relation:
            if not t.is_total_on(lhs):
                continue
            left = tuple(t[a] for a in lhs)
            right = tuple(t[a] for a in rhs)
            prior = seen.get(left)
            if prior is None:
                seen[left] = right
            elif prior != right:
                return False
        return True

    def __str__(self) -> str:
        left = ",".join(sorted(self.lhs)) or "0"
        right = ",".join(sorted(self.rhs))
        return f"{self.scheme_name}: {left} -> {right}"


class KeyDependency(FunctionalDependency):
    """A key dependency ``Ri: Ki -> Xi``.

    Structurally an FD; the distinct type records design intent (the
    schema class of the paper carries *key* dependencies in ``F``) and is
    what ``Merge`` step 2 produces for the merged scheme.
    """

    @classmethod
    def of_scheme(cls, scheme: RelationScheme) -> "KeyDependency":
        """The key dependency declared by a scheme's primary key."""
        return cls(
            scheme.name,
            frozenset(scheme.key_names),
            frozenset(scheme.attribute_names),
        )


def attribute_closure(
    attrs: Iterable[str], fds: Iterable[FunctionalDependency]
) -> frozenset[str]:
    """The closure of ``attrs`` under ``fds`` (all within one scheme)."""
    closure = set(attrs)
    pending = list(fds)
    changed = True
    while changed:
        changed = False
        remaining = []
        for fd in pending:
            if fd.lhs <= closure:
                if not fd.rhs <= closure:
                    closure |= fd.rhs
                    changed = True
            else:
                remaining.append(fd)
        pending = remaining
    return frozenset(closure)


def implies_fd(
    fds: Iterable[FunctionalDependency], candidate: FunctionalDependency
) -> bool:
    """True iff ``fds`` logically imply ``candidate`` (via closure)."""
    relevant = [fd for fd in fds if fd.scheme_name == candidate.scheme_name]
    return candidate.rhs <= attribute_closure(candidate.lhs, relevant)


def is_superkey(
    attrs: Iterable[str],
    all_attributes: Iterable[str],
    fds: Iterable[FunctionalDependency],
) -> bool:
    """True iff ``attrs`` functionally determine every attribute."""
    return set(all_attributes) <= attribute_closure(attrs, fds)


def candidate_keys(
    all_attributes: Sequence[str], fds: Sequence[FunctionalDependency]
) -> frozenset[frozenset[str]]:
    """All minimal keys of an attribute set under ``fds``.

    Exponential in the worst case, which is fine for schema-design-sized
    inputs (the paper's schemes have a handful of attributes).  The search
    prunes attributes that appear in no FD right-hand side: they belong to
    every key.
    """
    universe = frozenset(all_attributes)
    fds = [fd for fd in fds if not fd.is_trivial()]
    in_rhs = frozenset().union(*(fd.rhs for fd in fds)) if fds else frozenset()
    mandatory = universe - in_rhs
    optional = sorted(universe - mandatory)

    if is_superkey(mandatory, universe, fds):
        return frozenset({frozenset(mandatory)})

    keys: set[frozenset[str]] = set()
    for size in range(1, len(optional) + 1):
        for combo in itertools.combinations(optional, size):
            key = mandatory | set(combo)
            if any(known <= key for known in keys):
                continue
            if is_superkey(key, universe, fds):
                keys.add(frozenset(key))
        if keys and all(
            any(known <= mandatory | set(combo) for known in keys)
            for combo in itertools.combinations(optional, size)
        ):
            # Every candidate superset at this size is already covered by a
            # known minimal key; larger combinations cannot be minimal.
            break
    return frozenset(keys)


def is_bcnf(
    scheme: RelationScheme, fds: Sequence[FunctionalDependency]
) -> bool:
    """BCNF test: every non-trivial declared FD over the scheme must have a
    superkey left-hand side (Section 2)."""
    local = [fd for fd in fds if fd.scheme_name == scheme.name]
    universe = scheme.attribute_names
    for fd in local:
        if fd.is_trivial():
            continue
        if not is_superkey(fd.lhs, universe, local):
            return False
    return True


def minimal_cover(
    fds: Sequence[FunctionalDependency],
) -> tuple[FunctionalDependency, ...]:
    """A minimal (canonical) cover of ``fds``: singleton right-hand sides,
    no extraneous left-hand-side attributes, no redundant dependencies.

    Used by the synthesis-normalization baseline (Section 1 cites [1]).
    All dependencies must belong to the same scheme namespace.
    """
    # 1. Split right-hand sides.
    split: list[FunctionalDependency] = []
    for fd in fds:
        for attr in sorted(fd.rhs - fd.lhs):
            split.append(
                FunctionalDependency(fd.scheme_name, fd.lhs, frozenset({attr}))
            )

    # 2. Remove extraneous LHS attributes.
    reduced: list[FunctionalDependency] = []
    for fd in split:
        lhs = set(fd.lhs)
        for attr in sorted(fd.lhs):
            if len(lhs) <= 1:
                break
            trimmed = lhs - {attr}
            if fd.rhs <= attribute_closure(trimmed, split):
                lhs = trimmed
        reduced.append(
            FunctionalDependency(fd.scheme_name, frozenset(lhs), fd.rhs)
        )

    # 3. Remove redundant dependencies.
    result = list(dict.fromkeys(reduced))
    changed = True
    while changed:
        changed = False
        for fd in list(result):
            rest = [g for g in result if g is not fd]
            if fd.rhs <= attribute_closure(fd.lhs, rest):
                result = rest
                changed = True
                break
    return tuple(result)


def equivalent_fd_sets(
    first: Sequence[FunctionalDependency],
    second: Sequence[FunctionalDependency],
) -> bool:
    """True iff the two FD sets imply each other."""
    return all(implies_fd(second, fd) for fd in first) and all(
        implies_fd(first, fd) for fd in second
    )
