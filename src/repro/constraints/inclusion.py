"""Inclusion dependencies and referential integrity (Section 2).

An inclusion dependency ``Ri[Y] <= Rj[Z]`` is satisfied when the *total*
projection of ``ri`` on ``Y`` is contained in the total projection of
``rj`` on ``Z`` -- the paper defines satisfaction via total projections,
which gives inclusion dependencies the usual SQL semantics of ignoring
rows with null foreign keys.

A *key-based* inclusion dependency (``Z`` is the primary key of ``Rj``) is
a referential integrity constraint; whether an IND stays key-based under
merging is the subject of Proposition 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.algebra import total_project
from repro.relational.schema import RelationalSchema
from repro.relational.state import DatabaseState


@dataclass(frozen=True)
class InclusionDependency:
    """``lhs_scheme[lhs_attrs] <= rhs_scheme[rhs_attrs]``.

    Attribute sequences are ordered: position ``i`` on the left corresponds
    to position ``i`` on the right (the compatibility correspondence of
    Section 2).
    """

    lhs_scheme: str
    lhs_attrs: tuple[str, ...]
    rhs_scheme: str
    rhs_attrs: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs_attrs", tuple(self.lhs_attrs))
        object.__setattr__(self, "rhs_attrs", tuple(self.rhs_attrs))
        if len(self.lhs_attrs) != len(self.rhs_attrs):
            raise ValueError(
                "inclusion dependency sides must have equal arity: "
                f"{self}"
            )
        if not self.lhs_attrs:
            raise ValueError("inclusion dependency sides must be non-empty")

    def is_key_based(self, schema: RelationalSchema) -> bool:
        """True iff the right-hand side is the primary key of its scheme
        (the definition of a referential integrity constraint [4])."""
        rhs = schema.scheme(self.rhs_scheme)
        return tuple(self.rhs_attrs) == rhs.key_names

    def is_internal(self) -> bool:
        """True iff both sides refer to the same relation-scheme (merging
        can produce such intra-relation dependencies)."""
        return self.lhs_scheme == self.rhs_scheme

    def is_satisfied_by(self, state: DatabaseState) -> bool:
        """Total-projection containment, with positional correspondence."""
        lhs_rel = state[self.lhs_scheme]
        rhs_rel = state[self.rhs_scheme]
        rhs_rows = {
            tuple(t[a] for a in self.rhs_attrs)
            for t in total_project(rhs_rel, self.rhs_attrs)
        }
        for t in total_project(lhs_rel, self.lhs_attrs):
            if tuple(t[a] for a in self.lhs_attrs) not in rhs_rows:
                return False
        return True

    def rename_scheme(self, old: str, new: str) -> "InclusionDependency":
        """This dependency with occurrences of scheme ``old`` renamed."""
        return InclusionDependency(
            new if self.lhs_scheme == old else self.lhs_scheme,
            self.lhs_attrs,
            new if self.rhs_scheme == old else self.rhs_scheme,
            self.rhs_attrs,
        )

    def with_rhs_attrs(self, attrs: tuple[str, ...]) -> "InclusionDependency":
        """This dependency with the right-hand attribute list replaced
        (``Merge`` step 4(b) and ``Remove`` step 3 rewrite right sides)."""
        return InclusionDependency(
            self.lhs_scheme, self.lhs_attrs, self.rhs_scheme, tuple(attrs)
        )

    def with_lhs_attrs(self, attrs: tuple[str, ...]) -> "InclusionDependency":
        """This dependency with the left-hand attribute list replaced."""
        return InclusionDependency(
            self.lhs_scheme, tuple(attrs), self.rhs_scheme, self.rhs_attrs
        )

    def __str__(self) -> str:
        left = ",".join(self.lhs_attrs)
        right = ",".join(self.rhs_attrs)
        return f"{self.lhs_scheme}[{left}] <= {self.rhs_scheme}[{right}]"
