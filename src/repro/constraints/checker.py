"""Database-state consistency checking.

A state ``r`` of a schema ``RS = (R, F u I u N)`` is *consistent* iff it
satisfies every dependency and constraint of the schema (Section 2).  The
checker evaluates all of them and reports structured violations; schema
transformations (``Merge``/``Remove``), the information-capacity verifier,
and the storage engine all share this one notion of consistency.

Pass a :class:`~repro.obs.trace.Tracer` to watch the checker work: it
emits one ``check`` event per constraint evaluated and one ``violation``
event per constraint found violated, each carrying the constraint id and
its paper-rule label (see :mod:`repro.obs.rules`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.constraints.functional import KeyDependency
from repro.obs.rules import classify_null_constraint, paper_rule
from repro.obs.trace import TraceEvent, Tracer
from repro.relational.schema import RelationalSchema
from repro.relational.state import DatabaseState


@dataclass(frozen=True)
class Violation:
    """One constraint violation: which constraint, where, and why.

    ``rule`` carries the paper-rule label of the violated constraint
    (empty only for violation kinds the rule table does not know).
    """

    kind: str
    scheme_name: str
    constraint: str
    detail: str
    rule: str = field(default="", compare=False)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.constraint}: {self.detail}"


class ConsistencyChecker:
    """Evaluates database states against one relational schema."""

    def __init__(self, schema: RelationalSchema, tracer: Tracer | None = None):
        self.schema = schema
        self.tracer = tracer
        # Key dependencies implied by the schemes' candidate keys are always
        # in force, even when not listed in F explicitly.
        self._implicit_keys: list[KeyDependency] = []
        declared = {
            (fd.scheme_name, fd.lhs, fd.rhs) for fd in schema.fds
        }
        for scheme in schema.schemes:
            for key in sorted(scheme.candidate_keys, key=lambda k: [a.name for a in k]):
                dep = KeyDependency(
                    scheme.name,
                    frozenset(a.name for a in key),
                    frozenset(scheme.attribute_names),
                )
                if (dep.scheme_name, dep.lhs, dep.rhs) not in declared:
                    self._implicit_keys.append(dep)

    def _trace_check(
        self,
        kind: str,
        scheme_name: str,
        constraint: str,
        ok: bool,
        rows: int | None = None,
    ) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                TraceEvent(
                    event="check",
                    op="check",
                    scheme=scheme_name,
                    constraint=constraint,
                    kind=kind,
                    rule=paper_rule(kind),
                    outcome="ok" if ok else "violation",
                    rows=rows,
                )
            )

    def _emit(self, violation: Violation) -> Violation:
        if self.tracer is not None:
            self.tracer.emit(
                TraceEvent(
                    event="violation",
                    op="check",
                    scheme=violation.scheme_name,
                    constraint=violation.constraint,
                    kind=violation.kind,
                    rule=violation.rule,
                    outcome="rejected",
                    detail=violation.detail,
                )
            )
        return violation

    def explain(self) -> dict:
        """The checks :meth:`iter_violations` will run, in evaluation
        order, each with its constraint id, kind and paper-rule label."""
        checks: list[dict] = []

        def add(check: str, scheme: str, constraint: str, kind: str) -> None:
            checks.append(
                {
                    "step": len(checks) + 1,
                    "check": check,
                    "scheme": scheme,
                    "constraint": constraint,
                    "kind": kind,
                    "rule": paper_rule(kind),
                }
            )

        for scheme in self.schema.schemes:
            add("structure", scheme.name, scheme.name, "structure")
        for fd in list(self.schema.fds) + self._implicit_keys:
            add("key-dependency", fd.scheme_name, str(fd), "key-dependency")
        for ind in self.schema.inds:
            add(
                "inclusion-dependency",
                ind.lhs_scheme,
                str(ind),
                "inclusion-dependency",
            )
        for nc in self.schema.null_constraints:
            add(
                "null-constraint",
                nc.scheme_name,
                str(nc),
                classify_null_constraint(nc),
            )
        return {"schemes": len(self.schema.schemes), "checks": checks}

    def explain_text(self) -> str:
        """Human-readable form of :meth:`explain`."""
        explanation = self.explain()
        lines = [
            f"EXPLAIN check ({explanation['schemes']} schemes, "
            f"{len(explanation['checks'])} checks)"
        ]
        for check in explanation["checks"]:
            lines.append(
                f"  {check['step']}. {check['check']} on {check['scheme']}: "
                f"{check['constraint']}  [{check['kind']}]"
            )
            if check["rule"]:
                lines.append(f"       rule: {check['rule']}")
        return "\n".join(lines)

    def iter_violations(self, state: DatabaseState) -> Iterator[Violation]:
        """Yield every violation of the schema's constraints by ``state``."""
        yield from self._structural_violations(state)
        for fd in list(self.schema.fds) + self._implicit_keys:
            if fd.scheme_name not in state:
                continue
            ok = fd.is_satisfied_by(state[fd.scheme_name])
            self._trace_check(
                "key-dependency",
                fd.scheme_name,
                str(fd),
                ok,
                rows=len(state[fd.scheme_name]),
            )
            if not ok:
                yield self._emit(
                    Violation(
                        "key-dependency",
                        fd.scheme_name,
                        str(fd),
                        "two tuples agree on a total left-hand side but "
                        "differ on the right-hand side",
                        rule=paper_rule("key-dependency"),
                    )
                )
        for ind in self.schema.inds:
            if ind.lhs_scheme not in state or ind.rhs_scheme not in state:
                continue
            ok = ind.is_satisfied_by(state)
            self._trace_check(
                "inclusion-dependency",
                ind.lhs_scheme,
                str(ind),
                ok,
                rows=len(state[ind.lhs_scheme]),
            )
            if not ok:
                yield self._emit(
                    Violation(
                        "inclusion-dependency",
                        ind.lhs_scheme,
                        str(ind),
                        "total projection of the left side is not contained "
                        "in the total projection of the right side",
                        rule=paper_rule("inclusion-dependency"),
                    )
                )
        for nc in self.schema.null_constraints:
            if nc.scheme_name not in state:
                continue
            kind = classify_null_constraint(nc)
            ok = True
            for t in state[nc.scheme_name]:
                if not nc.holds_for(t):
                    ok = False
                    self._trace_check(
                        kind, nc.scheme_name, str(nc), False,
                        rows=len(state[nc.scheme_name]),
                    )
                    yield self._emit(
                        Violation(
                            "null-constraint",
                            nc.scheme_name,
                            str(nc),
                            f"violated by tuple {t!r}",
                            rule=paper_rule(kind),
                        )
                    )
                    break
            if ok:
                self._trace_check(
                    kind, nc.scheme_name, str(nc), True,
                    rows=len(state[nc.scheme_name]),
                )

    def _structural_violations(self, state: DatabaseState) -> Iterator[Violation]:
        rule = paper_rule("structure")
        for scheme in self.schema.schemes:
            if scheme.name not in state:
                yield self._emit(
                    Violation(
                        "structure",
                        scheme.name,
                        scheme.name,
                        "state has no relation for this scheme",
                        rule=rule,
                    )
                )
                continue
            rel = state[scheme.name]
            if set(rel.attribute_names) != set(scheme.attribute_names):
                yield self._emit(
                    Violation(
                        "structure",
                        scheme.name,
                        scheme.name,
                        f"relation attributes {sorted(rel.attribute_names)} do "
                        f"not match scheme attributes "
                        f"{sorted(scheme.attribute_names)}",
                        rule=rule,
                    )
                )

    def violations(self, state: DatabaseState) -> list[Violation]:
        """All violations, as a list."""
        return list(self.iter_violations(state))

    def is_consistent(self, state: DatabaseState) -> bool:
        """True iff ``state`` satisfies every constraint of the schema."""
        return next(self.iter_violations(state), None) is None


def is_consistent(state: DatabaseState, schema: RelationalSchema) -> bool:
    """Module-level convenience wrapper over :class:`ConsistencyChecker`."""
    return ConsistencyChecker(schema).is_consistent(state)
