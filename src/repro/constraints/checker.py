"""Database-state consistency checking.

A state ``r`` of a schema ``RS = (R, F u I u N)`` is *consistent* iff it
satisfies every dependency and constraint of the schema (Section 2).  The
checker evaluates all of them and reports structured violations; schema
transformations (``Merge``/``Remove``), the information-capacity verifier,
and the storage engine all share this one notion of consistency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.constraints.functional import KeyDependency
from repro.relational.schema import RelationalSchema
from repro.relational.state import DatabaseState


@dataclass(frozen=True)
class Violation:
    """One constraint violation: which constraint, where, and why."""

    kind: str
    scheme_name: str
    constraint: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.constraint}: {self.detail}"


class ConsistencyChecker:
    """Evaluates database states against one relational schema."""

    def __init__(self, schema: RelationalSchema):
        self.schema = schema
        # Key dependencies implied by the schemes' candidate keys are always
        # in force, even when not listed in F explicitly.
        self._implicit_keys: list[KeyDependency] = []
        declared = {
            (fd.scheme_name, fd.lhs, fd.rhs) for fd in schema.fds
        }
        for scheme in schema.schemes:
            for key in sorted(scheme.candidate_keys, key=lambda k: [a.name for a in k]):
                dep = KeyDependency(
                    scheme.name,
                    frozenset(a.name for a in key),
                    frozenset(scheme.attribute_names),
                )
                if (dep.scheme_name, dep.lhs, dep.rhs) not in declared:
                    self._implicit_keys.append(dep)

    def iter_violations(self, state: DatabaseState) -> Iterator[Violation]:
        """Yield every violation of the schema's constraints by ``state``."""
        yield from self._structural_violations(state)
        for fd in list(self.schema.fds) + self._implicit_keys:
            if fd.scheme_name not in state:
                continue
            if not fd.is_satisfied_by(state[fd.scheme_name]):
                yield Violation(
                    "key-dependency",
                    fd.scheme_name,
                    str(fd),
                    "two tuples agree on a total left-hand side but differ "
                    "on the right-hand side",
                )
        for ind in self.schema.inds:
            if ind.lhs_scheme not in state or ind.rhs_scheme not in state:
                continue
            if not ind.is_satisfied_by(state):
                yield Violation(
                    "inclusion-dependency",
                    ind.lhs_scheme,
                    str(ind),
                    "total projection of the left side is not contained in "
                    "the total projection of the right side",
                )
        for nc in self.schema.null_constraints:
            if nc.scheme_name not in state:
                continue
            for t in state[nc.scheme_name]:
                if not nc.holds_for(t):
                    yield Violation(
                        "null-constraint",
                        nc.scheme_name,
                        str(nc),
                        f"violated by tuple {t!r}",
                    )
                    break

    def _structural_violations(self, state: DatabaseState) -> Iterator[Violation]:
        for scheme in self.schema.schemes:
            if scheme.name not in state:
                yield Violation(
                    "structure",
                    scheme.name,
                    scheme.name,
                    "state has no relation for this scheme",
                )
                continue
            rel = state[scheme.name]
            if set(rel.attribute_names) != set(scheme.attribute_names):
                yield Violation(
                    "structure",
                    scheme.name,
                    scheme.name,
                    f"relation attributes {sorted(rel.attribute_names)} do "
                    f"not match scheme attributes "
                    f"{sorted(scheme.attribute_names)}",
                )

    def violations(self, state: DatabaseState) -> list[Violation]:
        """All violations, as a list."""
        return list(self.iter_violations(state))

    def is_consistent(self, state: DatabaseState) -> bool:
        """True iff ``state`` satisfies every constraint of the schema."""
        return next(self.iter_violations(state), None) is None


def is_consistent(state: DatabaseState, schema: RelationalSchema) -> bool:
    """Module-level convenience wrapper over :class:`ConsistencyChecker`."""
    return ConsistencyChecker(schema).is_consistent(state)
