"""Constraint-set minimization.

Merging can leave schemas with redundant constraints (the paper removes
the grossly redundant ones in steps 2 and 4(c) of Definition 4.1 and
argues the rest are implied).  This module removes *implied* constraints
using the Section 3 inference machinery:

* a null-existence constraint implied by the remaining null-existence
  constraints (FD-style axioms) is dropped;
* a total-equality constraint implied by the equality closure of the
  remaining total-equality constraints is dropped;
* an inclusion dependency implied by transitivity through other
  inclusion dependencies (projection-compatible chains) is dropped.

Minimization never changes the set of consistent states -- the property
tests check exactly that.
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints.inclusion import InclusionDependency
from repro.constraints.inference import (
    implies_null_existence,
    implies_total_equality,
)
from repro.constraints.nulls import (
    NullConstraint,
    NullExistenceConstraint,
    TotalEqualityConstraint,
)
from repro.relational.schema import RelationalSchema


def minimize_null_constraints(
    constraints: Sequence[NullConstraint],
) -> tuple[NullConstraint, ...]:
    """Drop implied null-existence and total-equality constraints.

    Part-null constraints are kept verbatim (they do not interact with
    the other classes -- Section 3).  Greedy single-pass elimination in
    deterministic order; the result implies the input.
    """
    existence = [
        c for c in constraints if isinstance(c, NullExistenceConstraint)
    ]
    equality = [
        c for c in constraints if isinstance(c, TotalEqualityConstraint)
    ]
    other = [
        c
        for c in constraints
        if not isinstance(
            c, (NullExistenceConstraint, TotalEqualityConstraint)
        )
    ]

    kept_existence = list(dict.fromkeys(existence))
    changed = True
    while changed:
        changed = False
        for candidate in list(kept_existence):
            rest = [c for c in kept_existence if c is not candidate]
            if candidate.rhs <= candidate.lhs or implies_null_existence(
                rest, candidate
            ):
                kept_existence = rest
                changed = True
                break

    kept_equality = list(dict.fromkeys(equality))
    changed = True
    while changed:
        changed = False
        for candidate in list(kept_equality):
            rest = [c for c in kept_equality if c is not candidate]
            trivial = candidate.lhs == candidate.rhs
            if trivial or implies_total_equality(rest, candidate):
                kept_equality = rest
                changed = True
                break

    ordered: list[NullConstraint] = []
    for c in constraints:
        if c in ordered:
            continue
        if c in kept_existence or c in kept_equality or c in other:
            ordered.append(c)
    return tuple(ordered)


def _ind_implied(
    candidate: InclusionDependency, rest: Sequence[InclusionDependency]
) -> bool:
    """Is ``candidate`` implied by a transitive chain through ``rest``?

    Uses the projection-free fragment sufficient for key-based chains:
    ``R[X] <= S[Y]`` and ``S[Y] <= T[Z]`` imply ``R[X] <= T[Z]``.
    """
    frontier = {(candidate.lhs_scheme, tuple(candidate.lhs_attrs))}
    seen = set(frontier)
    while frontier:
        next_frontier = set()
        for scheme, attrs in frontier:
            for ind in rest:
                if ind.lhs_scheme == scheme and tuple(ind.lhs_attrs) == attrs:
                    target = (ind.rhs_scheme, tuple(ind.rhs_attrs))
                    if target == (
                        candidate.rhs_scheme,
                        tuple(candidate.rhs_attrs),
                    ):
                        return True
                    if target not in seen:
                        seen.add(target)
                        next_frontier.add(target)
        frontier = next_frontier
    return False


def minimize_inds(
    inds: Sequence[InclusionDependency],
) -> tuple[InclusionDependency, ...]:
    """Drop inclusion dependencies implied by transitive chains (and
    trivial self-dependencies)."""
    kept = list(dict.fromkeys(inds))
    changed = True
    while changed:
        changed = False
        for candidate in list(kept):
            if (
                candidate.lhs_scheme == candidate.rhs_scheme
                and candidate.lhs_attrs == candidate.rhs_attrs
            ):
                kept = [c for c in kept if c is not candidate]
                changed = True
                break
            rest = [c for c in kept if c is not candidate]
            if _ind_implied(candidate, rest):
                kept = rest
                changed = True
                break
    return tuple(kept)


def minimize_schema(schema: RelationalSchema) -> RelationalSchema:
    """A schema with implied constraints removed (same consistent states)."""
    return schema.with_constraints(
        inds=minimize_inds(schema.inds),
        null_constraints=minimize_null_constraints(schema.null_constraints),
    )
