"""EER schema well-formedness.

The translation of Section 5.2 assumes well-formed EER schemas; this
module checks the structural rules and raises :class:`EERValidationError`
with every problem found.
"""

from __future__ import annotations

from repro.eer.model import (
    EERSchema,
    EntitySet,
    RelationshipSet,
    WeakEntitySet,
)


class EERValidationError(ValueError):
    """Raised when an EER schema is not well-formed; carries all
    problems found."""

    def __init__(self, problems: list[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


def _check_generalizations(schema: EERSchema, problems: list[str]) -> None:
    for g in schema.generalizations:
        if not schema.has_object_set(g.generic):
            problems.append(f"generalization generic {g.generic!r} undefined")
            continue
        if isinstance(schema.object_set(g.generic), RelationshipSet):
            problems.append(
                f"generalization generic {g.generic!r} must be an entity-set"
            )
        for spec_name in g.specializations:
            if not schema.has_object_set(spec_name):
                problems.append(f"specialization {spec_name!r} undefined")
                continue
            spec = schema.object_set(spec_name)
            if not isinstance(spec, EntitySet) or isinstance(spec, WeakEntitySet):
                problems.append(
                    f"specialization {spec_name!r} must be a plain entity-set"
                )
                continue
            if spec.identifier:
                problems.append(
                    f"specialization {spec_name!r} must inherit its "
                    "identifier (declared one of its own)"
                )
    # Acyclicity of the ISA graph.
    for entity in schema.entity_sets():
        seen = set()
        current: str | None = entity.name
        while current is not None:
            if current in seen:
                problems.append(
                    f"generalization cycle through {current!r}"
                )
                break
            seen.add(current)
            current = schema.generic_of(current)
    # Single direct generic per specialization.
    for entity in schema.entity_sets():
        generics = schema.generics_of(entity.name)
        if len(generics) > 1:
            problems.append(
                f"{entity.name!r} has multiple direct generics "
                f"{sorted(generics)}; the translation requires a single "
                "inheritance path"
            )


def _check_entities(schema: EERSchema, problems: list[str]) -> None:
    for entity in schema.entity_sets():
        if schema.is_specialization(entity.name):
            continue
        if not entity.identifier:
            problems.append(
                f"root entity-set {entity.name!r} needs an identifier"
            )
            continue
        for attr_name in entity.identifier:
            if not entity.attribute(attr_name).required:
                problems.append(
                    f"{entity.name!r}: identifier attribute {attr_name!r} "
                    "cannot allow nulls"
                )


def _check_weak_entities(schema: EERSchema, problems: list[str]) -> None:
    for weak in schema.weak_entity_sets():
        if not schema.has_object_set(weak.owner):
            problems.append(
                f"weak entity-set {weak.name!r} owner {weak.owner!r} undefined"
            )
            continue
        owner = schema.object_set(weak.owner)
        if isinstance(owner, RelationshipSet):
            problems.append(
                f"weak entity-set {weak.name!r} must be owned by an entity-set"
            )
        if not weak.partial_identifier:
            problems.append(
                f"weak entity-set {weak.name!r} needs a partial identifier"
            )


def _check_relationships(schema: EERSchema, problems: list[str]) -> None:
    for rel in schema.relationship_sets():
        seen_roles = set()
        for p in rel.participants:
            if not schema.has_object_set(p.object_set):
                problems.append(
                    f"{rel.name!r}: participant {p.object_set!r} undefined"
                )
            handle = (p.object_set, p.role)
            if handle in seen_roles:
                problems.append(
                    f"{rel.name!r}: participant {p.object_set!r} appears "
                    "twice without distinguishing roles"
                )
            seen_roles.add(handle)
        if not rel.many_participants():
            problems.append(
                f"{rel.name!r}: at least one participant must have MANY "
                "cardinality (its key identifies the relationship)"
            )


def validate_eer_schema(schema: EERSchema) -> None:
    """Raise :class:`EERValidationError` if the schema is not well-formed."""
    problems: list[str] = []
    _check_generalizations(schema, problems)
    _check_entities(schema, problems)
    _check_weak_entities(schema, problems)
    _check_relationships(schema, problems)
    if problems:
        raise EERValidationError(problems)
