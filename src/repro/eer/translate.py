"""EER -> relational translation (Markowitz-Shoshani [11]).

Every object-set becomes one relation-scheme; the output schema is in
BCNF and consists of key dependencies, referential integrity constraints
and nulls-not-allowed constraints -- the exact class the merging
technique takes as input (Section 5.2: "if ... every relation-scheme
represents a single EER object-set, then the set of null constraints
consists only of nulls-not-allowed constraints involving primary-keys and
foreign-keys").

Attribute naming reproduces the paper's figures.  Every object-set gets a
prefix (its abbreviation); each primary-key attribute additionally
carries a *reference label*, the suffix a referencing scheme uses:

* a native entity attribute ``NR`` of ``COURSE`` (abbrev ``C``) is named
  ``C.NR`` and referenced as ``C.NR`` -- so ``OFFER`` names its foreign
  key ``O.C.NR``;
* a specialization inherits its generic's key under its own prefix:
  ``FACULTY`` (abbrev ``F``) inherits ``P.SSN`` as ``F.SSN`` and is
  referenced as ``F.SSN`` -- so ``TEACH`` names its foreign key
  ``T.F.SSN``;
* a relationship-set's key keeps the *referenced* label: ``TEACH``
  references ``OFFER``'s key ``O.C.NR`` (label ``C.NR``) as ``T.C.NR``.

Applying this to the Figure 7 EER schema yields exactly the Figure 3
relational schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import NullConstraint, nulls_not_allowed
from repro.eer.model import (
    EERSchema,
    EntitySet,
    ObjectSet,
    Participation,
    RelationshipSet,
    WeakEntitySet,
)
from repro.eer.validate import validate_eer_schema
from repro.relational.attributes import Attribute
from repro.relational.schema import RelationScheme, RelationalSchema


class TranslationError(ValueError):
    """Raised when an EER schema cannot be translated (e.g. ambiguous
    attribute naming that needs participant roles)."""


@dataclass
class _TranslatedSet:
    """Intermediate per-object-set translation state."""

    scheme: RelationScheme
    #: Reference label per primary-key attribute name (see module doc).
    reference_labels: dict[str, str]
    #: Relational name of each EER attribute of this object-set.
    eer_attr_names: dict[str, str]
    inds: list[InclusionDependency] = field(default_factory=list)
    not_null: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class Translation:
    """The result of :func:`translate_eer`.

    ``schema`` is the relational schema; the mapping fields let callers
    (the SDT tool, the Figure 8 classifiers, state generators) navigate
    between EER and relational names.
    """

    source: EERSchema
    schema: RelationalSchema
    #: EER object-set name -> relation-scheme name (identical by
    #: construction, kept explicit for downstream code).
    scheme_names: dict[str, str]
    #: (object-set name, EER attribute name) -> relational attribute name.
    attribute_names: dict[tuple[str, str], str]
    #: relationship name -> participant handle -> foreign-key attribute
    #: names (handle is ``object_set`` or ``object_set:role``).
    foreign_keys: dict[str, dict[str, tuple[str, ...]]]

    def scheme_of(self, object_set: str) -> RelationScheme:
        """The relation-scheme an object-set translated to."""
        return self.schema.scheme(self.scheme_names[object_set])


class _Translator:
    def __init__(self, eer: EERSchema):
        self.eer = eer
        self.abbrevs = self._assign_abbrevs()
        self.translated: dict[str, _TranslatedSet] = {}
        self.foreign_keys: dict[str, dict[str, tuple[str, ...]]] = {}

    # -- abbreviations ----------------------------------------------------

    def _assign_abbrevs(self) -> dict[str, str]:
        taken: set[str] = set()
        abbrevs: dict[str, str] = {}
        for obj in self.eer.object_sets:
            if obj.abbrev:
                if obj.abbrev in taken:
                    raise TranslationError(
                        f"duplicate abbreviation {obj.abbrev!r}"
                    )
                abbrevs[obj.name] = obj.abbrev
                taken.add(obj.abbrev)
        for obj in self.eer.object_sets:
            if obj.name in abbrevs:
                continue
            base = obj.name.upper()
            candidate = base[0]
            length = 1
            while candidate in taken and length < len(base):
                length += 1
                candidate = base[:length]
            suffix = 1
            while candidate in taken:
                candidate = base[0] + str(suffix)
                suffix += 1
            abbrevs[obj.name] = candidate
            taken.add(candidate)
        return abbrevs

    # -- per-object-set translation -----------------------------------------

    def translated_set(self, name: str) -> _TranslatedSet:
        """Translate (and cache) one object-set, recursing into its dependencies."""
        if name not in self.translated:
            obj = self.eer.object_set(name)
            if isinstance(obj, WeakEntitySet):
                self.translated[name] = self._translate_weak(obj)
            elif isinstance(obj, RelationshipSet):
                self.translated[name] = self._translate_relationship(obj)
            elif isinstance(obj, EntitySet):
                self.translated[name] = self._translate_entity(obj)
            else:  # pragma: no cover - model has no other kinds
                raise TranslationError(f"unknown object-set kind: {obj!r}")
        return self.translated[name]

    def _own_attributes(
        self, obj: ObjectSet, skip: Iterable[str] = ()
    ) -> tuple[list[Attribute], dict[str, str], list[str]]:
        """Translate an object-set's own (non-inherited) attributes."""
        abbrev = self.abbrevs[obj.name]
        skipped = set(skip)
        attrs: list[Attribute] = []
        names: dict[str, str] = {}
        not_null: list[str] = []
        for eer_attr in obj.attributes:
            if eer_attr.name in skipped:
                continue
            full = f"{abbrev}.{eer_attr.name}"
            attrs.append(Attribute(full, eer_attr.domain))
            names[eer_attr.name] = full
            if eer_attr.required:
                not_null.append(full)
        return attrs, names, not_null

    def _translate_entity(self, obj: EntitySet) -> _TranslatedSet:
        abbrev = self.abbrevs[obj.name]
        generic = self.eer.generic_of(obj.name)
        inds: list[InclusionDependency] = []
        labels: dict[str, str] = {}

        if generic is None:
            key_attrs = []
            for id_name in obj.identifier:
                eer_attr = obj.attribute(id_name)
                full = f"{abbrev}.{id_name}"
                key_attrs.append(Attribute(full, eer_attr.domain))
                labels[full] = full
            own_skip = set(obj.identifier)
        else:
            parent = self.translated_set(generic)
            parent_abbrev = self.abbrevs[generic]
            key_attrs = []
            for p_attr in parent.scheme.primary_key:
                tail = p_attr.name
                prefix = parent_abbrev + "."
                if tail.startswith(prefix):
                    tail = tail[len(prefix):]
                full = f"{abbrev}.{tail}"
                key_attrs.append(Attribute(full, p_attr.domain))
                labels[full] = full
            inds.append(
                InclusionDependency(
                    obj.name,
                    tuple(a.name for a in key_attrs),
                    generic,
                    parent.scheme.key_names,
                )
            )
            own_skip = set()

        own, names, own_not_null = self._own_attributes(obj, skip=own_skip)
        for id_name in obj.identifier:
            names[id_name] = f"{abbrev}.{id_name}"
        scheme = RelationScheme(
            obj.name, tuple(key_attrs) + tuple(own), tuple(key_attrs)
        )
        not_null = [a.name for a in key_attrs] + own_not_null
        return _TranslatedSet(scheme, labels, names, inds, not_null)

    def _translate_weak(self, obj: WeakEntitySet) -> _TranslatedSet:
        abbrev = self.abbrevs[obj.name]
        owner = self.translated_set(obj.owner)
        inds: list[InclusionDependency] = []
        labels: dict[str, str] = {}

        fk_attrs = []
        for o_attr in owner.scheme.primary_key:
            label = owner.reference_labels[o_attr.name]
            full = f"{abbrev}.{label}"
            fk_attrs.append(Attribute(full, o_attr.domain))
            labels[full] = full
        inds.append(
            InclusionDependency(
                obj.name,
                tuple(a.name for a in fk_attrs),
                obj.owner,
                owner.scheme.key_names,
            )
        )
        partial_attrs = []
        for id_name in obj.partial_identifier:
            eer_attr = obj.attribute(id_name)
            full = f"{abbrev}.{id_name}"
            partial_attrs.append(Attribute(full, eer_attr.domain))
            labels[full] = full
        own, names, own_not_null = self._own_attributes(
            obj, skip=set(obj.partial_identifier)
        )
        for id_name in obj.partial_identifier:
            names[id_name] = f"{abbrev}.{id_name}"
        key = tuple(fk_attrs) + tuple(partial_attrs)
        scheme = RelationScheme(obj.name, key + tuple(own), key)
        not_null = [a.name for a in key] + own_not_null
        return _TranslatedSet(scheme, labels, names, inds, not_null)

    def _participant_handle(self, p: Participation) -> str:
        return f"{p.object_set}:{p.role}" if p.role else p.object_set

    def _translate_relationship(self, obj: RelationshipSet) -> _TranslatedSet:
        abbrev = self.abbrevs[obj.name]
        inds: list[InclusionDependency] = []
        labels: dict[str, str] = {}
        groups: dict[str, tuple[str, ...]] = {}
        all_attrs: list[Attribute] = []
        key_attrs: list[Attribute] = []
        not_null: list[str] = []

        for p in obj.participants:
            target = self.translated_set(p.object_set)
            group = []
            for t_attr in target.scheme.primary_key:
                label = target.reference_labels[t_attr.name]
                middle = f"{p.role}.{label}" if p.role else label
                full = f"{abbrev}.{middle}"
                attr = Attribute(full, t_attr.domain)
                group.append(attr)
                labels[full] = label if not p.role else f"{p.role}.{label}"
            names = tuple(a.name for a in group)
            if any(any(a.name == g.name for g in all_attrs) for a in group):
                raise TranslationError(
                    f"{obj.name}: participants produce clashing attribute "
                    "names; add distinguishing roles"
                )
            all_attrs.extend(group)
            not_null.extend(names)
            groups[self._participant_handle(p)] = names
            inds.append(
                InclusionDependency(
                    obj.name, names, p.object_set, target.scheme.key_names
                )
            )
            if p.cardinality.value == "many":
                key_attrs.extend(group)

        own, names_map, own_not_null = self._own_attributes(obj)
        scheme = RelationScheme(
            obj.name, tuple(all_attrs) + tuple(own), tuple(key_attrs)
        )
        self.foreign_keys[obj.name] = groups
        not_null = list(dict.fromkeys(not_null)) + own_not_null
        return _TranslatedSet(scheme, labels, names_map, inds, not_null)

    # -- assembly -----------------------------------------------------------

    def run(self) -> Translation:
        """Assemble the full relational schema and mapping registries."""
        ordered = [o.name for o in self.eer.object_sets]
        for name in ordered:
            self.translated_set(name)
        schemes = tuple(self.translated[n].scheme for n in ordered)
        inds: list[InclusionDependency] = []
        null_constraints: list[NullConstraint] = []
        attribute_names: dict[tuple[str, str], str] = {}
        for name in ordered:
            t = self.translated[name]
            inds.extend(t.inds)
            if t.not_null:
                null_constraints.append(nulls_not_allowed(name, t.not_null))
            for eer_name, rel_name in t.eer_attr_names.items():
                attribute_names[(name, eer_name)] = rel_name
        schema = RelationalSchema(
            schemes=schemes,
            inds=tuple(inds),
            null_constraints=tuple(null_constraints),
        )
        return Translation(
            source=self.eer,
            schema=schema,
            scheme_names={n: n for n in ordered},
            attribute_names=attribute_names,
            foreign_keys=self.foreign_keys,
        )


def translate_eer(eer: EERSchema) -> Translation:
    """Translate a (validated) EER schema into the paper's relational
    schema class; reproduces Figure 3 from Figure 7."""
    validate_eer_schema(eer)
    return _Translator(eer).run()
