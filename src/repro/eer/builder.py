"""A fluent builder for EER schemas.

Constructing :class:`~repro.eer.model.EERSchema` objects directly is
verbose (every attribute needs a :class:`Domain`); the builder keeps
designs as readable as the paper's figures::

    from repro.eer.builder import EERBuilder, optional

    uni = (
        EERBuilder("university")
        .entity("PERSON", identifier={"SSN": "ssn"})
        .entity("COURSE", identifier={"NR": "course-nr"})
        .entity("DEPARTMENT", identifier={"NAME": "dept-name"})
        .specialization("FACULTY", generic="PERSON")
        .specialization("STUDENT", generic="PERSON")
        .relationship("OFFER", many="COURSE", one="DEPARTMENT")
        .relationship("TEACH", many="OFFER", one="FACULTY")
        .relationship("ASSIST", many="OFFER", one="STUDENT")
        .build()
    )

``build()`` validates the schema, so builder output is always
translatable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.eer.model import (
    Cardinality,
    EERAttribute,
    EERSchema,
    EntitySet,
    Generalization,
    ObjectSet,
    Participation,
    RelationshipSet,
    WeakEntitySet,
)
from repro.eer.validate import validate_eer_schema
from repro.relational.attributes import Domain


@dataclass(frozen=True)
class _OptionalDomain:
    """Marker wrapper produced by :func:`optional`."""

    domain: Domain


def optional(domain: "str | Domain") -> _OptionalDomain:
    """Mark an attribute as nulls-allowed (the figures' starred
    attributes): ``attrs={"DATE": optional("date")}``."""
    return _OptionalDomain(_as_domain(domain))


def _as_domain(value: "str | Domain") -> Domain:
    return value if isinstance(value, Domain) else Domain(value)


def _as_attributes(
    spec: "Mapping[str, str | Domain | _OptionalDomain] | None",
) -> tuple[EERAttribute, ...]:
    if not spec:
        return ()
    out = []
    for name, domain in spec.items():
        if isinstance(domain, _OptionalDomain):
            out.append(EERAttribute(name, domain.domain, required=False))
        else:
            out.append(EERAttribute(name, _as_domain(domain)))
    return tuple(out)


class EERBuilder:
    """Accumulates object-sets and generalizations; ``build()`` validates."""

    def __init__(self, name: str):
        self._name = name
        self._object_sets: list[ObjectSet] = []
        self._generalizations: dict[str, list[str]] = {}

    # -- object-sets ------------------------------------------------------

    def entity(
        self,
        name: str,
        identifier: Mapping[str, "str | Domain"],
        attrs: "Mapping[str, str | Domain | _OptionalDomain] | None" = None,
        abbrev: str | None = None,
    ) -> "EERBuilder":
        """Add a root entity-set; ``identifier`` maps identifying
        attribute names to domains."""
        id_attrs = tuple(
            EERAttribute(n, _as_domain(d)) for n, d in identifier.items()
        )
        self._object_sets.append(
            EntitySet(
                name,
                id_attrs + _as_attributes(attrs),
                abbrev=abbrev,
                identifier=tuple(identifier),
            )
        )
        return self

    def specialization(
        self,
        name: str,
        generic: str,
        attrs: "Mapping[str, str | Domain | _OptionalDomain] | None" = None,
        abbrev: str | None = None,
    ) -> "EERBuilder":
        """Add a specialization entity-set under ``generic`` (ISA)."""
        self._object_sets.append(
            EntitySet(name, _as_attributes(attrs), abbrev=abbrev)
        )
        self._generalizations.setdefault(generic, []).append(name)
        return self

    def weak_entity(
        self,
        name: str,
        owner: str,
        partial_identifier: Mapping[str, "str | Domain"],
        attrs: "Mapping[str, str | Domain | _OptionalDomain] | None" = None,
        abbrev: str | None = None,
    ) -> "EERBuilder":
        """Add a weak entity-set identified through ``owner``."""
        id_attrs = tuple(
            EERAttribute(n, _as_domain(d))
            for n, d in partial_identifier.items()
        )
        self._object_sets.append(
            WeakEntitySet(
                name,
                id_attrs + _as_attributes(attrs),
                abbrev=abbrev,
                owner=owner,
                partial_identifier=tuple(partial_identifier),
            )
        )
        return self

    def relationship(
        self,
        name: str,
        many: "str | Sequence[str]",
        one: "str | Sequence[str]" = (),
        attrs: "Mapping[str, str | Domain | _OptionalDomain] | None" = None,
        abbrev: str | None = None,
    ) -> "EERBuilder":
        """Add a relationship-set.

        ``many``/``one`` name the participants by cardinality (strings or
        sequences).  An object-set participating twice (e.g. a
        self-relationship) needs role labels: write ``"EMP:REPORT"``
        for participant EMP under role REPORT.
        """

        def participation(spec: str, cardinality: Cardinality) -> Participation:
            object_set, _, role = spec.partition(":")
            return Participation(object_set, cardinality, role or None)

        many_list = [many] if isinstance(many, str) else list(many)
        one_list = [one] if isinstance(one, str) else list(one)
        participants = tuple(
            participation(p, Cardinality.MANY) for p in many_list
        ) + tuple(participation(p, Cardinality.ONE) for p in one_list)
        self._object_sets.append(
            RelationshipSet(
                name,
                _as_attributes(attrs),
                abbrev=abbrev,
                participants=participants,
            )
        )
        return self

    # -- output ---------------------------------------------------------------

    def build(self) -> EERSchema:
        """The validated EER schema."""
        schema = EERSchema(
            name=self._name,
            object_sets=tuple(self._object_sets),
            generalizations=tuple(
                Generalization(generic, tuple(specs))
                for generic, specs in self._generalizations.items()
            ),
        )
        validate_eer_schema(schema)
        return schema
