"""The Extended Entity-Relationship (EER) data model.

The flavour implemented here follows Markowitz-Shoshani [11], which the
paper uses as the source of its relational schema class:

* **entity-sets** with identifier attributes;
* **weak entity-sets** identified through an owner entity-set;
* **relationship-sets** over two or more *object-sets* -- entity-sets or
  other relationship-sets (Figure 7 needs the latter: TEACH and ASSIST
  are relationship-sets involving the relationship-set OFFER);
* **generalizations** (ISA): specialization entity-sets inherit their
  generic's identifier;
* attributes carrying a null annotation (``required``), which the
  translation turns into nulls-not-allowed constraints.

Cardinalities are per-participation: a participant marked ``MANY``
contributes its key to the relationship's identifier (each of its
instances takes part at most once -- the relationship is functional from
the MANY side to the ONE sides).  ``OFFER`` between ``COURSE`` (many) and
``DEPARTMENT`` (one) means every course is offered by at most one
department.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.relational.attributes import Domain


class Cardinality(enum.Enum):
    """How an object-set participates in a relationship-set."""

    ONE = "one"
    MANY = "many"


@dataclass(frozen=True)
class EERAttribute:
    """An EER attribute with a null-value annotation.

    ``required=False`` corresponds to the starred (nulls-allowed)
    attributes of the paper's figures, e.g. ``DATE`` of ``WORKS`` in
    Figure 1.
    """

    name: str
    domain: Domain
    required: bool = True

    def __str__(self) -> str:
        return self.name if self.required else f"{self.name}*"


@dataclass(frozen=True)
class ObjectSet:
    """Common base of entity-sets, weak entity-sets and relationship-sets.

    ``abbrev`` is the attribute-name prefix the relational translation
    uses (``COURSE`` -> ``C`` gives ``C.NR``); when omitted, the
    translator derives one.
    """

    name: str
    attributes: tuple[EERAttribute, ...] = ()
    abbrev: str | None = None

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate attribute names")

    def attribute(self, name: str) -> EERAttribute:
        """Look up one of this object-set's attributes by name."""
        for a in self.attributes:
            if a.name == name:
                return a
        raise KeyError(f"{self.name} has no attribute {name!r}")


@dataclass(frozen=True)
class EntitySet(ObjectSet):
    """An entity-set.

    ``identifier`` names the identifying attributes.  A specialization
    entity-set (one appearing in a :class:`Generalization`) leaves the
    identifier empty and inherits its generic's.
    """

    identifier: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        own = {a.name for a in self.attributes}
        missing = set(self.identifier) - own
        if missing:
            raise ValueError(
                f"{self.name}: identifier attributes {sorted(missing)} are "
                "not declared attributes"
            )


@dataclass(frozen=True)
class WeakEntitySet(ObjectSet):
    """A weak entity-set, identified through ``owner`` plus a partial
    identifier of its own."""

    owner: str = ""
    partial_identifier: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.owner:
            raise ValueError(f"{self.name}: weak entity-set needs an owner")
        own = {a.name for a in self.attributes}
        missing = set(self.partial_identifier) - own
        if missing:
            raise ValueError(
                f"{self.name}: partial identifier attributes "
                f"{sorted(missing)} are not declared attributes"
            )


@dataclass(frozen=True)
class Participation:
    """One leg of a relationship-set."""

    object_set: str
    cardinality: Cardinality
    role: str | None = None

    def __str__(self) -> str:
        tag = "M" if self.cardinality is Cardinality.MANY else "1"
        role = f" as {self.role}" if self.role else ""
        return f"{self.object_set}({tag}){role}"


@dataclass(frozen=True)
class RelationshipSet(ObjectSet):
    """A relationship-set over two or more object-sets."""

    participants: tuple[Participation, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.participants) < 2:
            raise ValueError(
                f"{self.name}: relationship-sets need at least two "
                "participants"
            )

    def many_participants(self) -> tuple[Participation, ...]:
        """Participations with MANY cardinality (they form the key)."""
        return tuple(
            p
            for p in self.participants
            if p.cardinality is Cardinality.MANY
        )

    def one_participants(self) -> tuple[Participation, ...]:
        """Participations with ONE cardinality."""
        return tuple(
            p for p in self.participants if p.cardinality is Cardinality.ONE
        )

    def is_binary_many_to_one(self) -> bool:
        """The structure ER methodologies single out for folding
        (Section 1): binary, one MANY leg, one ONE leg."""
        return (
            len(self.participants) == 2
            and len(self.many_participants()) == 1
            and len(self.one_participants()) == 1
        )


@dataclass(frozen=True)
class Generalization:
    """An ISA construct: ``specializations`` are subsets of ``generic``."""

    generic: str
    specializations: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.specializations:
            raise ValueError("generalization needs at least one specialization")
        if self.generic in self.specializations:
            raise ValueError("an object-set cannot specialize itself")


@dataclass(frozen=True)
class EERSchema:
    """An EER schema: object-sets plus generalizations."""

    name: str
    object_sets: tuple[ObjectSet, ...]
    generalizations: tuple[Generalization, ...] = field(default=())

    def __post_init__(self) -> None:
        names = [o.name for o in self.object_sets]
        if len(set(names)) != len(names):
            raise ValueError("object-set names must be unique")

    # -- lookups ---------------------------------------------------------

    def object_set(self, name: str) -> ObjectSet:
        """Look up an object-set by name."""
        for o in self.object_sets:
            if o.name == name:
                return o
        raise KeyError(f"no object-set named {name!r}")

    def has_object_set(self, name: str) -> bool:
        """Whether an object-set with this name exists."""
        return any(o.name == name for o in self.object_sets)

    def entity_sets(self) -> tuple[EntitySet, ...]:
        """All plain (non-weak) entity-sets."""
        return tuple(
            o
            for o in self.object_sets
            if isinstance(o, EntitySet) and not isinstance(o, WeakEntitySet)
        )

    def weak_entity_sets(self) -> tuple[WeakEntitySet, ...]:
        """All weak entity-sets."""
        return tuple(
            o for o in self.object_sets if isinstance(o, WeakEntitySet)
        )

    def relationship_sets(self) -> tuple[RelationshipSet, ...]:
        """All relationship-sets."""
        return tuple(
            o for o in self.object_sets if isinstance(o, RelationshipSet)
        )

    def generic_of(self, name: str) -> str | None:
        """The direct generic of a specialization entity-set, if any."""
        for g in self.generalizations:
            if name in g.specializations:
                return g.generic
        return None

    def generics_of(self, name: str) -> tuple[str, ...]:
        """All direct generics (multiple inheritance is representable but
        flagged by the validator and by the Figure 8 classifiers)."""
        return tuple(
            g.generic
            for g in self.generalizations
            if name in g.specializations
        )

    def specializations_of(self, name: str) -> tuple[str, ...]:
        """Direct specializations of an entity-set."""
        out: list[str] = []
        for g in self.generalizations:
            if g.generic == name:
                out.extend(g.specializations)
        return tuple(out)

    def is_specialization(self, name: str) -> bool:
        """Whether the named entity-set has a generic."""
        return self.generic_of(name) is not None

    def relationships_involving(self, name: str) -> tuple[RelationshipSet, ...]:
        """Relationship-sets in which the named object-set participates."""
        return tuple(
            r
            for r in self.relationship_sets()
            if any(p.object_set == name for p in r.participants)
        )

    def weak_entities_owned_by(self, name: str) -> tuple[WeakEntitySet, ...]:
        """Weak entity-sets owned by the named entity-set."""
        return tuple(
            w for w in self.weak_entity_sets() if w.owner == name
        )

    def iter_isa_chain(self, name: str) -> Iterator[str]:
        """The chain of generics from ``name`` up to a root entity-set."""
        current: str | None = name
        while current is not None:
            yield current
            current = self.generic_of(current)

    def root_generic(self, name: str) -> str:
        """The top of the ISA chain containing ``name``."""
        *_, last = self.iter_isa_chain(name)
        return last
