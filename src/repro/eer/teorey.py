"""Teorey-Yang-Fry-style baseline translation [14].

ER- and EER-oriented design methodologies "recommend using a single
relation-scheme for representing a binary many-to-one relationship-set
and the entity-set involved in that relationship-set with a many
cardinality" (Section 1).  The paper shows this folding, done naively, is
*inconsistent with the EER semantics*: the Figure 1(iii) schema admits a
WORKS tuple with a non-null assignment DATE for an employee working on no
project, because the methodology emits no null constraints.

This module implements exactly that baseline: start from the
Markowitz-Shoshani translation, then fold each requested binary
many-to-one relationship-set into its many-side entity relation, making
the folded attributes nullable and emitting **no** null-existence
constraints.  The ``fig1`` benchmark contrasts it with the paper's
``Merge`` (which generates the missing ``DATE |-> NR`` constraint) and
demonstrates the anomaly state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.constraints.inclusion import InclusionDependency
from repro.constraints.nulls import NullConstraint, NullExistenceConstraint
from repro.eer.model import EERSchema, EntitySet, RelationshipSet, WeakEntitySet
from repro.eer.translate import Translation, translate_eer
from repro.relational.schema import RelationScheme, RelationalSchema


class TeoreyTranslationError(ValueError):
    """Raised when a requested fold is not applicable."""


@dataclass(frozen=True)
class TeoreyTranslation:
    """Result of the baseline translation.

    ``folded`` maps each folded relationship-set to the entity relation
    that absorbed it.
    """

    source: EERSchema
    schema: RelationalSchema
    folded: dict[str, str]


def _foldable(eer: EERSchema, rel: RelationshipSet) -> str | None:
    """The many-side entity name if ``rel`` can be folded, else ``None``."""
    if not rel.is_binary_many_to_one():
        return None
    many = rel.many_participants()[0].object_set
    many_obj = eer.object_set(many)
    if isinstance(many_obj, (RelationshipSet, WeakEntitySet)):
        return None
    if not isinstance(many_obj, EntitySet):
        return None
    # A relationship that itself participates in another relationship-set
    # cannot be folded away: the other relationship references its key.
    if eer.relationships_involving(rel.name):
        return None
    return many


def translate_teorey(
    eer: EERSchema, fold: Sequence[str] | None = None
) -> TeoreyTranslation:
    """Translate ``eer``, folding binary many-to-one relationship-sets.

    ``fold`` names the relationship-sets to fold (default: every foldable
    one).  Folded foreign keys and relationship attributes become
    nullable columns of the many-side entity relation; *no* null
    constraints tie them together -- that omission is the point of the
    baseline.
    """
    base = translate_eer(eer)
    if fold is None:
        targets = [
            r.name
            for r in eer.relationship_sets()
            if _foldable(eer, r) is not None
        ]
    else:
        targets = list(fold)
        for name in targets:
            obj = eer.object_set(name)
            if not isinstance(obj, RelationshipSet) or _foldable(eer, obj) is None:
                raise TeoreyTranslationError(
                    f"{name!r} is not a foldable binary many-to-one "
                    "relationship-set"
                )

    schema = base.schema
    folded: dict[str, str] = {}
    for rel_name in targets:
        rel = eer.object_set(rel_name)
        assert isinstance(rel, RelationshipSet)
        entity_name = _foldable(eer, rel)
        assert entity_name is not None
        schema = _fold_one(schema, base, rel, entity_name)
        folded[rel_name] = entity_name
    return TeoreyTranslation(eer, schema, folded)


def _fold_one(
    schema: RelationalSchema,
    base: Translation,
    rel: RelationshipSet,
    entity_name: str,
) -> RelationalSchema:
    rel_scheme = schema.scheme(rel.name)
    entity_scheme = schema.scheme(entity_name)
    many = rel.many_participants()[0]
    many_handle = f"{many.object_set}:{many.role}" if many.role else many.object_set
    many_fk = set(base.foreign_keys[rel.name][many_handle])

    # The many-side foreign key duplicates the entity key; only the other
    # columns move over.
    moved = tuple(
        a for a in rel_scheme.attributes if a.name not in many_fk
    )
    new_entity = RelationScheme(
        entity_name,
        entity_scheme.attributes + moved,
        entity_scheme.primary_key,
        entity_scheme.candidate_keys,
    )

    inds: list[InclusionDependency] = []
    for ind in schema.inds:
        if ind.lhs_scheme == rel.name:
            if set(ind.lhs_attrs) <= many_fk:
                continue  # the key-side reference dissolves into identity
            inds.append(
                InclusionDependency(
                    entity_name, ind.lhs_attrs, ind.rhs_scheme, ind.rhs_attrs
                )
            )
        elif ind.rhs_scheme == rel.name:
            raise TeoreyTranslationError(
                f"cannot fold {rel.name!r}: it is referenced by {ind}"
            )
        else:
            inds.append(ind)

    # Null constraints: the relationship's nulls-not-allowed constraint is
    # dropped wholesale -- the folded columns are nullable and the
    # methodology emits nothing to synchronize them (the Figure 1(iii)
    # defect).
    null_constraints: list[NullConstraint] = [
        c for c in schema.null_constraints if c.scheme_name != rel.name
    ]

    return schema.replacing_schemes(
        removed=[rel.name, entity_name],
        added=[new_entity],
        fds=schema.fds,
        inds=inds,
        null_constraints=null_constraints,
    )


def missing_null_constraints(
    teorey: TeoreyTranslation, base: Translation | None = None
) -> tuple[NullExistenceConstraint, ...]:
    """The null-existence constraints the baseline *should* have emitted.

    For every folded relationship, each of its own (nullable) attributes
    must be null whenever the folded foreign key is null -- e.g.
    ``DATE |-> NR`` for Figure 1(iii).  Returned so callers can repair the
    baseline schema and re-check information capacity.
    """
    base = base or translate_eer(teorey.source)
    out: list[NullExistenceConstraint] = []
    for rel_name, entity_name in teorey.folded.items():
        rel = teorey.source.object_set(rel_name)
        assert isinstance(rel, RelationshipSet)
        one = rel.one_participants()[0]
        handle = f"{one.object_set}:{one.role}" if one.role else one.object_set
        fk = frozenset(base.foreign_keys[rel_name][handle])
        for attr in rel.attributes:
            rel_attr = base.attribute_names[(rel_name, attr.name)]
            out.append(
                NullExistenceConstraint(
                    entity_name, frozenset({rel_attr}), fk
                )
            )
        # The foreign key itself must be all-or-nothing when composite.
        if len(fk) > 1:
            for a in sorted(fk):
                out.append(
                    NullExistenceConstraint(entity_name, frozenset({a}), fk)
                )
    return tuple(out)
