"""Extended Entity-Relationship substrate (Sections 1 and 5.2).

The paper's schema class -- relation-schemes, key dependencies,
referential integrity constraints and null constraints -- is exactly the
image of EER schemas under the Markowitz-Shoshani translation [11].  This
package provides:

* :mod:`repro.eer.model` -- entity-sets, weak entity-sets,
  relationship-sets (over entity- *or* relationship-participants, as the
  Figure 7 schema requires), generalizations, and EER attributes with
  null annotations;
* :mod:`repro.eer.validate` -- well-formedness checking;
* :mod:`repro.eer.translate` -- the BCNF-producing translation that
  reproduces Figure 3 from Figure 7;
* :mod:`repro.eer.teorey` -- the Teorey-Yang-Fry-style baseline [14] that
  folds many-to-one relationship-sets into entity relations *without*
  null constraints, exhibiting the Figure 1(iii) anomaly;
* :mod:`repro.eer.patterns` -- the Section 5.2 classifiers for EER
  structures amenable to single-relation representation (Figure 8).
"""

from repro.eer.model import (
    Cardinality,
    EERAttribute,
    EERSchema,
    EntitySet,
    Generalization,
    Participation,
    RelationshipSet,
    WeakEntitySet,
)
from repro.eer.validate import EERValidationError, validate_eer_schema
from repro.eer.translate import Translation, translate_eer
from repro.eer.teorey import translate_teorey
from repro.eer.patterns import AmenableStructure, find_amenable_structures
from repro.eer.builder import EERBuilder, optional

__all__ = [
    "Cardinality",
    "EERAttribute",
    "EERSchema",
    "EntitySet",
    "Generalization",
    "Participation",
    "RelationshipSet",
    "WeakEntitySet",
    "EERValidationError",
    "validate_eer_schema",
    "Translation",
    "translate_eer",
    "translate_teorey",
    "AmenableStructure",
    "find_amenable_structures",
    "EERBuilder",
    "optional",
]
