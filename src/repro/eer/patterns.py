"""EER structures amenable to single-relation representation (Section 5.2,
Figure 8).

Applying ``Merge`` to relational translations of EER schemas shows that a
single relation-scheme can represent multiple object-sets.  Two shapes
arise:

* **generalization hierarchies** -- a generic entity-set with its
  specializations (Figures 8(i)/(iii));
* **relationship stars** -- an object-set with the (chains of) binary
  many-to-one relationship-sets anchored at it with many cardinality
  (Figures 8(ii)/(iv)).

Each structure is *always* mergeable (the anchor is a key-relation by
Proposition 3.1); the interesting question is whether the merged relation
needs general null constraints or -- per the conditions of
Proposition 5.2 restated on the EER level -- only nulls-not-allowed
constraints:

1. specializations with (a) no own specializations and a single direct
   generic, (b) no participation in relationship-sets or weak entity-sets,
   and (c) exactly one own attribute -> NNA only (Figure 8(iii));
2. binary many-to-one relationship-sets that (a) have no attributes,
   (b) are not involved in any other relationship-set, and (c) whose
   one-side entity-sets are not weak and have single-attribute
   identifiers -> NNA only (Figure 8(iv)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eer.model import (
    EERSchema,
    EntitySet,
    RelationshipSet,
    WeakEntitySet,
)


@dataclass(frozen=True)
class AmenableStructure:
    """One group of object-sets representable by a single relation-scheme.

    ``nna_only`` is True when the merged representation needs only
    nulls-not-allowed constraints; otherwise ``reasons`` lists which
    Section 5.2 conditions fail (requiring general null constraints and a
    trigger/rule-capable DBMS).
    """

    kind: str
    anchor: str
    members: tuple[str, ...]
    nna_only: bool
    reasons: tuple[str, ...] = ()

    def __str__(self) -> str:
        tier = "NNA-only" if self.nna_only else "general null constraints"
        return (
            f"{self.kind} at {self.anchor}: "
            f"{{{', '.join(self.members)}}} [{tier}]"
        )


def _isa_subtree(eer: EERSchema, generic: str) -> tuple[str, ...]:
    """All descendants of ``generic`` in the ISA graph, breadth-first."""
    out: list[str] = []
    frontier = [generic]
    while frontier:
        current = frontier.pop(0)
        for spec in eer.specializations_of(current):
            if spec not in out:
                out.append(spec)
                frontier.append(spec)
    return tuple(out)


def classify_generalization(
    eer: EERSchema, generic: str
) -> AmenableStructure | None:
    """Classify the hierarchy rooted at ``generic`` (conditions (1) of
    Section 5.2); ``None`` when there are no specializations.

    The whole ISA subtree is always mergeable into the generic's relation
    (every specialization's key chains into the root per Proposition
    3.1); the conditions decide whether the merged relation needs only
    nulls-not-allowed constraints.
    """
    specs = _isa_subtree(eer, generic)
    if not specs:
        return None
    reasons: list[str] = []
    for spec in specs:
        if eer.specializations_of(spec):
            reasons.append(
                f"{spec} has specializations of its own (condition 1(a))"
            )
        if eer.relationships_involving(spec):
            reasons.append(
                f"{spec} participates in relationship-sets (condition 1(b))"
            )
        if eer.weak_entities_owned_by(spec):
            reasons.append(
                f"{spec} owns weak entity-sets (condition 1(b))"
            )
        own = eer.object_set(spec).attributes
        if len(own) != 1:
            reasons.append(
                f"{spec} has {len(own)} own attributes (condition 1(c) "
                "wants exactly one)"
            )
    return AmenableStructure(
        kind="generalization",
        anchor=generic,
        members=(generic, *specs),
        nna_only=not reasons,
        reasons=tuple(reasons),
    )


def _star_members(eer: EERSchema, anchor: str) -> tuple[str, ...]:
    """Relationship-sets reachable from ``anchor`` through many-side legs
    of binary many-to-one relationship-sets (the EER mirror of the
    ``Refkey*`` chains of Proposition 3.1)."""
    members: list[str] = []
    frontier = [anchor]
    while frontier:
        current = frontier.pop()
        for rel in eer.relationship_sets():
            if rel.name in members or not rel.is_binary_many_to_one():
                continue
            if rel.many_participants()[0].object_set == current:
                members.append(rel.name)
                frontier.append(rel.name)
    return tuple(members)


def classify_relationship_star(
    eer: EERSchema, anchor: str
) -> AmenableStructure | None:
    """Classify the many-to-one star anchored at ``anchor`` (conditions
    (2) of Section 5.2); ``None`` when no relationship-set hangs off it."""
    rels = _star_members(eer, anchor)
    if not rels:
        return None
    reasons: list[str] = []
    for rel_name in rels:
        rel = eer.object_set(rel_name)
        assert isinstance(rel, RelationshipSet)
        if rel.attributes:
            reasons.append(
                f"{rel_name} has attributes (condition 2(a))"
            )
        if eer.relationships_involving(rel_name):
            reasons.append(
                f"{rel_name} is involved in other relationship-sets "
                "(condition 2(b))"
            )
        one_side = rel.one_participants()[0].object_set
        one_obj = eer.object_set(one_side)
        if isinstance(one_obj, WeakEntitySet):
            reasons.append(
                f"{rel_name}'s one-side {one_side} is weak (condition 2(c))"
            )
        elif isinstance(one_obj, EntitySet):
            root = eer.root_generic(one_side)
            root_obj = eer.object_set(root)
            assert isinstance(root_obj, EntitySet)
            if len(root_obj.identifier) != 1:
                reasons.append(
                    f"{rel_name}'s one-side {one_side} has a composite "
                    "identifier (condition 2(c))"
                )
        elif isinstance(one_obj, RelationshipSet):
            one_scheme_key_width = len(
                one_obj.many_participants()
            )
            if one_scheme_key_width != 1:
                reasons.append(
                    f"{rel_name}'s one-side {one_side} has a composite key "
                    "(condition 2(c))"
                )
    return AmenableStructure(
        kind="relationship-star",
        anchor=anchor,
        members=(anchor, *rels),
        nna_only=not reasons,
        reasons=tuple(dict.fromkeys(reasons)),
    )


def find_amenable_structures(eer: EERSchema) -> tuple[AmenableStructure, ...]:
    """All single-relation-representable structures of an EER schema.

    Generalization hierarchies are reported per generic; relationship
    stars per anchor object-set.  Stars strictly contained in another
    reported star are dropped.
    """
    out: list[AmenableStructure] = []
    roots = {
        g.generic
        for g in eer.generalizations
        if not eer.is_specialization(g.generic)
    }
    for generic in roots:
        structure = classify_generalization(eer, generic)
        if structure is not None:
            out.append(structure)
    stars: list[AmenableStructure] = []
    for obj in eer.object_sets:
        structure = classify_relationship_star(eer, obj.name)
        if structure is not None:
            stars.append(structure)
    for star in stars:
        contained = any(
            set(star.members) < set(other.members) for other in stars
        )
        if not contained:
            out.append(star)
    return tuple(sorted(out, key=lambda s: (s.kind, s.anchor)))
