"""repro -- a reproduction of V.M. Markowitz, "A Relation Merging
Technique for Relational Databases" (ICDE 1992, LBL-27842).

The library implements BCNF- and information-capacity-preserving relation
merging for relational schemas consisting of relation-schemes, key
dependencies, referential integrity constraints and null constraints --
plus everything the paper's development rests on: the relational data
model with nulls and outer equi-joins, the five null-constraint classes,
the EER model with its BCNF translation, synthesis normalization, the SDT
schema-definition tool, and a constraint-enforcing storage engine used to
measure the join-reduction claim.

Quick start::

    from repro import merge, remove_all, university_relational

    schema = university_relational()               # Figure 3
    merged = merge(schema, ["COURSE", "OFFER", "TEACH", "ASSIST"])
    simplified = remove_all(merged)                # Figure 6
    print(simplified.schema.describe())

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.relational import (
    NULL,
    Attribute,
    DatabaseState,
    Domain,
    Relation,
    RelationScheme,
    RelationalSchema,
    Tuple,
)
from repro.constraints import (
    ConsistencyChecker,
    FunctionalDependency,
    InclusionDependency,
    KeyDependency,
    NullExistenceConstraint,
    PartNullConstraint,
    TotalEqualityConstraint,
    null_synchronization_set,
    nulls_not_allowed,
)
from repro.core import (
    Merge,
    MergeError,
    MergePlanner,
    MergeResult,
    MergeStrategy,
    Remove,
    find_key_relation,
    prop51_key_based_inds_only,
    prop51_keys_not_null,
    prop52_nulls_not_allowed_only,
    remove_all,
    removable_sets,
    verify_information_capacity,
)
from repro.core.merge import merge
from repro.eer import (
    Cardinality,
    EERAttribute,
    EERBuilder,
    EERSchema,
    EntitySet,
    Generalization,
    Participation,
    RelationshipSet,
    WeakEntitySet,
    find_amenable_structures,
    translate_eer,
    translate_teorey,
)
from repro.ddl import (
    DB2,
    INGRES_63,
    SYBASE_40,
    SchemaDefinitionTool,
    SDTOptions,
    generate_ddl,
)
from repro.engine import Database, QueryEngine
from repro.constraints.minimize import minimize_schema
from repro.io import (
    eer_schema_from_dict,
    eer_schema_to_dict,
    relational_schema_from_dict,
    relational_schema_to_dict,
    state_from_dict,
    state_to_dict,
)
from repro.workloads.university import university_eer, university_relational

__version__ = "1.0.0"

__all__ = [
    "NULL",
    "Attribute",
    "DatabaseState",
    "Domain",
    "Relation",
    "RelationScheme",
    "RelationalSchema",
    "Tuple",
    "ConsistencyChecker",
    "FunctionalDependency",
    "InclusionDependency",
    "KeyDependency",
    "NullExistenceConstraint",
    "PartNullConstraint",
    "TotalEqualityConstraint",
    "null_synchronization_set",
    "nulls_not_allowed",
    "Merge",
    "merge",
    "MergeError",
    "MergePlanner",
    "MergeResult",
    "MergeStrategy",
    "Remove",
    "find_key_relation",
    "prop51_key_based_inds_only",
    "prop51_keys_not_null",
    "prop52_nulls_not_allowed_only",
    "remove_all",
    "removable_sets",
    "verify_information_capacity",
    "Cardinality",
    "EERAttribute",
    "EERBuilder",
    "EERSchema",
    "EntitySet",
    "Generalization",
    "Participation",
    "RelationshipSet",
    "WeakEntitySet",
    "find_amenable_structures",
    "translate_eer",
    "translate_teorey",
    "DB2",
    "INGRES_63",
    "SYBASE_40",
    "SchemaDefinitionTool",
    "SDTOptions",
    "generate_ddl",
    "Database",
    "QueryEngine",
    "minimize_schema",
    "eer_schema_from_dict",
    "eer_schema_to_dict",
    "relational_schema_from_dict",
    "relational_schema_to_dict",
    "state_from_dict",
    "state_to_dict",
    "university_eer",
    "university_relational",
    "__version__",
]
