"""Plain-text rendering of relations and database states.

Used by the examples and handy at the REPL; deterministic row order so
renderings are diffable in tests and docs.
"""

from __future__ import annotations

from repro.relational.relation import Relation
from repro.relational.state import DatabaseState
from repro.relational.tuples import is_null


def format_value(value: object) -> str:
    """One cell: ``NULL`` is rendered as a bare marker, not ``repr``."""
    if is_null(value):
        return "-"
    return str(value)


def format_relation(
    relation: Relation, name: str | None = None, max_rows: int = 20
) -> str:
    """An ASCII table of a relation, truncated past ``max_rows``."""
    headers = list(relation.attribute_names)
    rows = [
        [format_value(v) for v in row] for row in relation.sorted_rows()
    ]
    shown = rows[:max_rows]
    widths = [
        max(len(h), *(len(r[i]) for r in shown), 1) if shown else len(h)
        for i, h in enumerate(headers)
    ]

    def line(cells: list[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if name is not None:
        out.append(f"{name} ({len(relation)} tuple(s))")
    out.append(rule)
    out.append(line(headers))
    out.append(rule)
    for r in shown:
        out.append(line(r))
    if len(rows) > max_rows:
        out.append(f"... {len(rows) - max_rows} more row(s)")
    out.append(rule)
    return "\n".join(out)


def format_state(
    state: DatabaseState, max_rows: int = 10, skip_empty: bool = True
) -> str:
    """Every relation of a state, alphabetically."""
    parts = []
    for name in sorted(state):
        relation = state[name]
        if skip_empty and not len(relation):
            continue
        parts.append(format_relation(relation, name=name, max_rows=max_rows))
    return "\n\n".join(parts) if parts else "(empty state)"
