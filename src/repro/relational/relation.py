"""Relations: finite sets of tuples over a fixed attribute sequence."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.relational.attributes import Attribute, by_name
from repro.relational.tuples import Tuple


class Relation:
    """An immutable relation: a set of :class:`Tuple` over ``attributes``.

    The attribute sequence fixes the relation's *scheme width* and ordering
    (useful for display and for positional constructors); tuple membership
    is set-based, matching the paper's set-of-tuples semantics.
    """

    __slots__ = ("_attributes", "_tuples")

    def __init__(self, attributes: Sequence[Attribute], tuples: Iterable[Tuple] = ()):
        self._attributes: tuple[Attribute, ...] = tuple(attributes)
        expected = {a.name for a in self._attributes}
        if len(expected) != len(self._attributes):
            raise ValueError("relation attributes must have distinct names")
        frozen = frozenset(tuples)
        for t in frozen:
            if set(t.keys()) != expected:
                raise ValueError(
                    f"tuple attributes {sorted(t.keys())} do not match "
                    f"relation attributes {sorted(expected)}"
                )
        self._tuples: frozenset[Tuple] = frozen

    @classmethod
    def from_rows(
        cls, attributes: Sequence[Attribute], rows: Iterable[Sequence[Any]]
    ) -> "Relation":
        """Build a relation from positional value rows."""
        attrs = tuple(attributes)
        return cls(attrs, (Tuple.over(attrs, row) for row in rows))

    @classmethod
    def from_dicts(
        cls, attributes: Sequence[Attribute], rows: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build a relation from attribute-name/value mapping rows."""
        return cls(tuple(attributes), (Tuple(row) for row in rows))

    # -- structure ---------------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The relation's attribute sequence."""
        return self._attributes

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names, in declaration order."""
        return tuple(a.name for a in self._attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute of this relation by name."""
        return by_name(self._attributes)[name]

    @property
    def tuples(self) -> frozenset[Tuple]:
        """The underlying tuple set."""
        return self._tuples

    # -- set interface -----------------------------------------------------

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, t: Tuple) -> bool:
        return t in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            set(self._attributes) == set(other._attributes)
            and self._tuples == other._tuples
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._attributes), self._tuples))

    def __repr__(self) -> str:
        names = ", ".join(self.attribute_names)
        return f"Relation([{names}], {len(self)} tuples)"

    # -- construction helpers ----------------------------------------------

    def with_tuples(self, tuples: Iterable[Tuple]) -> "Relation":
        """A new relation over the same attributes with tuples added."""
        return Relation(self._attributes, self._tuples | frozenset(tuples))

    def without_tuples(self, tuples: Iterable[Tuple]) -> "Relation":
        """A new relation over the same attributes with tuples removed."""
        return Relation(self._attributes, self._tuples - frozenset(tuples))

    @classmethod
    def empty(cls, attributes: Sequence[Attribute]) -> "Relation":
        """The empty relation over ``attributes``."""
        return cls(attributes, ())

    def values_of(self, name: str) -> set[Any]:
        """All values (including ``NULL``) of one attribute column."""
        return {t[name] for t in self._tuples}

    def sorted_rows(self) -> list[tuple[Any, ...]]:
        """Deterministically ordered positional rows, for display/tests."""
        rows = [tuple(t[a.name] for a in self._attributes) for t in self._tuples]
        return sorted(rows, key=lambda row: tuple(repr(v) for v in row))
