"""Tuples over attribute sets, with the distinguished ``NULL`` marker.

The paper works with a single null marker (Section 2): a tuple is *total*
iff it has only non-null values, and ``null_k`` denotes a sub-tuple of
``k`` nulls.  Following the DBMSs the paper targets (Section 5.1 notes that
SYBASE and INGRES "consider all null values as identical"), ``NULL`` is a
singleton and compares equal only to itself.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.relational.attributes import Attribute


class _NullType:
    """Singleton type of the ``NULL`` marker."""

    _instance: "_NullType | None" = None

    def __new__(cls) -> "_NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_NullType, ())


#: The distinguished null marker used throughout the library.
NULL = _NullType()


def is_null(value: Any) -> bool:
    """True iff ``value`` is the ``NULL`` marker."""
    return value is NULL


class Tuple:
    """An immutable tuple over a set of attributes.

    A :class:`Tuple` maps attribute *names* to values (possibly ``NULL``).
    Attribute names are used as keys because the paper assumes globally
    unique attribute names within a schema, which makes names unambiguous
    join/projection handles.
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[str, Any]):
        self._values: dict[str, Any] = dict(values)
        self._hash: int | None = None

    @classmethod
    def over(cls, attrs: Sequence[Attribute], values: Sequence[Any]) -> "Tuple":
        """Build a tuple by pairing attributes with positional values."""
        if len(attrs) != len(values):
            raise ValueError(
                f"{len(attrs)} attributes but {len(values)} values"
            )
        return cls({a.name: v for a, v in zip(attrs, values)})

    # -- mapping interface -------------------------------------------------

    def __getitem__(self, key: "str | Attribute") -> Any:
        name = key.name if isinstance(key, Attribute) else key
        return self._values[name]

    def get(self, key: "str | Attribute", default: Any = None) -> Any:
        """Value lookup with a default, mirroring ``dict.get``."""
        name = key.name if isinstance(key, Attribute) else key
        return self._values.get(name, default)

    def __contains__(self, key: "str | Attribute") -> bool:
        name = key.name if isinstance(key, Attribute) else key
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def keys(self):
        """The tuple's attribute names."""
        return self._values.keys()

    def items(self):
        """(attribute name, value) pairs."""
        return self._values.items()

    def as_dict(self) -> dict[str, Any]:
        """A plain-dict copy of the tuple's values."""
        return dict(self._values)

    @property
    def mapping(self) -> Mapping[str, Any]:
        """The underlying name -> value mapping, without copying.

        Read-only by convention: callers must not mutate it (the tuple
        is immutable and caches its hash).  Hot paths -- the engine's
        compiled access plans -- read values through this mapping
        instead of paying :meth:`__getitem__`'s per-access dispatch.
        """
        return self._values

    # -- equality / hashing ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._values.items()))
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in sorted(self._values.items()))
        return f"Tuple({body})"

    # -- paper operations ----------------------------------------------------

    def subtuple(self, attrs: "Iterable[str | Attribute]") -> "Tuple":
        """The sub-tuple ``t[W]`` of this tuple on attribute set ``W``."""
        selected = {}
        for key in attrs:
            name = key.name if isinstance(key, Attribute) else key
            selected[name] = self._values[name]
        return Tuple(selected)

    def is_total(self) -> bool:
        """True iff the tuple has only non-null values."""
        return not any(is_null(v) for v in self._values.values())

    def is_total_on(self, attrs: "Iterable[str | Attribute]") -> bool:
        """True iff the sub-tuple on ``attrs`` has only non-null values."""
        for key in attrs:
            name = key.name if isinstance(key, Attribute) else key
            if is_null(self._values[name]):
                return False
        return True

    def is_all_null_on(self, attrs: "Iterable[str | Attribute]") -> bool:
        """True iff the sub-tuple on ``attrs`` consists entirely of nulls."""
        for key in attrs:
            name = key.name if isinstance(key, Attribute) else key
            if not is_null(self._values[name]):
                return False
        return True

    def renamed(self, name_map: Mapping[str, str]) -> "Tuple":
        """Rename attributes per ``name_map`` (names absent from the map are
        kept)."""
        return Tuple(
            {name_map.get(k, k): v for k, v in self._values.items()}
        )

    def combined(self, other: "Tuple") -> "Tuple":
        """The concatenation of two tuples over disjoint attribute sets."""
        overlap = self._values.keys() & other._values.keys()
        if overlap:
            raise ValueError(
                f"cannot combine tuples with shared attributes: {sorted(overlap)}"
            )
        merged = dict(self._values)
        merged.update(other._values)
        return Tuple(merged)

    def with_values(self, updates: Mapping[str, Any]) -> "Tuple":
        """A copy of this tuple with some attribute values replaced."""
        unknown = updates.keys() - self._values.keys()
        if unknown:
            raise KeyError(f"unknown attributes: {sorted(unknown)}")
        merged = dict(self._values)
        merged.update(updates)
        return Tuple(merged)

    def padded_with_nulls(self, attrs: Iterable[Attribute]) -> "Tuple":
        """Extend the tuple with ``NULL`` values on additional attributes."""
        extra = {a.name: NULL for a in attrs}
        overlap = extra.keys() & self._values.keys()
        if overlap:
            raise ValueError(
                f"cannot pad attributes already present: {sorted(overlap)}"
            )
        merged = dict(self._values)
        merged.update(extra)
        return Tuple(merged)


def null_tuple(attrs: Sequence[Attribute]) -> Tuple:
    """The tuple ``null_k`` consisting entirely of nulls on ``attrs``."""
    return Tuple({a.name: NULL for a in attrs})
