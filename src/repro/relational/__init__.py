"""Relational data model substrate (Section 2 of the paper).

This package implements the relational concepts the merging technique is
defined over: domains, attributes with compatibility, tuples that may hold
the distinguished ``NULL`` marker, relations, relation-schemes, relational
schemas, database states, and the relational algebra operators used by the
paper -- in particular *total projection* and the *outer equi-join*.
"""

from repro.relational.attributes import (
    Attribute,
    Domain,
    attributes_compatible,
    attribute_sets_compatible,
    Correspondence,
)
from repro.relational.tuples import NULL, Tuple, is_null
from repro.relational.relation import Relation
from repro.relational.schema import RelationScheme, RelationalSchema
from repro.relational.state import DatabaseState
from repro.relational import algebra
from repro.relational.display import format_relation, format_state

__all__ = [
    "Attribute",
    "Domain",
    "attributes_compatible",
    "attribute_sets_compatible",
    "Correspondence",
    "NULL",
    "Tuple",
    "is_null",
    "Relation",
    "RelationScheme",
    "RelationalSchema",
    "DatabaseState",
    "algebra",
    "format_relation",
    "format_state",
]
