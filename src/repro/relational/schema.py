"""Relation-schemes and relational schemas.

A *relation-scheme* is a pair ``Ri(Xi)`` of a name and an attribute set; a
*relational schema* is a pair ``RS = (R, Delta)`` of relation-schemes and a
set of dependencies and constraints over them (paper, Section 2).  The
merging technique targets the class ``RS = (R, F u I u N)`` where ``F`` are
key dependencies, ``I`` key-based inclusion dependencies, and ``N`` null
constraints; :class:`RelationalSchema` keeps the three groups separate.

The constraint objects themselves live in :mod:`repro.constraints`; this
module stores them opaquely to keep the dependency direction one-way
(constraints are defined *over* the data model).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.relational.attributes import Attribute, by_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.constraints.functional import KeyDependency
    from repro.constraints.inclusion import InclusionDependency
    from repro.constraints.nulls import NullConstraint


@dataclass(frozen=True)
class RelationScheme:
    """A relation-scheme ``Ri(Xi)`` with a designated primary key.

    ``primary_key`` is an ordered attribute tuple (order carries the
    correspondence used when compatible keys are equated by ``Merge``).
    ``candidate_keys`` always contains the primary key; additional entries
    model schemes with several candidate keys (Section 5.1 discusses when
    merged schemes acquire nullable candidate keys).
    """

    name: str
    attributes: tuple[Attribute, ...]
    primary_key: tuple[Attribute, ...]
    candidate_keys: frozenset[tuple[Attribute, ...]] = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate attribute names")
        attr_set = set(self.attributes)
        if not self.primary_key:
            raise ValueError(f"{self.name}: primary key must be non-empty")
        if not set(self.primary_key) <= attr_set:
            raise ValueError(f"{self.name}: primary key not within attributes")
        keys = self.candidate_keys
        if keys is None:
            keys = frozenset()
        keys = frozenset(keys) | {tuple(self.primary_key)}
        for key in keys:
            if not set(key) <= attr_set:
                raise ValueError(f"{self.name}: candidate key not within attributes")
        object.__setattr__(self, "candidate_keys", keys)

    # -- convenience -------------------------------------------------------

    @cached_property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names, in declaration order.

        Cached: the scheme is frozen, and these projections sit on the
        engine's per-row hot paths.
        """
        return tuple(a.name for a in self.attributes)

    @cached_property
    def key_names(self) -> tuple[str, ...]:
        """Primary-key attribute names, in key order (cached)."""
        return tuple(a.name for a in self.primary_key)

    @cached_property
    def nonkey_attributes(self) -> tuple[Attribute, ...]:
        """Attributes outside the primary key (cached)."""
        key = set(self.primary_key)
        return tuple(a for a in self.attributes if a not in key)

    @cached_property
    def _attributes_by_name(self) -> dict[str, Attribute]:
        return by_name(self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute of this scheme by name."""
        return self._attributes_by_name[name]

    def has_attribute(self, name: str) -> bool:
        """Whether this scheme declares the named attribute."""
        return any(a.name == name for a in self.attributes)

    def __str__(self) -> str:
        key = set(self.primary_key)
        cols = ", ".join(
            f"{a.name}*" if a in key else a.name for a in self.attributes
        )
        return f"{self.name}({cols})"


@dataclass(frozen=True)
class RelationalSchema:
    """A relational schema ``RS = (R, F u I u N)``.

    ``schemes`` is ordered (insertion order is display order); attribute
    names are enforced to be globally unique across schemes, the standing
    assumption of Definition 4.1.
    """

    schemes: tuple[RelationScheme, ...]
    fds: tuple["KeyDependency", ...] = ()
    inds: tuple["InclusionDependency", ...] = ()
    null_constraints: tuple["NullConstraint", ...] = ()

    def __post_init__(self) -> None:
        names = [s.name for s in self.schemes]
        if len(set(names)) != len(names):
            raise ValueError("relation-scheme names must be unique")
        seen: dict[str, str] = {}
        for scheme in self.schemes:
            for attr in scheme.attributes:
                owner = seen.get(attr.name)
                if owner is not None:
                    raise ValueError(
                        f"attribute name {attr.name!r} appears in both "
                        f"{owner} and {scheme.name}; the merging technique "
                        "assumes globally unique attribute names"
                    )
                seen[attr.name] = scheme.name

    # -- lookups -------------------------------------------------------------

    @cached_property
    def _schemes_by_name(self) -> dict[str, RelationScheme]:
        return {s.name: s for s in self.schemes}

    def scheme(self, name: str) -> RelationScheme:
        """Look up a relation-scheme by name."""
        try:
            return self._schemes_by_name[name]
        except KeyError:
            raise KeyError(f"no relation-scheme named {name!r}") from None

    def has_scheme(self, name: str) -> bool:
        """Whether a relation-scheme with this name exists."""
        return name in self._schemes_by_name

    @property
    def scheme_names(self) -> tuple[str, ...]:
        """Names of all relation-schemes, in declaration order."""
        return tuple(s.name for s in self.schemes)

    def owner_of(self, attribute_name: str) -> RelationScheme:
        """The scheme holding the (globally unique) attribute name."""
        for s in self.schemes:
            if s.has_attribute(attribute_name):
                return s
        raise KeyError(f"no scheme holds attribute {attribute_name!r}")

    def __iter__(self) -> Iterator[RelationScheme]:
        return iter(self.schemes)

    # -- constraint slices ---------------------------------------------------

    def fds_of(self, scheme_name: str) -> tuple["KeyDependency", ...]:
        """Key/functional dependencies declared over one scheme."""
        return tuple(fd for fd in self.fds if fd.scheme_name == scheme_name)

    def inds_from(self, scheme_name: str) -> tuple["InclusionDependency", ...]:
        """Inclusion dependencies whose left-hand side is ``scheme_name``."""
        return tuple(d for d in self.inds if d.lhs_scheme == scheme_name)

    def inds_into(self, scheme_name: str) -> tuple["InclusionDependency", ...]:
        """Inclusion dependencies whose right-hand side is ``scheme_name``."""
        return tuple(d for d in self.inds if d.rhs_scheme == scheme_name)

    def null_constraints_of(self, scheme_name: str) -> tuple["NullConstraint", ...]:
        """Null constraints declared over one scheme."""
        return tuple(
            c for c in self.null_constraints if c.scheme_name == scheme_name
        )

    # -- derived transformations ----------------------------------------------

    def replacing_schemes(
        self,
        removed: Iterable[str],
        added: Sequence[RelationScheme],
        fds: Sequence["KeyDependency"],
        inds: Sequence["InclusionDependency"],
        null_constraints: Sequence["NullConstraint"],
    ) -> "RelationalSchema":
        """A new schema with some schemes replaced and all constraint groups
        substituted wholesale (the shape of ``Merge``/``Remove`` output)."""
        removed_set = set(removed)
        kept = tuple(s for s in self.schemes if s.name not in removed_set)
        return RelationalSchema(
            schemes=kept + tuple(added),
            fds=tuple(fds),
            inds=tuple(inds),
            null_constraints=tuple(null_constraints),
        )

    def with_constraints(
        self,
        fds: Sequence["KeyDependency"] | None = None,
        inds: Sequence["InclusionDependency"] | None = None,
        null_constraints: Sequence["NullConstraint"] | None = None,
    ) -> "RelationalSchema":
        """A copy with one or more constraint groups replaced."""
        return replace(
            self,
            fds=self.fds if fds is None else tuple(fds),
            inds=self.inds if inds is None else tuple(inds),
            null_constraints=(
                self.null_constraints
                if null_constraints is None
                else tuple(null_constraints)
            ),
        )

    def describe(self) -> str:
        """A printable rendition in the paper's figure style."""
        lines = ["Relation-Schemes (keys marked *)"]
        for s in self.schemes:
            lines.append(f"  {s}")
        if self.fds:
            lines.append("Key Dependencies")
            for fd in self.fds:
                lines.append(f"  {fd}")
        if self.inds:
            lines.append("Inclusion Dependencies")
            for d in self.inds:
                lines.append(f"  {d}")
        if self.null_constraints:
            lines.append("Null Constraints")
            for c in self.null_constraints:
                lines.append(f"  {c}")
        return "\n".join(lines)
