"""Relational algebra operators, exactly as defined in Section 2.

The merging technique relies on four operators with precise null
semantics:

* ``project`` -- ordinary projection ``pi_W(r)``;
* ``total_project`` -- total projection ``pi!_W(r)``, the subset of *total*
  tuples of the projection (this is how merged relations are decomposed
  back into the original relations);
* ``rename`` -- ``rename(r; W <- Y)``;
* ``outer_equi_join`` -- the three-part union ``r1 u r2 u r3`` of the
  paper: the equi-join, plus left-side tuples padded with nulls for
  unmatched right tuples, plus right-side padding for unmatched left
  tuples.

Join predicates are *total equality*: a null never matches anything,
matching the single-null-marker semantics the paper assumes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.relational.attributes import Attribute, Correspondence
from repro.relational.relation import Relation
from repro.relational.tuples import NULL, Tuple, is_null


def _resolve(relation: Relation, attrs: Iterable[str | Attribute]) -> tuple[Attribute, ...]:
    """Resolve names or attributes against a relation's attribute set."""
    resolved = []
    for a in attrs:
        name = a.name if isinstance(a, Attribute) else a
        resolved.append(relation.attribute(name))
    return tuple(resolved)


def project(relation: Relation, attrs: Sequence[str | Attribute]) -> Relation:
    """Projection ``pi_W(r)``: sub-tuples of every tuple on ``W``."""
    target = _resolve(relation, attrs)
    names = [a.name for a in target]
    return Relation(target, (t.subtuple(names) for t in relation))


def total_project(relation: Relation, attrs: Sequence[str | Attribute]) -> Relation:
    """Total projection ``pi!_W(r)``: the *total* sub-tuples on ``W``.

    This is the reconstruction operator of the paper's state mapping
    ``eta'``: a merged relation is split back into the original relations
    by total projection on each original attribute set.
    """
    target = _resolve(relation, attrs)
    names = [a.name for a in target]
    return Relation(
        target,
        (
            t.subtuple(names)
            for t in relation
            if t.is_total_on(names)
        ),
    )


def rename(relation: Relation, correspondence: Correspondence) -> Relation:
    """``rename(r; W <- Y)``: rename the correspondence's source attributes
    to its target attributes (all other attributes are kept)."""
    source_names = {a.name for a in correspondence.source}
    missing = source_names - set(relation.attribute_names)
    if missing:
        raise KeyError(f"rename source attributes not in relation: {sorted(missing)}")
    name_map = correspondence.as_name_map()
    new_attrs = tuple(
        correspondence.image(a) if a in correspondence.source else a
        for a in relation.attributes
    )
    return Relation(new_attrs, (t.renamed(name_map) for t in relation))


def select(relation: Relation, predicate: Callable[[Tuple], bool]) -> Relation:
    """Selection by an arbitrary tuple predicate."""
    return Relation(relation.attributes, (t for t in relation if predicate(t)))


def union(r1: Relation, r2: Relation) -> Relation:
    """Set union of two relations over the same attribute set."""
    if set(r1.attributes) != set(r2.attributes):
        raise ValueError("union requires identical attribute sets")
    return Relation(r1.attributes, set(r1.tuples) | set(r2.tuples))


def difference(r1: Relation, r2: Relation) -> Relation:
    """Set difference of two relations over the same attribute set."""
    if set(r1.attributes) != set(r2.attributes):
        raise ValueError("difference requires identical attribute sets")
    return Relation(r1.attributes, set(r1.tuples) - set(r2.tuples))


def _join_key(t: Tuple, names: Sequence[str]) -> tuple[Any, ...] | None:
    """The total join key of a tuple, or ``None`` if any component is null
    (nulls never participate in join matches)."""
    key = tuple(t[n] for n in names)
    if any(is_null(v) for v in key):
        return None
    return key


def _check_join_sides(
    r1: Relation, r2: Relation, on: Correspondence
) -> tuple[list[str], list[str]]:
    left_names = [a.name for a in on.source]
    right_names = [a.name for a in on.target]
    if not set(left_names) <= set(r1.attribute_names):
        raise KeyError("join correspondence source not within left relation")
    if not set(right_names) <= set(r2.attribute_names):
        raise KeyError("join correspondence target not within right relation")
    overlap = set(r1.attribute_names) & set(r2.attribute_names)
    if overlap:
        raise ValueError(
            f"equi-join requires disjoint attribute sets, shared: {sorted(overlap)}"
        )
    return left_names, right_names


def equi_join(r1: Relation, r2: Relation, on: Correspondence) -> Relation:
    """Equi-join ``r1 |x|_{Y=Z} r2`` over disjoint attribute sets.

    The result carries *both* join columns (``Y`` and ``Z``), as in the
    paper -- redundant join columns are what ``Remove`` later eliminates.
    """
    left_names, right_names = _check_join_sides(r1, r2, on)
    index: dict[tuple[Any, ...], list[Tuple]] = {}
    for t in r2:
        key = _join_key(t, right_names)
        if key is not None:
            index.setdefault(key, []).append(t)
    out_attrs = r1.attributes + r2.attributes
    result = []
    for t in r1:
        key = _join_key(t, left_names)
        if key is None:
            continue
        for u in index.get(key, ()):
            result.append(t.combined(u))
    return Relation(out_attrs, result)


def outer_equi_join(r1: Relation, r2: Relation, on: Correspondence) -> Relation:
    """Outer equi-join ``r1 |x|+_{Y=Z} r2`` (full outer join).

    Per Section 2 the result is the union of three relations:

    * ``r1'`` -- the equi-join of ``r1`` and ``r2`` on ``Y = Z``;
    * ``r2'`` -- tuples whose ``X1`` part is all-null and whose ``X2`` part
      is an ``r2`` tuple with no ``Y``-match in ``r1``;
    * ``r3'`` -- tuples whose ``X2`` part is all-null and whose ``X1`` part
      is an ``r1`` tuple with no ``Z``-match in ``r2``.
    """
    left_names, right_names = _check_join_sides(r1, r2, on)
    right_index: dict[tuple[Any, ...], list[Tuple]] = {}
    for t in r2:
        key = _join_key(t, right_names)
        if key is not None:
            right_index.setdefault(key, []).append(t)
    left_keys = set()
    out_attrs = r1.attributes + r2.attributes
    result = []
    for t in r1:
        key = _join_key(t, left_names)
        matched = False
        if key is not None:
            left_keys.add(key)
            for u in right_index.get(key, ()):
                result.append(t.combined(u))
                matched = True
        if not matched:
            result.append(t.padded_with_nulls(r2.attributes))
    for t in r2:
        key = _join_key(t, right_names)
        if key is None or key not in left_keys:
            result.append(
                Tuple({a.name: NULL for a in r1.attributes}).combined(t)
            )
    return Relation(out_attrs, result)


def left_outer_equi_join(r1: Relation, r2: Relation, on: Correspondence) -> Relation:
    """Left outer equi-join: the paper's outer join restricted to parts
    ``r1'`` and ``r3'`` (every left tuple survives; unmatched right tuples
    are dropped).

    In the state mapping ``eta`` the key-relation side contains every join
    key by construction (Definition 3.1), so the full outer join and the
    left outer join coincide there; this operator exists for engine reuse
    and for property tests that check that coincidence.
    """
    left_names, right_names = _check_join_sides(r1, r2, on)
    right_index: dict[tuple[Any, ...], list[Tuple]] = {}
    for t in r2:
        key = _join_key(t, right_names)
        if key is not None:
            right_index.setdefault(key, []).append(t)
    out_attrs = r1.attributes + r2.attributes
    result = []
    for t in r1:
        key = _join_key(t, left_names)
        matches = right_index.get(key, ()) if key is not None else ()
        if matches:
            for u in matches:
                result.append(t.combined(u))
        else:
            result.append(t.padded_with_nulls(r2.attributes))
    return Relation(out_attrs, result)
