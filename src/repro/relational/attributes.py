"""Attributes, domains, and compatibility.

The paper (Section 2) associates every attribute with a *domain*, and calls
two attributes *compatible* when they share a domain.  Attribute sets ``X``
and ``Y`` are compatible when there is a one-to-one correspondence of
compatible attributes between them.  Because correspondences matter (the
Merge procedure equates primary keys component-wise), compatible attribute
*sequences* are the working representation: a key is an ordered tuple of
attributes and two keys correspond position by position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence


@dataclass(frozen=True, order=True)
class Domain:
    """A named value domain, e.g. ``Domain('ssn')`` or ``Domain('date')``.

    Only the name participates in identity; the paper never needs domain
    extensions, only the compatibility relation induced by equality of
    domains.
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Attribute:
    """A named attribute drawn from a :class:`Domain`.

    Attribute names are globally unique within a relational schema (an
    assumption the paper makes explicit in Definition 4.1); the model does
    not enforce uniqueness here -- :class:`~repro.relational.schema.RelationalSchema`
    does.
    """

    name: str
    domain: Domain

    def __str__(self) -> str:
        return self.name

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute under a new name (same domain)."""
        return Attribute(new_name, self.domain)


def attributes_compatible(a: Attribute, b: Attribute) -> bool:
    """True iff ``a`` and ``b`` are associated with the same domain."""
    return a.domain == b.domain


def attribute_sets_compatible(
    xs: Sequence[Attribute], ys: Sequence[Attribute]
) -> bool:
    """True iff the sequences correspond position-wise with compatible
    attributes.

    This is the ordered form of the paper's "one-to-one correspondence of
    compatible attributes": callers supply keys in canonical order, so
    position-wise compatibility is the correspondence.
    """
    if len(xs) != len(ys):
        return False
    return all(attributes_compatible(a, b) for a, b in zip(xs, ys))


@dataclass(frozen=True)
class Correspondence:
    """A one-to-one correspondence between two compatible attribute
    sequences.

    Used to express key compatibility during merging (``Km`` corresponds to
    each family key ``Ki``) and the rename maps of the paper's
    ``rename(r; W <- Y)`` operator.
    """

    source: tuple[Attribute, ...]
    target: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        if not attribute_sets_compatible(self.source, self.target):
            raise ValueError(
                "correspondence requires position-wise compatible sequences: "
                f"{[a.name for a in self.source]} vs "
                f"{[a.name for a in self.target]}"
            )
        if len(set(self.source)) != len(self.source):
            raise ValueError("duplicate attributes on source side")
        if len(set(self.target)) != len(self.target):
            raise ValueError("duplicate attributes on target side")

    def __len__(self) -> int:
        return len(self.source)

    def __iter__(self) -> Iterator[tuple[Attribute, Attribute]]:
        return iter(zip(self.source, self.target))

    def as_name_map(self) -> dict[str, str]:
        """Mapping of source attribute names to target attribute names."""
        return {a.name: b.name for a, b in self}

    def inverted(self) -> "Correspondence":
        """The correspondence read in the opposite direction."""
        return Correspondence(self.target, self.source)

    def image(self, attr: Attribute) -> Attribute:
        """The target attribute corresponding to ``attr``."""
        for a, b in self:
            if a == attr:
                return b
        raise KeyError(f"{attr.name} is not on the source side")


def names(attrs: Iterable[Attribute]) -> tuple[str, ...]:
    """Names of an attribute sequence, preserving order."""
    return tuple(a.name for a in attrs)


def by_name(attrs: Iterable[Attribute]) -> Mapping[str, Attribute]:
    """Index an attribute collection by name."""
    return {a.name: a for a in attrs}
