"""Database states: the relations associated with a relational schema."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.relational.relation import Relation
from repro.relational.schema import RelationalSchema
from repro.relational.tuples import is_null


class DatabaseState:
    """A database state ``r`` of a relational schema (paper, Section 2).

    Maps relation-scheme names to :class:`Relation` instances.  States are
    immutable; the engine (:mod:`repro.engine`) wraps them with mutation
    plus constraint enforcement.
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Mapping[str, Relation]):
        self._relations: dict[str, Relation] = dict(relations)

    @classmethod
    def empty_for(cls, schema: RelationalSchema) -> "DatabaseState":
        """The all-empty state of a schema."""
        return cls(
            {s.name: Relation.empty(s.attributes) for s in schema.schemes}
        )

    @classmethod
    def for_schema(
        cls,
        schema: RelationalSchema,
        rows: Mapping[str, Iterable[Mapping[str, Any]]],
    ) -> "DatabaseState":
        """Build a state from per-scheme row mappings; schemes absent from
        ``rows`` are empty."""
        relations: dict[str, Relation] = {}
        for scheme in schema.schemes:
            scheme_rows = rows.get(scheme.name, ())
            relations[scheme.name] = Relation.from_dicts(
                scheme.attributes, scheme_rows
            )
        unknown = set(rows) - {s.name for s in schema.schemes}
        if unknown:
            raise KeyError(f"rows supplied for unknown schemes: {sorted(unknown)}")
        return cls(relations)

    # -- mapping interface ---------------------------------------------------

    def __getitem__(self, scheme_name: str) -> Relation:
        return self._relations[scheme_name]

    def __contains__(self, scheme_name: str) -> bool:
        return scheme_name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def items(self):
        """(name, relation) pairs of the state."""
        return self._relations.items()

    def relations(self) -> dict[str, Relation]:
        """A shallow copy of the name -> relation mapping."""
        return dict(self._relations)

    # -- equality ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseState):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.items()))

    def __repr__(self) -> str:
        body = ", ".join(
            f"{name}:{len(rel)}" for name, rel in sorted(self._relations.items())
        )
        return f"DatabaseState({body})"

    # -- derivation ------------------------------------------------------------

    def with_relation(self, name: str, relation: Relation) -> "DatabaseState":
        """A new state with one relation replaced (or added)."""
        updated = dict(self._relations)
        updated[name] = relation
        return DatabaseState(updated)

    def without_relations(self, names: Iterable[str]) -> "DatabaseState":
        """A new state with some relations dropped."""
        dropped = set(names)
        return DatabaseState(
            {k: v for k, v in self._relations.items() if k not in dropped}
        )

    def restricted_to(self, names: Iterable[str]) -> "DatabaseState":
        """A new state holding only the named relations."""
        keep = set(names)
        return DatabaseState(
            {k: v for k, v in self._relations.items() if k in keep}
        )

    def total_size(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def data_values(self) -> set[Any]:
        """All non-null atomic values appearing anywhere in the state.

        Definition 2.1 requires information-capacity mappings to *preserve
        data values*; this is the value set that preservation is checked
        against.
        """
        values: set[Any] = set()
        for rel in self._relations.values():
            for t in rel:
                values.update(v for v in t.as_dict().values() if not is_null(v))
        return values
