"""Command-line interface: ``python -m repro <command> ...``.

Schema files are the JSON forms of :mod:`repro.io`; EER files are
recognised by their ``object_sets`` field.  Commands:

``describe``   print a schema in the paper's figure style
``check``      check a database state against a schema
``explain``    show enforcement plans / merge reasoning without executing
``families``   list mergeable families with Proposition 5.1/5.2 verdicts
``merge``      apply Merge (and, by default, Remove) to named schemes
``plan``       merge every family admitted by a strategy
``migrate``    map a database state through a merge
``translate``  translate an EER design to a relational schema
``structures`` classify an EER design's single-relation structures
``ddl``        generate DDL for DB2 / SYBASE 4.0 / INGRES 6.3
``minimize``   drop implied constraints from a schema
``bench``      run the storage-engine micro-benchmarks
``recover``    rebuild the committed state from a write-ahead log
``serve``      serve a database over the JSON-lines TCP protocol
``promote``    turn a replica (or replica fleet) into the primary
``advise``     workload-driven merge recommendation from a live server
``monitor``    live terminal dashboard over a running server
``trace``      reassemble request traces from span files / a live server

Every command reads JSON from file arguments and writes human output to
stdout; ``-o`` writes machine-readable JSON results.  ``check``,
``merge`` and ``plan`` additionally take ``--explain`` (print the
decision plan) and ``--trace [FILE]`` (write a JSONL trace of every
enforcement/merge decision; ``-`` or no argument means stdout).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.constraints.checker import ConsistencyChecker
from repro.constraints.minimize import minimize_schema
from repro.core.merge import merge as apply_merge
from repro.core.planner import MergePlanner, MergeStrategy
from repro.core.remove import remove_all
from repro.ddl.dialects import DB2, INGRES_63, SQLITE, SYBASE_40, DialectProfile
from repro.ddl.generate import generate_ddl
from repro.eer.patterns import find_amenable_structures
from repro.eer.teorey import translate_teorey
from repro.eer.translate import translate_eer
from repro.io import (
    eer_schema_from_dict,
    relational_schema_from_dict,
    relational_schema_to_dict,
    state_from_dict,
    state_to_dict,
)

DIALECTS: dict[str, DialectProfile] = {
    "db2": DB2,
    "sybase": SYBASE_40,
    "ingres": INGRES_63,
    "sqlite": SQLITE,
}


class CliError(SystemExit):
    """A user-facing CLI failure (exit code 2)."""

    def __init__(self, message: str):
        print(f"error: {message}", file=sys.stderr)
        super().__init__(2)


def _load_json(path: str) -> Any:
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as exc:
        raise CliError(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise CliError(f"{path} is not valid JSON: {exc}")


def _load_relational(path: str):
    data = _load_json(path)
    if "object_sets" in data:
        raise CliError(
            f"{path} is an EER schema; run 'translate' first or pass it to "
            "an EER command"
        )
    try:
        return relational_schema_from_dict(data)
    except ValueError as exc:
        raise CliError(f"{path}: {exc}")


def _load_eer(path: str):
    data = _load_json(path)
    if "object_sets" not in data:
        raise CliError(f"{path} does not look like an EER schema")
    try:
        return eer_schema_from_dict(data)
    except ValueError as exc:
        raise CliError(f"{path}: {exc}")


def _open_tracer(spec: str | None):
    """``--trace`` plumbing: ``None`` -> no tracer; ``-`` -> JSONL on
    stdout; anything else -> JSONL written to that path."""
    if spec is None:
        return None, None
    from repro.obs.trace import JsonlTracer

    if spec == "-":
        return JsonlTracer(sys.stdout), None
    try:
        return JsonlTracer.to_path(spec), spec
    except OSError as exc:
        raise CliError(f"cannot open trace file {spec}: {exc}")


def _close_tracer(tracer, path: str | None) -> None:
    if tracer is None:
        return
    tracer.close()
    if path is not None:
        print(f"wrote {path} ({tracer.events_written} trace event(s))")


def _write_output(path: str | None, data: Any) -> None:
    if path is None:
        return
    with open(path, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {path}")


# -- commands -----------------------------------------------------------------


def cmd_describe(args: argparse.Namespace) -> int:
    """``describe``: print a schema in the figure style."""
    schema = _load_relational(args.schema)
    print(schema.describe())
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """``check``: consistency-check a state (from a file, or recovered
    from a write-ahead log with ``--wal``); exit 1 on violations."""
    schema = _load_relational(args.schema)
    if (args.state is None) == (args.wal is None):
        raise CliError("pass exactly one of a state file or --wal LOG")
    if args.wal is not None:
        # Recovery may evolve the schema (a logged online merge, or a
        # checkpoint embedding the merged schema); check against the
        # schema the log actually recovered to.
        schema, state = _recovered_state(schema, args.wal)
    else:
        state = state_from_dict(_load_json(args.state), schema)
    tracer, trace_path = _open_tracer(args.trace)
    checker = ConsistencyChecker(schema, tracer=tracer)
    if args.explain:
        print(checker.explain_text())
        print()
    try:
        violations = checker.violations(state)
    finally:
        _close_tracer(tracer, trace_path)
    if not violations:
        print(f"consistent: {state.total_size()} tuples satisfy the schema")
        return 0
    for v in violations:
        print(v)
    print(f"{len(violations)} violation(s)")
    return 1


def _recovered_state(schema, wal_path: str):
    """The (schema, state) a log recovers to, unverified (for ``check
    --wal``, which runs its own consistency pass).  The returned schema
    is the recovered database's own -- a logged merge evolves it past
    the boot schema."""
    from repro.engine.recovery import RecoveryError, recover_database
    from repro.engine.wal import WalError

    try:
        result = recover_database(schema, wal_path, verify=False)
    except (RecoveryError, WalError, OSError) as exc:
        raise CliError(f"cannot recover {wal_path}: {exc}")
    schema = result.database.schema
    state = result.database.state()
    result.database.wal.close()
    return schema, state


def cmd_recover(args: argparse.Namespace) -> int:
    """``recover``: replay a write-ahead log into the committed state."""
    from repro.engine.recovery import RecoveryError, recover_database
    from repro.engine.wal import WalError

    schema = _load_relational(args.schema)
    tracer, trace_path = _open_tracer(args.trace)
    try:
        try:
            result = recover_database(
                schema,
                args.wal,
                tracer=tracer,
                verify=not args.no_verify,
            )
        except (RecoveryError, WalError, OSError) as exc:
            raise CliError(f"recovery failed: {exc}")
    finally:
        _close_tracer(tracer, trace_path)
    db, report = result.database, result.report
    print(
        f"recovered {db.state().total_size()} tuple(s): "
        f"{report.records_replayed} record(s) replayed, "
        f"{report.transactions_rolled_back} transaction(s) rolled back, "
        f"{report.truncated_bytes} byte(s) truncated"
        + ("" if args.no_verify else "; consistency verified")
    )
    if args.checkpoint:
        db.checkpoint()
        print(f"compacted {args.wal} into a snapshot")
    db.wal.close()
    _write_output(args.output, state_to_dict(db.state()))
    _write_output(args.report, report.to_dict())
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``explain``: show enforcement plans (or, with ``--plan``, the
    merge planner's reasoning) without executing anything."""
    from repro.engine.database import Database
    from repro.obs.explain import explain_database, render_database

    schema = _load_relational(args.schema)
    if args.plan:
        planner = MergePlanner(schema, MergeStrategy(args.strategy))
        print(planner.explain_text())
        _write_output(args.output, planner.explain())
        return 0
    schemes = args.scheme or None
    if schemes:
        known = set(schema.scheme_names)
        for name in schemes:
            if name not in known:
                raise CliError(f"unknown scheme {name!r}")
    ops = (args.op,) if args.op else None
    db = Database(schema)
    explanation = (
        explain_database(db, schemes, ops)
        if ops
        else explain_database(db, schemes)
    )
    print(render_database(explanation))
    _write_output(args.output, explanation)
    return 0


def cmd_families(args: argparse.Namespace) -> int:
    """``families``: list mergeable families with Prop 5.x verdicts."""
    schema = _load_relational(args.schema)
    families = MergePlanner(schema).candidate_families()
    if not families:
        print("no mergeable families (Proposition 3.1 finds no key-relations)")
        return 0
    for family in families:
        print(family)
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    """``merge``: apply Merge (and by default Remove) to named schemes."""
    schema = _load_relational(args.schema)
    tracer, trace_path = _open_tracer(args.trace)
    result = apply_merge(schema, args.members, merged_name=args.name)
    if args.keep_redundant:
        out_schema = result.schema
        removed: list = []
        print(f"merged into {result.info.merged_name} (no removal pass)")
    else:
        simplified = remove_all(result)
        out_schema = simplified.schema
        removed = list(simplified.removed)
        print(
            f"merged into {simplified.info.merged_name}; removed: "
            f"{', '.join(str(r) for r in removed) or 'nothing'}"
        )
    if tracer is not None:
        from repro.obs.trace import TraceEvent

        tracer.emit(
            TraceEvent(
                event="merge-applied",
                op="merge",
                scheme=result.info.merged_name,
                constraint=f"Merge({', '.join(args.members)})",
                kind="merge-admission",
                rule="Definition 4.1 (Merge) + Definition 4.3 (Remove)",
                outcome="ok",
                rows=len(removed),
                detail=(
                    f"{len(list(out_schema.null_constraints_of(result.info.merged_name)))} "
                    "null constraint(s) on the merged scheme; "
                    f"{len(removed)} constraint(s) removed"
                ),
            )
        )
        _close_tracer(tracer, trace_path)
    if args.explain:
        from repro.obs.explain import (
            explain_null_constraints,
            render_null_constraints,
        )

        print()
        print(
            render_null_constraints(
                explain_null_constraints(out_schema, result.info.merged_name)
            )
        )
        print()
    print(out_schema.describe())
    _write_output(args.output, relational_schema_to_dict(out_schema))
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """``plan``: merge every family admitted by the strategy."""
    from repro.core.script import MigrationScript

    schema = _load_relational(args.schema)
    strategy = MergeStrategy(args.strategy)
    tracer, trace_path = _open_tracer(args.trace)
    planner = MergePlanner(schema, strategy, tracer=tracer)
    if args.explain:
        print(planner.explain_text())
        print()
    try:
        plan = planner.apply()
    finally:
        _close_tracer(tracer, trace_path)
    print(plan.summary())
    _write_output(args.output, relational_schema_to_dict(plan.schema))
    if args.script:
        script = MigrationScript.from_plan(
            plan, description=f"strategy={strategy.value}"
        )
        _write_output(args.script, script.to_dict())
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """``replay``: re-apply a recorded migration script to a schema (and
    optionally migrate a state through it)."""
    from repro.core.script import MigrationScript

    schema = _load_relational(args.schema)
    script = MigrationScript.from_dict(_load_json(args.script))
    replay = script.apply(schema)
    print(
        f"replayed {len(replay.steps)} step(s): "
        f"{len(schema.schemes)} -> {len(replay.schema.schemes)} scheme(s)"
    )
    _write_output(args.output, relational_schema_to_dict(replay.schema))
    if args.state:
        state = state_from_dict(_load_json(args.state), schema)
        migrated = replay.forward.apply(state)
        assert replay.backward.apply(migrated) == state
        print(
            f"migrated {state.total_size()} -> {migrated.total_size()} "
            "tuples; round trip verified"
        )
        _write_output(args.state_output, state_to_dict(migrated))
    return 0


def cmd_migrate(args: argparse.Namespace) -> int:
    """``migrate``: map a state through a merge, verifying the round trip.

    ``--sql`` additionally emits the equivalent SQLite migration script
    (the ``eta`` mapping as ``INSERT ... SELECT`` DDL); ``--db`` applies
    that script to a live SQLite database file holding the source
    schema's deployment.
    """
    schema = _load_relational(args.schema)
    state = state_from_dict(_load_json(args.state), schema)
    violations = ConsistencyChecker(schema).violations(state)
    if violations:
        raise CliError(
            f"input state is inconsistent ({violations[0]}); fix it first"
        )
    simplified = remove_all(apply_merge(schema, args.members))
    migrated = simplified.forward.apply(state)
    assert simplified.backward.apply(migrated) == state
    print(
        f"migrated {state.total_size()} tuples -> "
        f"{migrated.total_size()} tuples in "
        f"{len(simplified.schema.schemes)} relation(s); round trip verified"
    )
    if args.sql or args.db:
        from repro.backend import SQLiteBackend, generate_migration

        script = generate_migration(schema, simplified)
        if args.sql:
            if args.sql == "-":
                print(script.sql())
            else:
                with open(args.sql, "w") as f:
                    f.write(script.sql() + "\n")
                print(f"wrote migration script to {args.sql}")
        if args.db:
            with SQLiteBackend(args.db) as backend:
                backend.attach(schema)
                backend.migrate(simplified)
                live = backend.state()
            if live != migrated:
                raise CliError(
                    f"live migration of {args.db} diverged from the "
                    "state mapping"
                )
            print(
                f"migrated live database {args.db}; contents match the "
                "eta mapping"
            )
    _write_output(args.output, state_to_dict(migrated))
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """``compile``: generate DDL and optionally execute it on SQLite."""
    schema = _load_relational(args.schema)
    dialect = DIALECTS[args.dialect]
    script = generate_ddl(schema, dialect)
    if args.output and args.output != "-":
        with open(args.output, "w") as f:
            f.write(script.sql() + "\n")
        print(f"wrote {len(script.statements)} statement(s) to {args.output}")
    else:
        print(script.sql())
        print()
    print(f"-- {script.summary()}")
    for warning in script.warnings:
        print(f"-- WARNING: {warning}")
    if args.execute:
        if not dialect.executable:
            raise CliError(
                f"--execute needs an executable dialect (sqlite), "
                f"not {dialect.name}"
            )
        from repro.backend import SQLiteBackend

        with SQLiteBackend(args.execute) as backend:
            backend.deploy(schema)
            counts = {
                scheme.name: backend.count(scheme.name)
                for scheme in schema.schemes
            }
        print(
            f"deployed {len(counts)} table(s) to {args.execute} "
            f"({sum(counts.values())} row(s))"
        )
    return 1 if args.strict and script.warnings else 0


def cmd_translate(args: argparse.Namespace) -> int:
    """``translate``: EER design to relational schema (or Teorey baseline)."""
    eer = _load_eer(args.eer)
    if args.teorey:
        translation = translate_teorey(eer)
        schema = translation.schema
        print(
            "Teorey-style translation "
            f"(folded: {', '.join(translation.folded) or 'nothing'})"
        )
    else:
        schema = translate_eer(eer).schema
    print(schema.describe())
    _write_output(args.output, relational_schema_to_dict(schema))
    return 0


def cmd_structures(args: argparse.Namespace) -> int:
    """``structures``: classify single-relation EER structures (Fig 8)."""
    eer = _load_eer(args.eer)
    structures = find_amenable_structures(eer)
    if not structures:
        print("no single-relation-representable structures found")
        return 0
    for s in structures:
        print(s)
        for reason in s.reasons:
            print(f"  - {reason}")
    return 0


def cmd_ddl(args: argparse.Namespace) -> int:
    """``ddl``: emit the schema definition for one target DBMS."""
    schema = _load_relational(args.schema)
    dialect = DIALECTS[args.dialect]
    script = generate_ddl(schema, dialect)
    print(script.sql())
    print()
    print(f"-- {script.summary()}")
    for warning in script.warnings:
        print(f"-- WARNING: {warning}")
    return 1 if args.strict and script.warnings else 0


def cmd_init(args: argparse.Namespace) -> int:
    """``init``: write demo JSON files (the paper's university example)
    into a directory, ready for the other commands."""
    import os

    from repro.workloads.university import (
        university_eer,
        university_relational,
        university_state,
    )
    from repro.io import eer_schema_to_dict

    os.makedirs(args.directory, exist_ok=True)
    files = {
        "university.json": relational_schema_to_dict(university_relational()),
        "university_eer.json": eer_schema_to_dict(university_eer()),
        "university_state.json": state_to_dict(
            university_state(n_courses=12, seed=0)
        ),
    }
    for name, data in files.items():
        _write_output(os.path.join(args.directory, name), data)
    print("try:")
    print(f"  python -m repro families {args.directory}/university.json")
    print(
        f"  python -m repro merge {args.directory}/university.json "
        "COURSE OFFER TEACH ASSIST"
    )
    print(f"  python -m repro structures {args.directory}/university_eer.json")
    return 0


def cmd_minimize(args: argparse.Namespace) -> int:
    """``minimize``: drop implied constraints from a schema."""
    schema = _load_relational(args.schema)
    minimized = minimize_schema(schema)
    dropped_inds = len(schema.inds) - len(minimized.inds)
    dropped_ncs = len(schema.null_constraints) - len(
        minimized.null_constraints
    )
    print(
        f"dropped {dropped_inds} implied inclusion dependenc(ies) and "
        f"{dropped_ncs} implied null constraint(s)"
    )
    print(minimized.describe())
    _write_output(args.output, relational_schema_to_dict(minimized))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``bench``: run the storage-engine micro-benchmarks."""
    from repro.engine.bench import format_report, run_engine_benchmark

    try:
        sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    except ValueError:
        raise CliError(f"--sizes must be comma-separated integers: {args.sizes!r}")
    if not sizes or any(n <= 0 for n in sizes):
        raise CliError("--sizes needs at least one positive integer")
    if args.ops <= 0:
        raise CliError("--ops must be a positive integer")
    report = run_engine_benchmark(
        sizes=sizes, ops_cap=args.ops, wal_path=args.wal
    )
    print(format_report(report))
    _write_output(args.output, report)
    return 0


def resolve_workers(workers: int | None) -> int | None:
    """The effective ``serve --workers`` value: ``None`` (flag absent)
    keeps the plain single-process server, ``0`` means one worker per
    detected core, and an explicit positive count is taken as is."""
    if workers is None:
        return None
    if workers < 0:
        raise CliError("--workers must be non-negative")
    if workers == 0:
        import os

        return os.cpu_count() or 1
    return workers


def _parse_target(target: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``) as a connectable address."""
    host, _, port_text = target.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise CliError(f"target must be HOST:PORT, got {target!r}")
    return host or "127.0.0.1", port


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the JSON-lines TCP server until SIGTERM/SIGINT,
    then drain gracefully (finish in-flight requests, final group
    commit, checkpoint, close the WAL)."""
    import asyncio
    import os

    from repro.engine.database import Database
    from repro.engine.recovery import RecoveryError, recover_database
    from repro.engine.wal import FileStorage, WalError, WriteAheadLog
    from repro.server.server import ServerConfig
    from repro.server.server import serve as serve_async

    schema = _load_relational(args.schema)
    if args.max_batch < 1:
        raise CliError("--max-batch must be at least 1")
    if args.max_delay < 0:
        raise CliError("--max-delay must be non-negative")
    if not 0.0 <= args.span_sample <= 1.0:
        raise CliError("--span-sample must be between 0 and 1")
    if args.slow_ms is not None and args.span_sink is None:
        raise CliError("--slow-ms requires --span-sink")
    workers = resolve_workers(args.workers)
    if workers and args.worker_index is None:
        args.workers = workers
        return _serve_fleet(args)
    tracer, trace_path = _open_tracer(args.trace)
    if args.wal is not None:
        storage = FileStorage(
            args.wal, fsync=args.fsync, buffered=True
        )
        if os.path.exists(args.wal) and os.path.getsize(args.wal) > 0:
            # A log with history: recover through it so the server
            # starts from the committed state (and owns the repaired
            # log, still in buffered group-commit mode).
            try:
                result = recover_database(
                    schema, storage=storage, tracer=tracer
                )
            except (RecoveryError, WalError, OSError) as exc:
                raise CliError(f"cannot recover {args.wal}: {exc}")
            db = result.database
            print(
                f"recovered {db.state().total_size()} tuple(s) "
                f"from {args.wal}"
            )
        else:
            db = Database(
                schema, tracer=tracer, wal=WriteAheadLog(storage)
            )
    else:
        db = Database(schema, tracer=tracer)
        print("warning: no --wal; state is not durable", file=sys.stderr)
    sockets = []
    shard = None
    if args.worker_index is not None:
        # Worker mode: serve the supervisor's pre-bound, fd-passed
        # sockets as one shard of the fleet.
        import socket as socket_module

        from repro.server.service import ShardInfo

        if (
            args.listen_fd is None
            or args.shared_fd is None
            or args.worker_ports is None
            or args.shared_port is None
            or not args.workers
        ):
            raise CliError(
                "worker mode is spawned by the fleet supervisor; "
                "use --workers N instead"
            )
        ports = [int(p) for p in args.worker_ports.split(",")]
        sockets = [
            socket_module.socket(fileno=args.listen_fd),
            socket_module.socket(fileno=args.shared_fd),
        ]
        shard = ShardInfo(
            worker_id=args.worker_index,
            n_shards=args.workers,
            host=args.host,
            ports=ports,
            shared_port=args.shared_port,
        )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        checkpoint_on_drain=not args.no_checkpoint,
        metrics_port=args.metrics_port,
        sockets=sockets,
        shard=shard,
        prepare_timeout=args.prepare_timeout,
        replicate_from=args.replicate_from,
        span_sink=args.span_sink,
        span_sample=args.span_sample,
        slow_ms=args.slow_ms,
    )
    try:
        server = asyncio.run(serve_async(db, config))
    finally:
        _close_tracer(tracer, trace_path)
    snap = db.stats.snapshot()
    print(
        f"drained: {server.sessions_opened} session(s), "
        f"{server.service.requests_served} request(s), "
        f"{snap['wal_group_commits']} group commit(s) covering "
        f"{snap['wal_batched_records']} record(s)"
    )
    # The machine-readable drain summary: one JSON object on stderr, so
    # scripts assert on exact counts without parsing the line above.
    from repro.server.server import drain_summary

    print(json.dumps(drain_summary(server), sort_keys=True), file=sys.stderr)
    if server.drain_error is not None:
        print(f"warning: drain error: {server.drain_error}", file=sys.stderr)
        return 1
    return 0


def _serve_fleet(args: argparse.Namespace) -> int:
    """``serve --workers N``: supervise a sharded fleet of worker
    processes (see :mod:`repro.server.supervisor`)."""
    from repro.server.supervisor import Supervisor

    if args.trace:
        raise CliError(
            "--trace is not supported with --workers; trace individual "
            "workers via their own serve invocations"
        )
    if args.metrics_port is not None:
        raise CliError(
            "--metrics-port is not supported with --workers; scrape "
            "per-worker stats through the 'stats' verb (repro monitor "
            "aggregates them)"
        )
    worker_args = [
        args.schema,
        "--max-connections",
        str(args.max_connections),
        "--max-batch",
        str(args.max_batch),
        "--max-delay",
        str(args.max_delay),
        "--prepare-timeout",
        str(args.prepare_timeout),
    ]
    if args.fsync:
        worker_args.append("--fsync")
    if args.no_checkpoint:
        worker_args.append("--no-checkpoint")
    # Span flags forward to every worker; the sink path itself derives
    # per worker (FILE.w<i>, like the WAL), handled by the supervisor.
    if args.span_sample != 1.0:
        worker_args += ["--span-sample", str(args.span_sample)]
    if args.slow_ms is not None:
        worker_args += ["--slow-ms", str(args.slow_ms)]
    replicate_from = None
    if args.replicate_from:
        replicate_from = _fleet_replication_targets(
            args.replicate_from, args.workers
        )
    supervisor = Supervisor(
        workers=args.workers,
        host=args.host,
        port=args.port,
        worker_args=worker_args,
        wal=args.wal,
        replicate_from=replicate_from,
        span_sink=args.span_sink,
    )
    if args.wal is None:
        print(
            "warning: no --wal; no shard's state is durable",
            file=sys.stderr,
        )
    supervisor.start()
    return supervisor.run_forever()


def _fleet_replication_targets(target: str, workers: int) -> list[str]:
    """Per-worker ``HOST:PORT`` targets for a replica fleet: ask the
    primary fleet for its topology and pair shards index for index."""
    from repro.client import Client

    host, port = _parse_target(target)
    try:
        with Client(host=host, port=port, timeout=30.0) as client:
            topo = client.call("topology")
    except OSError as exc:
        raise CliError(f"cannot reach primary {target}: {exc}")
    primary_workers = int(topo.get("workers", 1) or 1)
    if primary_workers != workers:
        raise CliError(
            f"replica fleet has {workers} worker(s) but the primary at "
            f"{target} has {primary_workers}; shard counts must match so "
            "each replica shard mirrors exactly one primary shard"
        )
    ports = [int(p) for p in topo.get("ports") or ()]
    primary_host = str(topo.get("host") or host)
    if not ports:
        # A plain single-process primary: one worker, one address.
        return [f"{host}:{port}"]
    return [f"{primary_host}:{p}" for p in ports]


def cmd_promote(args: argparse.Namespace) -> int:
    """``promote``: turn a replica (or every shard of a replica fleet)
    into a read-write primary."""
    from repro.client import Client

    host, port = _parse_target(args.target)
    try:
        with Client(host=host, port=port, timeout=args.timeout) as client:
            topo = client.call("topology")
            workers = int(topo.get("workers", 1) or 1)
            ports = [int(p) for p in topo.get("ports") or ()]
            if workers <= 1 or not ports:
                result = client.call("promote")
                print(
                    f"promoted: {result['was']} -> {result['role']} "
                    f"(applied lsn {result['applied_lsn']})"
                )
                return 0
        for index, worker_port in enumerate(ports):
            with Client(
                host=host, port=worker_port, timeout=args.timeout
            ) as client:
                result = client.call("promote")
            print(
                f"worker {index}: {result['was']} -> {result['role']} "
                f"(applied lsn {result['applied_lsn']})"
            )
    except OSError as exc:
        raise CliError(f"cannot reach {args.target}: {exc}")
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    """``advise``: ask a running server's merge advisor for the best
    workload-backed merge; ``--apply`` executes it online (one WAL
    transaction on the server's single-writer path)."""
    from repro.client import Client

    host, port = _parse_target(args.target)
    try:
        with Client(host=host, port=port, timeout=args.timeout) as client:
            report = client.advise(strategy=args.strategy)
            if args.json:
                print(json.dumps(report, indent=2, sort_keys=True))
            else:
                print(report["explain_text"])
                workload = report["workload"]
                print(
                    f"observed: {workload['joins_observed']} IND join(s), "
                    f"{workload['mutations_observed']} mutation(s)"
                )
                recommendation = report["recommendation"]
                if recommendation is None:
                    print(
                        "recommendation: none (no admissible family pays "
                        "for itself on the observed workload)"
                    )
                else:
                    print(
                        "recommendation: merge "
                        f"{{{', '.join(recommendation['members'])}}} "
                        f"around {recommendation['key_relation']}"
                    )
            if not args.apply:
                return 0
            recommendation = report["recommendation"]
            if recommendation is None:
                raise CliError(
                    "nothing to apply: the advisor has no recommendation"
                )
            result = client.apply_merge(
                members=recommendation["members"],
                key_relation=recommendation["key_relation"],
            )
            removed = sum(len(r) for r in result["removed"])
            print(
                f"applied: {result['merged_name']} <- "
                f"{{{', '.join(result['members'])}}} "
                f"(removed {removed} attr(s)); "
                f"schema now has {len(result['schemes'])} scheme(s)"
            )
    except OSError as exc:
        raise CliError(f"cannot reach {args.target}: {exc}")
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """``monitor``: poll a running server's ``stats`` verb and repaint
    a terminal dashboard (throughput, per-verb latency, violations by
    paper rule, queue/batch gauges) in place.

    Pointed at a sharded fleet's public port, it discovers the workers
    via the ``topology`` verb, polls every worker's direct port, and
    renders the aggregated fleet dashboard instead (a row per worker
    plus a fleet totals row).
    """
    import time

    from repro.client import Client
    from repro.obs.monitor import (
        CLEAR,
        render_dashboard,
        render_fleet_dashboard,
    )

    host, _, port_text = args.target.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise CliError(f"target must be HOST:PORT, got {args.target!r}")
    host = host or "127.0.0.1"
    if args.interval <= 0:
        raise CliError("--interval must be positive")
    count = 1 if args.once else args.count
    title = f"repro monitor {host}:{port}"

    def paint(frame: str) -> None:
        if not args.no_clear:
            sys.stdout.write(CLEAR)
        sys.stdout.write(frame)
        sys.stdout.flush()

    try:
        with Client(host=host, port=port, timeout=30) as client:
            try:
                topo = client.call("topology")
            except Exception:
                topo = {}  # pre-topology server: plain dashboard
            workers = int(topo.get("workers", 1) or 1)
            ports = [int(p) for p in topo.get("ports", ())]
            if workers > 1 and ports:
                fleet = [
                    Client(host=host, port=p, timeout=30) for p in ports
                ]
                try:
                    prev_snaps = None
                    frames = 0
                    while True:
                        snaps = [c.call("stats") for c in fleet]
                        paint(
                            render_fleet_dashboard(
                                snaps, prev_snaps, args.interval, title=title
                            )
                        )
                        frames += 1
                        prev_snaps = snaps
                        if count and frames >= count:
                            return 0
                        time.sleep(args.interval)
                finally:
                    for c in fleet:
                        c.close()
            prev = None
            frames = 0
            while True:
                cur = client.call("stats")
                paint(render_dashboard(cur, prev, args.interval, title=title))
                frames += 1
                prev = cur
                if count and frames >= count:
                    return 0
                time.sleep(args.interval)
    except (ConnectionError, OSError) as exc:
        raise CliError(f"cannot reach {host}:{port}: {exc}")
    except KeyboardInterrupt:
        return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``trace``: reassemble distributed request traces from per-worker
    span JSONL files (or live via the ``spans`` verb) and render ASCII
    waterfalls with the critical path and per-kind time breakdown."""
    import os

    from repro.obs.spans import assemble_traces, read_span_lines, render_trace

    spans: list[dict] = []
    for source in args.sources:
        if os.path.exists(source):
            try:
                with open(source) as f:
                    spans.extend(read_span_lines(f))
            except OSError as exc:
                raise CliError(f"cannot read {source}: {exc}")
        else:
            spans.extend(_live_spans(source, args.timeout))
    if not spans:
        print("no spans collected")
        return 1
    traces = assemble_traces(spans)

    def span_window(members: list[dict]) -> float:
        start = min(s.get("start_s", 0.0) for s in members)
        end = max(s.get("end_s", s.get("start_s", 0.0)) for s in members)
        return end - start

    ordered = sorted(
        traces.items(), key=lambda kv: span_window(kv[1]), reverse=True
    )
    print(
        f"{len(spans)} span(s) in {len(traces)} trace(s) from "
        f"{len(args.sources)} source(s)"
    )
    if args.list:
        for trace_id, members in ordered:
            processes = {s.get("process", "?") for s in members}
            print(
                f"  {trace_id}  {len(members):>3} span(s)  "
                f"{len(processes)} process(es)  "
                f"{span_window(members) * 1000:.3f} ms"
            )
        return 0
    if args.trace_id is not None:
        members = traces.get(args.trace_id)
        if members is None:
            raise CliError(
                f"no trace {args.trace_id!r} among the collected spans "
                "(try --list)"
            )
        selected = [(args.trace_id, members)]
    else:
        selected = ordered[: max(1, args.slowest)]
    for trace_id, members in selected:
        print()
        print(render_trace(trace_id, members, width=args.width))
    return 0


def _live_spans(target: str, timeout: float) -> list[dict]:
    """Collect the span ring buffer of a live server -- or of every
    worker, when ``target`` is a fleet's shared port -- via the
    ``spans`` verb."""
    from repro.client import Client

    host, port = _parse_target(target)
    collected: list[dict] = []
    try:
        with Client(host=host, port=port, timeout=timeout) as client:
            try:
                topo = client.call("topology")
            except Exception:
                topo = {}
            ports = [int(p) for p in topo.get("ports") or ()]
            if int(topo.get("workers", 1) or 1) > 1 and ports:
                for worker_port in ports:
                    with Client(
                        host=host, port=worker_port, timeout=timeout
                    ) as worker:
                        collected.extend(worker.spans()["spans"])
            else:
                collected.extend(client.spans()["spans"])
    except OSError as exc:
        raise CliError(f"cannot reach {target}: {exc}")
    return collected


# -- parser ---------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "BCNF-preserving relation merging (Markowitz, ICDE 1992)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe", help="print a schema")
    p.add_argument("schema")
    p.set_defaults(fn=cmd_describe)

    trace_kwargs = dict(
        nargs="?",
        const="-",
        metavar="FILE",
        help="write a JSONL decision trace (default: stdout)",
    )

    p = sub.add_parser("check", help="check a state against a schema")
    p.add_argument("schema")
    p.add_argument("state", nargs="?")
    p.add_argument(
        "--wal",
        metavar="LOG",
        help="check the state recovered from this write-ahead log "
        "instead of a state file",
    )
    p.add_argument("--trace", **trace_kwargs)
    p.add_argument(
        "--explain",
        action="store_true",
        help="print the checks the checker will run, with paper rules",
    )
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "explain",
        help="show enforcement plans or merge reasoning",
    )
    p.add_argument("schema")
    p.add_argument(
        "--scheme",
        action="append",
        help="explain only this scheme (repeatable; default: all)",
    )
    p.add_argument(
        "--op",
        choices=["insert", "update", "delete"],
        help="explain only this mutation kind (default: all)",
    )
    p.add_argument(
        "--plan",
        action="store_true",
        help="explain the merge planner's decisions instead",
    )
    p.add_argument(
        "--strategy",
        choices=[s.value for s in MergeStrategy],
        default=MergeStrategy.AGGRESSIVE.value,
        help="strategy for --plan",
    )
    p.add_argument("-o", "--output", help="write the explanation JSON")
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("families", help="list mergeable families")
    p.add_argument("schema")
    p.set_defaults(fn=cmd_families)

    p = sub.add_parser("merge", help="merge named relation-schemes")
    p.add_argument("schema")
    p.add_argument("members", nargs="+")
    p.add_argument("--name", help="name for the merged scheme")
    p.add_argument(
        "--keep-redundant",
        action="store_true",
        help="skip the Remove pass (Definition 4.3)",
    )
    p.add_argument("-o", "--output", help="write the result schema JSON")
    p.add_argument("--trace", **trace_kwargs)
    p.add_argument(
        "--explain",
        action="store_true",
        help="print null-constraint provenance of the merged scheme",
    )
    p.set_defaults(fn=cmd_merge)

    p = sub.add_parser("plan", help="merge every admissible family")
    p.add_argument("schema")
    p.add_argument(
        "--strategy",
        choices=[s.value for s in MergeStrategy],
        default=MergeStrategy.AGGRESSIVE.value,
    )
    p.add_argument("-o", "--output")
    p.add_argument(
        "--script", help="write a replayable migration script JSON"
    )
    p.add_argument("--trace", **trace_kwargs)
    p.add_argument(
        "--explain",
        action="store_true",
        help="print every family's admission decision and rule",
    )
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("replay", help="re-apply a recorded migration script")
    p.add_argument("script")
    p.add_argument("schema")
    p.add_argument("--state", help="also migrate this state through the script")
    p.add_argument("-o", "--output", help="write the result schema JSON")
    p.add_argument("--state-output", help="write the migrated state JSON")
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("migrate", help="map a state through a merge")
    p.add_argument("schema")
    p.add_argument("state")
    p.add_argument("--members", nargs="+", required=True)
    p.add_argument("-o", "--output")
    p.add_argument(
        "--sql",
        help="write the SQLite migration script ('-' for stdout)",
    )
    p.add_argument(
        "--db",
        help="apply the migration to this live SQLite database file",
    )
    p.set_defaults(fn=cmd_migrate)

    p = sub.add_parser("translate", help="EER design -> relational schema")
    p.add_argument("eer")
    p.add_argument(
        "--teorey",
        action="store_true",
        help="use the folding baseline instead of the BCNF translation",
    )
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_translate)

    p = sub.add_parser(
        "structures", help="classify single-relation EER structures"
    )
    p.add_argument("eer")
    p.set_defaults(fn=cmd_structures)

    p = sub.add_parser("ddl", help="generate DDL for a target DBMS")
    p.add_argument("schema")
    p.add_argument("--dialect", choices=sorted(DIALECTS), required=True)
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when constraints are unmaintainable",
    )
    p.set_defaults(fn=cmd_ddl)

    p = sub.add_parser(
        "compile",
        help="generate DDL and optionally execute it on SQLite",
    )
    p.add_argument("schema")
    p.add_argument("--dialect", choices=sorted(DIALECTS), default="sqlite")
    p.add_argument(
        "--execute",
        metavar="DB",
        help="deploy the schema into this SQLite database file",
    )
    p.add_argument("-o", "--output", help="write the DDL script to a file")
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when constraints are unmaintainable",
    )
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("init", help="write demo JSON files to a directory")
    p.add_argument("directory")
    p.set_defaults(fn=cmd_init)

    p = sub.add_parser("minimize", help="drop implied constraints")
    p.add_argument("schema")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_minimize)

    p = sub.add_parser("bench", help="run the engine micro-benchmarks")
    p.add_argument(
        "--sizes",
        default="1000,10000,50000",
        help="comma-separated course counts (default: 1000,10000,50000)",
    )
    p.add_argument(
        "--ops",
        type=int,
        default=2000,
        help="max operations per measurement (default: 2000)",
    )
    p.add_argument("-o", "--output", help="write the JSON report here")
    p.add_argument(
        "--wal",
        metavar="LOG",
        help="also measure WAL-on insert throughput and checkpoint "
        "latency, logging to this path",
    )
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "recover", help="rebuild the committed state from a write-ahead log"
    )
    p.add_argument("schema")
    p.add_argument("--wal", metavar="LOG", required=True)
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the consistency re-check of the recovered state",
    )
    p.add_argument(
        "--checkpoint",
        action="store_true",
        help="compact the recovered log into a snapshot",
    )
    p.add_argument("-o", "--output", help="write the recovered state JSON")
    p.add_argument("--report", help="write the recovery report JSON")
    p.add_argument("--trace", **trace_kwargs)
    p.set_defaults(fn=cmd_recover)

    p = sub.add_parser(
        "serve", help="serve a database over the JSON-lines TCP protocol"
    )
    p.add_argument("schema")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default 0: pick a free one; the bound port "
        "is printed in the readiness line)",
    )
    p.add_argument(
        "--wal",
        metavar="LOG",
        help="write-ahead log path; an existing log is recovered first "
        "(without one, state is not durable)",
    )
    p.add_argument(
        "--fsync",
        action="store_true",
        help="fsync at every group-commit barrier (power-loss "
        "durability; default flushes to the OS only)",
    )
    p.add_argument(
        "--max-connections",
        type=int,
        default=64,
        help="reject connections beyond this many (default: 64)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="most mutations one group commit may cover (default: 64)",
    )
    p.add_argument(
        "--max-delay",
        type=float,
        default=0.002,
        help="seconds the writer waits for stragglers to join a group "
        "(default: 0.002; 0 never waits)",
    )
    p.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="skip the WAL checkpoint during graceful drain",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        help="serve /metrics, /healthz and /readyz over HTTP on this "
        "port (0: pick a free one, printed in the 'metrics on' line; "
        "default: disabled)",
    )
    p.add_argument("--trace", **trace_kwargs)
    p.add_argument(
        "--span-sink",
        metavar="FILE",
        help="record request spans as JSON lines to FILE (fleet "
        "workers write FILE.w<i>); also enables the 'spans' verb and "
        "'repro trace'",
    )
    p.add_argument(
        "--span-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="head-sampling rate for new traces, 0..1 (default: 1.0; "
        "requests arriving with a sampled span context are always "
        "traced)",
    )
    p.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log a waterfall of any request slower than MS "
        "milliseconds to stderr (requires --span-sink)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run a sharded fleet of this many single-writer worker "
        "processes (rows are hash-partitioned by primary key).  "
        "--port is the fleet's shared public port; each worker also "
        "gets a direct port, printed in the 'worker' lines.  0 means "
        "one worker per detected core.  Default (flag absent): one "
        "plain single-process server",
    )
    p.add_argument(
        "--replicate-from",
        metavar="HOST:PORT",
        help="run as a read-only replica of the primary at this "
        "address: catch up from its checkpoint, then tail its WAL "
        "(with --workers, the address of the primary fleet; shard "
        "counts must match).  Promote with 'repro promote'",
    )
    p.add_argument(
        "--prepare-timeout",
        type=float,
        default=30.0,
        help="seconds a worker holds a cross-shard batch prepare before "
        "aborting it unilaterally (default: 30)",
    )
    # Worker-mode flags, set by the fleet supervisor when it spawns its
    # workers -- not for direct use.
    p.add_argument("--worker-index", type=int, help=argparse.SUPPRESS)
    p.add_argument("--worker-ports", help=argparse.SUPPRESS)
    p.add_argument("--shared-port", type=int, help=argparse.SUPPRESS)
    p.add_argument("--listen-fd", type=int, help=argparse.SUPPRESS)
    p.add_argument("--shared-fd", type=int, help=argparse.SUPPRESS)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "promote",
        help="turn a replica (or replica fleet) into the primary",
    )
    p.add_argument("target", metavar="HOST:PORT")
    p.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="seconds to wait per connection (default: 30)",
    )
    p.set_defaults(fn=cmd_promote)

    p = sub.add_parser(
        "advise",
        help="workload-driven merge recommendation from a live server",
    )
    p.add_argument("target", metavar="HOST:PORT")
    p.add_argument(
        "--strategy",
        choices=[s.value for s in MergeStrategy],
        default=None,
        help=(
            "admissibility filter (default: the advisor's key-based "
            "strategy, Proposition 5.1)"
        ),
    )
    p.add_argument(
        "--apply",
        action="store_true",
        help="apply the recommended merge online (one WAL transaction)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the full advisory report as JSON",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="seconds to wait per connection (default: 30)",
    )
    p.set_defaults(fn=cmd_advise)

    p = sub.add_parser(
        "monitor", help="live dashboard over a running server"
    )
    p.add_argument("target", metavar="HOST:PORT")
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default: 2.0)",
    )
    p.add_argument(
        "-n",
        "--count",
        type=int,
        default=0,
        help="refresh this many times then exit (default 0: forever)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="print one frame and exit (same as -n 1)",
    )
    p.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of repainting in place",
    )
    p.set_defaults(fn=cmd_monitor)

    p = sub.add_parser(
        "trace",
        help="reassemble request traces from span files or a live "
        "server and render waterfalls",
    )
    p.add_argument(
        "sources",
        nargs="+",
        metavar="SOURCE",
        help="span JSONL files (as written by serve --span-sink, one "
        "per worker) and/or HOST:PORT of a live server to poll via "
        "the 'spans' verb",
    )
    p.add_argument(
        "--trace-id",
        default=None,
        help="render this trace only (default: the slowest)",
    )
    p.add_argument(
        "--slowest",
        type=int,
        default=1,
        metavar="N",
        help="render the N slowest traces (default: 1)",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="list trace ids with span/process counts instead of "
        "rendering",
    )
    p.add_argument(
        "--width",
        type=int,
        default=48,
        metavar="COLS",
        help="waterfall bar width in columns (default: 48)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="seconds to wait per connection (default: 30)",
    )
    p.set_defaults(fn=cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
