"""Figure 8: EER structures amenable to single-relation representation.

Regenerates the figure's four structures and the Section 5.2 verdicts:
(i) and (ii) merge with *general* null constraints; (iii) and (iv) merge
with *only nulls-not-allowed* constraints.  Every classifier verdict is
cross-checked against the constraint set Merge + Remove actually
produce.
"""

from conftest import banner, show

from repro.constraints.nulls import NullExistenceConstraint
from repro.core.conditions import prop52_nulls_not_allowed_only
from repro.core.merge import merge
from repro.core.remove import remove_all
from repro.eer.patterns import find_amenable_structures
from repro.eer.translate import translate_eer
from repro.workloads.fig8 import all_fig8_schemas


def _merge_outcome(eer, members):
    schema = translate_eer(eer).schema
    simplified = remove_all(merge(schema, list(members)))
    merged_cs = [
        c
        for c in simplified.schema.null_constraints
        if c.scheme_name == simplified.info.merged_name
    ]
    nna_only = all(
        isinstance(c, NullExistenceConstraint) and c.is_nulls_not_allowed()
        for c in merged_cs
    )
    return simplified, merged_cs, nna_only


def _run():
    rows = []
    for label, eer in all_fig8_schemas().items():
        (structure,) = find_amenable_structures(eer)
        simplified, merged_cs, nna_only = _merge_outcome(
            eer, structure.members
        )
        prop52, _ = prop52_nulls_not_allowed_only(
            translate_eer(eer).schema, list(structure.members)
        )
        rows.append((label, structure, simplified, merged_cs, nna_only, prop52))
    return rows


EXPECTED = {
    "8(i)": False,
    "8(ii)": False,
    "8(iii)": True,
    "8(iv)": True,
}


def test_figure8(benchmark):
    rows = benchmark(_run)
    banner("Figure 8: structures amenable to single-relation representation")
    for label, structure, simplified, merged_cs, nna_only, prop52 in rows:
        tier = "NNA-only" if nna_only else "general null constraints"
        show(
            f"{label}: {structure.kind} at {structure.anchor} [{tier}]",
            [str(simplified.merged_scheme)]
            + [str(c) for c in merged_cs]
            + [f"reason: {r}" for r in structure.reasons],
        )
        # Classifier verdict == paper verdict == measured constraint set
        # == Proposition 5.2 predicate.
        assert structure.nna_only == EXPECTED[label], label
        assert nna_only == EXPECTED[label], label
        assert prop52 == EXPECTED[label], label
    print(
        "paper: (i)/(ii) general constraints, (iii)/(iv) NNA-only  |  "
        "measured: all four verdicts reproduced"
    )
